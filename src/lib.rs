//! # willump-repro
//!
//! Facade crate for the Willump reproduction (Kraft et al., MLSys
//! 2020): re-exports every subsystem under one roof so examples and
//! integration tests can depend on a single crate.
//!
//! Start with [`willump::Willump`] and [`willump::Pipeline`] (the
//! optimizer), [`willump_workloads`] (the six paper benchmarks), and
//! the repository README for a tour.

#![warn(missing_docs)]

pub use willump;
pub use willump_data;
pub use willump_featurize;
pub use willump_graph;
pub use willump_models;
pub use willump_serve;
pub use willump_store;
pub use willump_workloads;
