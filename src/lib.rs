//! # willump-repro
//!
//! Facade crate for the Willump reproduction (Kraft et al., MLSys
//! 2020): re-exports every subsystem under one roof so examples and
//! integration tests can depend on a single crate.
//!
//! Start with [`prelude`] (the optimizer + serving surface most
//! programs need), [`willump::Willump`] and [`willump::Pipeline`]
//! (the optimizer), [`willump_workloads`] (the six paper benchmarks),
//! and the repository README for a tour.

#![warn(missing_docs)]

pub use willump;
pub use willump_data;
pub use willump_featurize;
pub use willump_graph;
pub use willump_models;
pub use willump_serve;
pub use willump_store;
pub use willump_workloads;

/// The one-import surface: optimizer, plan IR, and the multi-endpoint
/// serving runtime.
///
/// ```no_run
/// use willump_repro::prelude::*;
///
/// # fn demo(cascade_plan: ServingPlan, topk_plan: ServingPlan)
/// # -> Result<(), Box<dyn std::error::Error>> {
/// // Register named, versioned, sharded endpoints on one runtime.
/// // Shards can be local (this worker pool) or remote — served by a
/// // `RemoteRuntimeNode` in another process over TCP.
/// let mut builder = ServingRuntime::builder();
/// builder.config(ServerConfig::builder().workers(4).build());
/// builder
///     .plan("music", cascade_plan)
///     .shards(4)
///     .shard_remote("127.0.0.1:7878");
/// builder.plan("toxic", topk_plan).shards(2);
/// let runtime = builder.build()?;
/// let client = runtime.client();
/// # let rows = Vec::new();
/// let scores = client.predict_endpoint("music", rows)?;
/// # let _ = scores;
/// # Ok(())
/// # }
/// ```
///
/// Migrating from the deprecated single-predictor `ClipperServer`:
/// `ClipperServer::start(p, cfg)` is now literally a one-endpoint
/// runtime (`builder.endpoint(DEFAULT_ENDPOINT, p)`), so replace the
/// server with a [`willump_serve::RuntimeBuilder`] and
/// `client.predict(rows)` with
/// [`willump_serve::RuntimeClient::predict`] (identical
/// unaddressed-request semantics) or the explicit
/// [`predict_endpoint`](willump_serve::RuntimeClient::predict_endpoint)
/// family.
pub mod prelude {
    pub use willump::{
        OptimizedPipeline, PlanCounters, PlanCountersSnapshot, PlanRunReport, QueryMode,
        ServingPlan, TopKConfig, Willump, WillumpConfig,
    };
    pub use willump_data::{Table, Value};
    pub use willump_serve::{
        shard_for_key, table_row_to_wire, BreakerState, ClipperClient, ClipperServer,
        ClusterConfig, ClusterCoordinator, ClusterHandle, Endpoint, InProcessWorker, ModelSelector,
        MonitorConfig, MonitorEvent, MonitorHandle, MonitorSample, RemoteRuntimeNode, RemoteWorker,
        Request, Response, RuntimeBuilder, RuntimeClient, SchedulerPolicy, SelectionPolicy,
        Servable, ServeError, ServerConfig, ServingRuntime, StatsHub, TimedEvent, TransportStats,
        WireRow, WorkerTransport, DEFAULT_ENDPOINT,
    };
    pub use willump_workloads::{Workload, WorkloadConfig, WorkloadKind};
}
