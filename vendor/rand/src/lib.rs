//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the exact slice of the `rand` 0.8 surface its sources use:
//! [`rngs::StdRng`] (a xoshiro256++ generator), [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`, and the
//! [`distributions::Distribution`] trait. Everything is deterministic
//! given a seed; there is no OS entropy source.

/// A source of random 64-bit words. The object-safe core trait.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32` (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform over the type's natural range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;

    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Scalar types uniform-sampleable over an interval.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`. Panics if `hi < lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift maps a uniform u64 onto [0, span).
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange for std::ops::Range<T> {
    type Output = T;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Distribution traits, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`, sampleable with any RNG.
    pub trait Distribution<T> {
        /// Draw one value from the distribution.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by splitmix64 expansion of a `u64`.
    ///
    /// (The real `rand::rngs::StdRng` is a ChaCha block cipher; this
    /// stand-in keeps the type and trait surface, not the stream.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
