//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! API: `lock()`, `read()`, and `write()` return guards directly. A
//! poisoned std lock (a thread panicked while holding it) is treated
//! as still-usable, matching parking_lot's no-poisoning semantics.
//!
//! With the `lock-order-tracking` feature (debug builds only), every
//! acquisition is run past a lockdep-style detector: see the
//! private `order` module below.

use std::sync::PoisonError;

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
use std::sync::atomic::AtomicU64;

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
mod order {
    //! Lock-order deadlock detector (lockdep-style).
    //!
    //! Every lock instance gets a unique id on first acquisition
    //! (lazily, via a global counter — NOT its address, which could
    //! be reused after drop and alias an unrelated lock). Each thread
    //! keeps a stack of held ids; acquiring lock `b` while holding
    //! `a` records the directed edge `a -> b` with the acquisition
    //! site in a global graph. An acquisition that would close a
    //! cycle (`b -> … -> a` already exists) panics with both the
    //! current site and the site that established the opposite
    //! ordering — turning the whole test suite into a deadlock
    //! regression net without ever needing the deadlock to fire.

    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    /// Assign (or read) the stable id of one lock instance. Ids start
    /// at 1 so the atomic's zero-init means "unassigned" and
    /// `Mutex::new` can stay `const fn`.
    pub(crate) fn lock_id(slot: &AtomicU64) -> u64 {
        let id = slot.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(raced) => raced,
        }
    }

    /// The global acquisition-order graph: edge `a -> b` means some
    /// thread acquired `b` while holding `a`; the value is the site
    /// of that `b` acquisition.
    struct Graph {
        sites: HashMap<(u64, u64), String>,
        succ: HashMap<u64, Vec<u64>>,
    }

    impl Graph {
        /// Is there a path `from -> … -> to`? Returns the recorded
        /// site of the path's first edge (an acquisition made while
        /// `from` was held — the other half of the inversion) and the
        /// path length in edges.
        fn find_path(&self, from: u64, to: u64) -> Option<(String, usize)> {
            fn dfs(
                g: &Graph,
                cur: u64,
                to: u64,
                visited: &mut Vec<u64>,
                depth: usize,
            ) -> Option<usize> {
                if cur == to {
                    return Some(depth);
                }
                if visited.contains(&cur) {
                    return None;
                }
                visited.push(cur);
                for &n in g.succ.get(&cur).into_iter().flatten() {
                    if let Some(d) = dfs(g, n, to, visited, depth + 1) {
                        return Some(d);
                    }
                }
                None
            }
            for &first in self.succ.get(&from).into_iter().flatten() {
                let mut visited = vec![from];
                if let Some(d) = dfs(self, first, to, &mut visited, 1) {
                    let site = self
                        .sites
                        .get(&(from, first))
                        .cloned()
                        .unwrap_or_else(|| "<unknown>".to_string());
                    return Some((site, d));
                }
            }
            None
        }
    }

    fn graph() -> &'static StdMutex<Graph> {
        static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| {
            StdMutex::new(Graph {
                sites: HashMap::new(),
                succ: HashMap::new(),
            })
        })
    }

    thread_local! {
        /// Ids of the locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// Record (and check) the ordering edges this acquisition implies.
    /// Called BEFORE blocking on the underlying lock, so a detected
    /// inversion panics instead of deadlocking.
    pub(crate) fn before_acquire(id: u64, site: &Location<'static>) {
        let held = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
        if held.is_empty() {
            return;
        }
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        for &h in &held {
            // Re-acquisition of a held lock (id == h) is a plain
            // self-deadlock, not an ordering problem; std already
            // makes that loud. Skip rather than special-case it.
            if h == id || g.sites.contains_key(&(h, id)) {
                continue;
            }
            if let Some((prior_site, edges)) = g.find_path(id, h) {
                panic!(
                    "lock-order inversion: acquiring lock #{id} at {site} while holding \
                     lock #{h}, but the opposite ordering already exists ({hops}): while \
                     lock #{id} was held, a conflicting acquisition was made at {prior_site}",
                    hops = if edges == 1 {
                        "direct".to_string()
                    } else {
                        format!("via {edges} edges")
                    },
                );
            }
            g.sites.insert((h, id), site.to_string());
            g.succ.entry(h).or_default().push(id);
        }
    }

    /// Push onto the held stack once the underlying lock is actually
    /// owned.
    pub(crate) fn after_acquire(id: u64) {
        let _ = HELD.try_with(|h| h.borrow_mut().push(id));
    }

    /// Remove from the held stack on guard drop. Guards can drop in
    /// any order, so remove by id (latest occurrence), not pop.
    pub(crate) fn on_release(id: u64) {
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == id) {
                held.remove(pos);
            }
        });
    }
}

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
    id: AtomicU64,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[cfg(not(all(feature = "lock-order-tracking", debug_assertions)))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// RAII guard returned by [`Mutex::lock`] (lock-order tracking
/// build: releases the detector's held-stack entry on drop).
#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    id: u64,
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
            id: AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
        {
            let id = order::lock_id(&self.id);
            order::before_acquire(id, std::panic::Location::caller());
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            order::after_acquire(id);
            MutexGuard { inner, id }
        }
        #[cfg(not(all(feature = "lock-order-tracking", debug_assertions)))]
        {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
    id: AtomicU64,
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
#[cfg(not(all(feature = "lock-order-tracking", debug_assertions)))]
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII guard returned by [`RwLock::write`].
#[cfg(not(all(feature = "lock-order-tracking", debug_assertions)))]
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// RAII guard returned by [`RwLock::read`] (lock-order tracking
/// build).
#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    id: u64,
}

/// RAII guard returned by [`RwLock::write`] (lock-order tracking
/// build).
#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    id: u64,
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

#[cfg(all(feature = "lock-order-tracking", debug_assertions))]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
            id: AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access. Under lock-order tracking, read
    /// acquisitions feed the same ordering graph as writes
    /// (conservative: a read-then-write inversion can still deadlock
    /// against a writer, so ordering is enforced uniformly).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
        {
            let id = order::lock_id(&self.id);
            order::before_acquire(id, std::panic::Location::caller());
            let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            order::after_acquire(id);
            RwLockReadGuard { inner, id }
        }
        #[cfg(not(all(feature = "lock-order-tracking", debug_assertions)))]
        {
            self.inner.read().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Acquire exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
        {
            let id = order::lock_id(&self.id);
            order::before_acquire(id, std::panic::Location::caller());
            let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
            order::after_acquire(id);
            RwLockWriteGuard { inner, id }
        }
        #[cfg(not(all(feature = "lock-order-tracking", debug_assertions)))]
        {
            self.inner.write().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[cfg(all(feature = "lock-order-tracking", debug_assertions))]
    mod tracking {
        use super::super::{Mutex, RwLock};

        /// A consistent a-then-b discipline never trips the detector,
        /// however often it repeats and across threads.
        #[test]
        fn consistent_order_is_silent() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            for _ in 0..100 {
                let ga = a.lock();
                let mut gb = b.lock();
                *gb += *ga;
            }
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..50 {
                            let _ga = a.lock();
                            let _gb = b.lock();
                        }
                    });
                }
            });
        }

        /// Guards dropped out of acquisition order keep the held
        /// stack consistent (remove-by-id, not pop). `y` is released
        /// while `x` — acquired later — stays held; the subsequent
        /// `w` acquisition must therefore record the edge `x -> w`.
        /// The probe then deliberately inverts w/x: it can only fire
        /// if `x` was still on the held stack after `y`'s drop.
        #[test]
        fn out_of_order_guard_drop_keeps_held_stack() {
            let x = Mutex::new(0u32);
            let y = Mutex::new(0u32);
            let w = Mutex::new(0u32);
            let gy = y.lock();
            let gx = x.lock(); // edge y -> x
            drop(gy); // y released first; held stack must now be [x]
            let gw = w.lock(); // must record x -> w
            drop(gx);
            drop(gw);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _gw = w.lock();
                let _gx = x.lock(); // cycle against the x -> w edge
            }))
            .expect_err("x -> w was not recorded: held stack lost x on out-of-order drop");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("lock-order inversion"), "got: {msg}");
        }

        /// The deliberate inversion: a->b established, then b->a
        /// attempted. The panic carries both acquisition sites.
        #[test]
        fn inversion_panics_with_both_sites() {
            let a = RwLock::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.write();
                let _gb = b.lock(); // establishes a -> b, site recorded here
            }
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.read(); // inversion: b held, acquiring a
            }))
            .expect_err("inversion must panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("panic payload should be a string");
            assert!(
                msg.contains("lock-order inversion"),
                "unexpected message: {msg}"
            );
            // Both acquisition sites are in this file.
            assert!(
                msg.matches("vendor/parking_lot/src/lib.rs").count() >= 2,
                "expected both sites in: {msg}"
            );
        }
    }
}
