//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! API: `lock()`, `read()`, and `write()` return guards directly. A
//! poisoned std lock (a thread panicked while holding it) is treated
//! as still-usable, matching parking_lot's no-poisoning semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
