//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses real JSON text (with proper string escaping and
//! number handling) over the vendored `serde` crate's [`Content`]
//! tree. The serialization work is genuine — encoding cost scales
//! with payload size — which is what the serving layer's protocol
//! measurements rely on.

use serde::{Content, Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a JSON string.
///
/// # Errors
/// Returns [`Error`] if the value contains a non-finite float
/// (JSON has no representation for NaN or infinities).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    Ok(T::from_content(&content)?)
}

// ---- writer -------------------------------------------------------

fn write_content(c: &Content, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Float(f) => {
            if !f.is_finite() {
                return Err(Error("cannot serialize non-finite float".to_string()));
            }
            // Rust's shortest round-trip formatting; ensure a JSON
            // number that re-parses as a float keeps its value.
            out.push_str(&f.to_string());
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn parse_document(&mut self) -> Result<Content, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            pairs.push((key, self.parse_value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let esc = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: require the paired low surrogate.
                    if !self.eat_literal("\\u") {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Content::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Content::UInt(u))
        } else {
            // Integer too large for 64 bits: keep it as a float.
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<(String, Option<f64>)> = vec![
            ("a\"quote".to_string(), Some(1.5)),
            ("nl\n".to_string(), None),
        ];
        let json = super::to_string(&v).unwrap();
        let back: Vec<(String, Option<f64>)> = super::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = super::from_str(r#""aé\nA😀""#).unwrap();
        assert_eq!(s, "aé\nA😀");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e-12, 123_456_789.123_456_78] {
            let json = super::to_string(&f).unwrap();
            let back: f64 = super::from_str(&json).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "for {f}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(super::from_str::<f64>("[1,").is_err());
        assert!(super::from_str::<f64>("1 2").is_err());
        assert!(super::from_str::<String>("\"unterminated").is_err());
        assert!(super::to_string(&f64::NAN).is_err());
    }
}
