//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored `serde` crate's content-tree model, parsing the item
//! with the bare `proc_macro` API (no `syn`/`quote` available
//! offline) and emitting the generated impls from format strings.
//!
//! Supported shapes: non-generic structs (named, tuple, unit) and
//! non-generic enums (unit, tuple, and struct variants) in serde's
//! externally-tagged representation, plus `#[serde(skip)]` on named
//! struct fields (skipped on serialize, `Default::default()` on
//! deserialize) and `#[serde(default)]` (a field absent from the
//! serialized map deserializes to `Default::default()` instead of
//! erroring — the back-compat hook wire protocols evolve through).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether `#[serde(skip)]` and
/// `#[serde(default)]` apply.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    StructNamed(Vec<Field>),
    StructTuple(usize),
    StructUnit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derive `serde::Serialize` (content-tree model) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive `serde::Deserialize` (content-tree model) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- parsing ------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Consume a restriction like `pub(crate)`.
                        if matches!(
                            tokens.peek(),
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                        ) {
                            tokens.next();
                        }
                    }
                    "struct" | "enum" => break s,
                    other => panic!("serde_derive: unexpected token `{other}`"),
                }
            }
            other => panic!("serde_derive: unexpected input near {other:?}"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by this offline stand-in");
    }
    let kind = if keyword == "enum" {
        let body = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        };
        ItemKind::Enum(
            split_commas(body)
                .iter()
                .map(|c| parse_variant(c))
                .collect(),
        )
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::StructNamed(
                    split_commas(g.stream())
                        .iter()
                        .map(|c| parse_field(c))
                        .collect(),
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::StructTuple(split_commas(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::StructUnit,
            other => panic!("serde_derive: expected struct body, found {other:?}"),
        }
    };
    Item { name, kind }
}

/// Split a token stream at top-level commas, treating `<...>` spans as
/// nested so generic argument lists stay intact. (`()`/`[]`/`{}` are
/// already single `Group` tokens.)
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Scan a field/variant chunk: drop leading attributes (noting
/// `#[serde(skip)]` / `#[serde(default)]`) and visibility, and return
/// the remaining tokens.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> ((bool, bool), &[TokenTree]) {
    let mut skip = false;
    let mut default = false;
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = chunk.get(i + 1) {
                    skip |= attr_has_serde_flag(g, "skip");
                    default |= attr_has_serde_flag(g, "default");
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    chunk.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    ((skip, default), &chunk[i..])
}

fn attr_has_serde_flag(group: &proc_macro::Group, flag: &str) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == flag)),
        _ => false,
    }
}

fn parse_field(chunk: &[TokenTree]) -> Field {
    let ((skip, default), rest) = strip_attrs_and_vis(chunk);
    match rest.first() {
        Some(TokenTree::Ident(id)) => Field {
            name: id.to_string(),
            skip,
            default,
        },
        other => panic!("serde_derive: expected field name, found {other:?}"),
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let (_, rest) = strip_attrs_and_vis(chunk);
    let name = match rest.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected variant name, found {other:?}"),
    };
    let kind = match rest.get(1) {
        None => VariantKind::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_commas(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantKind::Named(
            split_commas(g.stream())
                .iter()
                .map(|c| parse_field(c))
                .collect(),
        ),
        other => panic!("serde_derive: unexpected tokens after variant `{name}`: {other:?}"),
    };
    Variant { name, kind }
}

// ---- code generation ----------------------------------------------

fn tuple_bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::StructUnit => "::serde::Content::Null".to_string(),
        ItemKind::StructTuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        ItemKind::StructNamed(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_content(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", pairs.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds = tuple_bindings(*arity);
                            let inner = if *arity == 1 {
                                format!("::serde::Serialize::to_content({})", binds[0])
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![({vname:?}.to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({:?}.to_string(), ::serde::Serialize::to_content({}))",
                                        f.name, f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![({vname:?}.to_string(), ::serde::Content::Map(vec![{}]))]),",
                                binds.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
        }}"
    )
}

fn named_fields_de(fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default()", f.name)
            } else if f.default {
                format!(
                    "{}: match {source}.get({:?}) {{\n\
                        ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                        ::std::option::Option::None => ::std::default::Default::default(),\n\
                    }}",
                    f.name, f.name
                )
            } else {
                format!(
                    "{}: ::serde::Deserialize::from_content({source}.get({:?}).ok_or_else(|| ::serde::DeError::custom(concat!(\"missing field `\", {:?}, \"`\")))?)?",
                    f.name, f.name, f.name
                )
            }
        })
        .collect();
    inits.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::StructUnit => format!(
            "match __content {{\n\
                ::serde::Content::Null => Ok({name}),\n\
                other => Err(::serde::DeError::expected(\"null\", other)),\n\
            }}"
        ),
        ItemKind::StructTuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect();
            format!(
                "match __content {{\n\
                    ::serde::Content::Seq(__items) if __items.len() == {arity} => Ok({name}({})),\n\
                    other => Err(::serde::DeError::expected(\"array of length {arity}\", other)),\n\
                }}",
                elems.join(", ")
            )
        }
        ItemKind::StructNamed(fields) => {
            let inits = named_fields_de(fields, "__content");
            format!(
                "match __content {{\n\
                    ::serde::Content::Map(_) => Ok({name} {{ {inits} }}),\n\
                    other => Err(::serde::DeError::expected(\"object\", other)),\n\
                }}"
            )
        }
        ItemKind::Enum(variants) => gen_enum_de(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_content(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
        }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_content(__inner)?)),"
                )),
                VariantKind::Tuple(arity) => {
                    let elems: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vname:?} => match __inner {{\n\
                            ::serde::Content::Seq(__items) if __items.len() == {arity} => Ok({name}::{vname}({})),\n\
                            other => Err(::serde::DeError::expected(\"array of length {arity}\", other)),\n\
                        }},",
                        elems.join(", ")
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits = named_fields_de(fields, "__inner");
                    Some(format!(
                        "{vname:?} => match __inner {{\n\
                            ::serde::Content::Map(_) => Ok({name}::{vname} {{ {inits} }}),\n\
                            other => Err(::serde::DeError::expected(\"object\", other)),\n\
                        }},"
                    ))
                }
            }
        })
        .collect();

    let mut arms = Vec::new();
    if !unit_arms.is_empty() {
        arms.push(format!(
            "::serde::Content::Str(__s) => match __s.as_str() {{\n\
                {}\n\
                other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
            }},",
            unit_arms.join("\n")
        ));
    }
    if !data_arms.is_empty() {
        arms.push(format!(
            "::serde::Content::Map(__pairs) if __pairs.len() == 1 => {{\n\
                let (__tag, __inner) = &__pairs[0];\n\
                match __tag.as_str() {{\n\
                    {}\n\
                    other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                }}\n\
            }}",
            data_arms.join("\n")
        ));
    }
    format!(
        "match __content {{\n\
            {}\n\
            other => Err(::serde::DeError::expected(\"{name} variant\", other)),\n\
        }}",
        arms.join("\n")
    )
}
