//! Offline stand-in for the `crossbeam` umbrella crate.
//!
//! Provides the two pieces this workspace uses:
//!
//! - [`channel`]: multi-producer **multi-consumer** channels (std's
//!   `mpsc` receiver is single-consumer, so this is a small
//!   `Mutex<VecDeque>` + `Condvar` queue with crossbeam's
//!   disconnect semantics),
//! - [`thread`]: scoped threads over `std::thread::scope` with
//!   crossbeam's `scope(|s| ...) -> Result` shape.

pub mod channel {
    //! MPMC channels with crossbeam's API surface.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]. Carries the unsent
    /// message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every [`Receiver`] has been dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently has no messages.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded channel: [`Sender::send`] blocks while `cap`
    /// messages are queued. (`cap` must be at least 1; crossbeam's
    /// zero-capacity rendezvous channels are not supported.)
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "this stand-in does not support rendezvous (cap=0) channels"
        );
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// Returns the message if every [`Receiver`] has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.shared);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue `msg` without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] when a bounded channel is at
        /// capacity, [`TrySendError::Disconnected`] when every
        /// [`Receiver`] has been dropped; both return the message.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = lock(&self.shared);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = st.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued in the channel
        /// (matching crossbeam-channel's `Sender::len`).
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives.
        ///
        /// # Errors
        /// Returns [`RecvError`] once the channel is empty and every
        /// [`Sender`] has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.shared);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Dequeue a message without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] once all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.shared);
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Dequeue a message, blocking at most `timeout`.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] if the deadline passes,
        /// [`RecvTimeoutError::Disconnected`] once the channel is
        /// empty and all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.shared);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.receivers -= 1;
            let disconnected = st.receivers == 0;
            drop(st);
            if disconnected {
                self.shared.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| ...)` shape, backed
    //! by `std::thread::scope`.

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned in a scope; join before scope exit
    /// to observe its result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result
        /// (`Err` holds the panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives a
        /// placeholder argument where crossbeam passes a nested scope
        /// (nested spawning is not supported by this stand-in).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all spawned threads are joined before this returns.
    ///
    /// # Errors
    /// Mirrors crossbeam's signature. Unlike crossbeam, a panic in an
    /// unjoined child propagates as a panic rather than an `Err`
    /// (std scope semantics); joined children report panics through
    /// [`ScopedJoinHandle::join`] as usual.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_fan_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u32;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3).unwrap())
        };
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx
            .recv_timeout(std::time::Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Disconnected);
    }

    #[test]
    fn scoped_threads_join() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().expect("no panic")
        })
        .expect("scope ok");
        assert_eq!(sum, 6);
    }
}
