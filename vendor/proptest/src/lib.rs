//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range and tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, simple `".{lo,hi}"` string patterns, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Cases are generated from a fixed seed (deterministic across runs);
//! failing inputs are reported but **not shrunk**.

use std::ops::Range;

/// Runner configuration: how many accepted cases to execute.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case does not count, try another.
    Reject,
    /// An assertion failed: the property is falsified.
    Fail(String),
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed RNG (deterministic test streams).
    #[must_use]
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter applying a function to generated values — see
/// [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed branch generator, as collected by [`prop_oneof!`].
pub type BranchFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Strategy choosing uniformly among boxed alternatives — the
/// engine behind [`prop_oneof!`].
pub struct OneOf<V> {
    branches: Vec<BranchFn<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.branches.len() as u64) as usize;
        (self.branches[pick])(rng)
    }
}

/// Build a [`OneOf`] from boxed branch generators (used by
/// [`prop_oneof!`]; call the macro instead).
#[must_use]
pub fn one_of<V>(branches: Vec<BranchFn<V>>) -> OneOf<V> {
    assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { branches }
}

/// Choose uniformly among several strategies producing the same value
/// type (real proptest's weighted form is not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$(
            {
                let s = $strategy;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
            }
        ),+])
    };
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// String strategy from a pattern literal. Supports the `".{lo,hi}"`
/// form (printable ASCII of length `lo..=hi`); any other pattern
/// falls back to short alphanumeric strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_pattern(self).unwrap_or((0, 8));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| char::from(b' ' + rng.below(95) as u8))
            .collect()
    }
}

fn parse_len_pattern(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies, under proptest's `prop::collection` path.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies, under proptest's `prop::option` path.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` — see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some` of a value from `inner`, with equal odds.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a property; on failure the case (with
/// its generated inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Discard the current case (it does not count toward the case
/// budget) when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({ $crate::ProptestConfig::default() } $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $config:expr }) => {};
    ({ $config:expr }
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        // Callers write `#[test]` themselves (it arrives via $meta),
        // matching real proptest's convention.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases ({} attempts)",
                    attempts
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // Capture the generated inputs before the body can
                // move them, so a failure can report them (there is
                // no shrinking; this is the only reproduction aid).
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            &$arg
                        ));
                    )+
                    s
                };
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {msg}\ninputs:\n{inputs}");
                    }
                }
            }
        }
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x < 9);
            prop_assert!(x < 9);
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,40}") {
            prop_assert!(s.len() <= 40);
        }

        #[test]
        fn prop_map_applies(n in (0u8..10).prop_map(|x| i32::from(x) * 2)) {
            prop_assert!(n % 2 == 0 && (0..20).contains(&n));
        }

        #[test]
        fn one_of_picks_an_arm(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(matches!(v, 1u8 | 2 | 5 | 6));
        }

        #[test]
        fn option_of_covers_both(o in prop::option::of(3u8..5)) {
            match o {
                None => prop_assert!(true),
                Some(x) => prop_assert!((3..5).contains(&x)),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Failures must report the generated inputs (there is no
        /// shrinking, so this is the only reproduction aid).
        #[test]
        #[should_panic(expected = "inputs:\n  x =")]
        fn failure_reports_inputs(x in 0u8..10) {
            prop_assert!(x > 200, "forced failure");
        }
    }
}
