//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a minimal serialization framework with serde's *surface*
//! (the `Serialize`/`Deserialize` traits and derive macros) over a
//! much simpler data model: every value converts to and from a
//! JSON-shaped [`Content`] tree, which `serde_json` then renders or
//! parses. Formats other than JSON, zero-copy deserialization, and
//! serde's visitor architecture are out of scope.
//!
//! The derive macros (enabled by the `derive` feature, re-exported
//! from `serde_derive`) support non-generic structs and enums with
//! serde's externally-tagged representation, plus `#[serde(skip)]`
//! and `#[serde(default)]` on struct fields.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation every
/// [`Serialize`]/[`Deserialize`] implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object: ordered key/value pairs.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a [`Content::Map`].
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human-readable name for the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) | Content::UInt(_) => "integer",
            Content::Float(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Build a type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Content`] tree.
pub trait Serialize {
    /// Convert `self` into the content tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value from the content tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when `content`'s shape does not match.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls ----------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                i64::try_from(*self).map_or(Content::UInt(*self as u64), Content::Int)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let out = match content {
                    Content::Int(i) => <$t>::try_from(*i).ok(),
                    Content::UInt(u) => <$t>::try_from(*u).ok(),
                    other => return Err(DeError::expected("integer", other)),
                };
                out.ok_or_else(|| {
                    DeError::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Float(f) => Ok(*f as $t),
                    Content::Int(i) => Ok(*i as $t),
                    Content::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---- container impls ----------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Deserialize for Box<str> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone().into_boxed_str()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

/// Map keys renderable to / from JSON object keys (strings).
pub trait MapKey: Sized {
    /// Render the key as a string.
    fn to_key(&self) -> String;
    /// Parse the key back from a string.
    ///
    /// # Errors
    /// Returns [`DeError`] when the string does not parse.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),* $(,)?) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::custom(concat!("invalid ", stringify!($t), " map key"))
                })
            }
        }
    )*};
}

impl_map_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut pairs: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_content()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(pairs)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}
