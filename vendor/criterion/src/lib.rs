//! Offline stand-in for the `criterion` crate.
//!
//! Provides criterion's API shape — `Criterion`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `criterion_group!`,
//! `criterion_main!`, and `black_box` — over a simple wall-clock
//! harness: each benchmark is warmed up, then timed for
//! `sample_size` samples, and the per-iteration median is printed.
//! There is no statistical analysis, HTML report, or CLI filtering.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost. This harness times each
/// routine call individually, so the variants only influence how many
/// inputs are pre-built per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// Rebuild the input for every single iteration.
    PerIteration,
    /// Explicit number of batches per sample.
    NumBatches(u64),
    /// Explicit number of iterations per batch.
    NumIterations(u64),
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(self.sample_size, id, f);
        self
    }
}

/// A set of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{id}", self.group);
        run_benchmark(self.criterion.sample_size, &label, f);
        self
    }

    /// Finish the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(sample_size: usize, label: &str, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(elapsed, iters)| elapsed.as_nanos() as f64 / *iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    println!(
        "  {label}: median {median:.0} ns/iter ({} samples)",
        per_iter.len()
    );
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-sample iteration count aiming at
        // ~1ms per sample (at least 1 iteration).
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// Time `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }
}

/// Declare a group of benchmark functions, criterion-style. Both the
/// `name = ..; config = ..; targets = ..` form and the positional
/// form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::{BatchSize, Criterion};

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("smoke");
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| 2 * 2));
    }
}
