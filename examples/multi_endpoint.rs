//! The multi-endpoint `ServingRuntime`: several paper workloads —
//! and several *versions* of one of them — served as named, sharded
//! endpoints behind a single worker pool and client.
//!
//! Demonstrates the full builder surface:
//! - named endpoints (`product`, `toxic`) with shard counts,
//! - a weighted canary (`product` v2 takes ~25% of unpinned traffic),
//! - key-hash shard routing (equal keys stick to one shard),
//! - the statistics-aware scheduler reading each plan's
//!   `PlanCounters` and giving the escalation-heavy endpoint a
//!   dedicated worker tail.
//!
//! ```text
//! cargo run --release --example multi_endpoint
//! ```

use std::error::Error;

use willump_repro::prelude::*;

fn optimize(w: &Workload, cascades: bool) -> Result<ServingPlan, Box<dyn Error>> {
    let cfg = WillumpConfig {
        cascades,
        ..WillumpConfig::default()
    };
    let opt =
        Willump::new(cfg).optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;
    Ok(opt.serving_plan())
}

fn main() -> Result<(), Box<dyn Error>> {
    // Small workloads: this example doubles as a CI smoke.
    let cfg = WorkloadConfig {
        n_train: 400,
        n_valid: 200,
        n_test: 200,
        ..WorkloadConfig::default()
    };
    let product = WorkloadKind::Product.generate(&cfg)?;
    let toxic = WorkloadKind::Toxic.generate(&cfg)?;

    // Two plan variants of the product pipeline: the compiled plan
    // (v1) and the cascade plan (v2, canary at 25% of traffic).
    let product_v1 = optimize(&product, false)?;
    let product_v2 = optimize(&product, true)?;
    let mut toxic_plan = optimize(&toxic, true)?;
    // Tighten the toxic cascade's confidence gate so most rows
    // escalate to the full model: a deliberately escalation-heavy
    // endpoint the scheduler should isolate.
    toxic_plan.set_threshold(0.995);

    let mut builder = ServingRuntime::builder();
    builder.config(ServerConfig::builder().workers(4).build());
    builder.scheduler(SchedulerPolicy::EscalationAware {
        threshold: 0.25,
        dedicated_workers: 2,
    });
    builder.rebalance_every(0); // rebalance manually below
    builder.plan("product", product_v1).shards(2).weight(3.0);
    builder
        .plan("product", product_v2)
        .version(2)
        .shards(2)
        .weight(1.0);
    builder.plan("toxic", toxic_plan).shards(2);
    let runtime = builder.build()?;
    let client = runtime.client();

    println!("one runtime, three endpoint deployments:\n");
    for e in runtime.endpoints() {
        println!(
            "  {}@v{}  shards={} weight={}",
            e.name(),
            e.version(),
            e.shards(),
            e.weight()
        );
    }

    // Unpinned traffic splits 3:1 across product versions; pinned
    // traffic bypasses the router; keyed traffic sticks to a shard.
    for r in 0..120 {
        let row = table_row_to_wire(&product.test, r % product.test.n_rows())?;
        client.predict_keyed("product", &format!("user-{}", r % 10), vec![row])?;
    }
    for r in 0..40 {
        let row = table_row_to_wire(&product.test, r)?;
        client.predict_version("product", 2, vec![row])?;
    }
    for r in 0..60 {
        let row = table_row_to_wire(&toxic.test, r)?;
        client.predict_endpoint("toxic", vec![row])?;
    }

    println!("\ntraffic after 120 canary-split + 40 pinned + 60 toxic requests:\n");
    for e in runtime.endpoints() {
        println!(
            "  {}@v{}  requests={:<4} rows={:<4} per-shard={:?}  escalation={:.2}",
            e.name(),
            e.version(),
            e.stats().requests(),
            e.stats().rows(),
            e.stats().shard_requests(),
            e.escalation_rate(),
        );
    }

    // The scheduler moves escalation-heavy endpoints onto a dedicated
    // worker tail once their PlanCounters show heavy escalation.
    println!("\nshard->worker assignment before rebalance:");
    for e in runtime.endpoints() {
        println!("  {}@v{}: {:?}", e.name(), e.version(), e.assignment());
    }
    runtime.rebalance();
    println!("after rebalance (escalation-aware, 2 dedicated workers):");
    for e in runtime.endpoints() {
        println!(
            "  {}@v{}: {:?}{}",
            e.name(),
            e.version(),
            e.assignment(),
            if e.escalation_rate() > 0.25 {
                "  <- dedicated tail"
            } else {
                ""
            }
        );
    }

    println!(
        "\nglobal: requests={} rows={} batches={} coalesced_rows={}",
        runtime.stats().requests(),
        runtime.stats().rows(),
        runtime.stats().batches(),
        runtime.stats().coalesced_rows(),
    );
    Ok(())
}
