//! Describe a pipeline as text instead of builder calls.
//!
//! The paper's dataflow stage infers transformation graphs from Python
//! functions; this reproduction's closest analogue is a small pipeline
//! description language (see `willump_graph::parse`). Fitted operators
//! are bound by name, topology comes from the text, and the resulting
//! graph optimizes exactly like a hand-built one.
//!
//! ```text
//! cargo run --release --example pipeline_dsl
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::sync::Arc;

use willump::{Pipeline, Willump, WillumpConfig};
use willump_data::{Column, Table};
use willump_featurize::{Analyzer, TfIdfVectorizer, VectorizerConfig};
use willump_graph::{parse_pipeline, Operator};
use willump_models::{metrics, LogisticParams, ModelSpec};

const DESCRIPTION: &str = "
    # Product-title quality, paper Table 1's Product shape:
    # one cheap string-stats block and one expensive TF-IDF block.
    source title
    stats    = string_stats(title)
    tfidf    = op:title_tfidf(title)
    features = concat(stats, tfidf)
";

fn make_data(n: usize, seed: u64) -> (Table, Vec<f64>) {
    use rand::Rng;
    let mut rng = willump_data::rng::seeded(seed);
    let vocab = willump_data::text::SyntheticVocab::new(400);
    let mut titles = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let concise = rng.gen_bool(0.5);
        let len = if concise { 3 } else { 12 };
        let mut t = vocab.document(&mut rng, len, None, 0.0);
        if !concise {
            t.push_str(" limited offer best price deal sale");
        }
        titles.push(t);
        labels.push(f64::from(concise));
    }
    let mut table = Table::new();
    table
        .add_column("title", Column::from(titles))
        .expect("fresh table");
    (table, labels)
}

fn main() -> Result<(), Box<dyn Error>> {
    let (train, train_y) = make_data(1200, 1);
    let (valid, valid_y) = make_data(600, 2);
    let (test, test_y) = make_data(600, 3);

    // Fit the TF-IDF transformer, then bind it for the DSL to wire.
    let mut tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Word,
        min_df: 2,
        ..VectorizerConfig::default()
    })?;
    let corpus = train
        .column("title")
        .and_then(Column::as_str_slice)
        .expect("title column");
    tfidf.fit(corpus);

    let mut bindings = HashMap::new();
    bindings.insert("title_tfidf".to_string(), Operator::TfIdf(Arc::new(tfidf)));

    let graph = Arc::new(parse_pipeline(DESCRIPTION, &bindings)?);
    println!(
        "parsed {} nodes; sources: {:?}",
        graph.len(),
        graph.source_columns()
    );

    let pipeline = Pipeline::new(graph, ModelSpec::Logistic(LogisticParams::default()));
    let optimized = Willump::new(WillumpConfig::default())
        .optimize(&pipeline, &train, &train_y, &valid, &valid_y)?;

    let report = optimized.report();
    println!("efficient IFVs: {:?}", report.efficient_set);
    println!("cascades deployed: {}", report.cascades_deployed);

    let scores = optimized.predict_batch(&test)?;
    println!("test accuracy: {:.4}", metrics::accuracy(&scores, &test_y));
    Ok(())
}
