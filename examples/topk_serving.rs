//! Top-K serving with automatic filter models (paper §4.3): rank the
//! 100 items most likely to default in the Credit workload, comparing
//! the exact full-model pass against Willump's filtered pass.
//!
//! ```text
//! cargo run --release --example topk_serving
//! ```

use std::error::Error;
use std::time::Instant;

use willump::{QueryMode, Willump, WillumpConfig};
use willump_models::metrics;
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn Error>> {
    let k = 100;
    let w = WorkloadKind::Credit.generate(&WorkloadConfig {
        n_test: 4_000,
        ..WorkloadConfig::default()
    })?;
    println!(
        "credit workload: find the top {k} highest-risk clients of {}",
        w.test.n_rows()
    );

    let opt = Willump::new(WillumpConfig {
        mode: QueryMode::TopK { k },
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;
    println!(
        "filter model deployed: {} (efficient IFVs {:?})",
        opt.report().filter_deployed,
        opt.report().efficient_set
    );

    // Exact: full model over the entire batch.
    let start = Instant::now();
    let feats = opt.executor().features_batch(&w.test, None)?;
    let exact_scores = opt.full_model().predict_scores(&feats);
    let exact = metrics::top_k_indices(&exact_scores, k);
    let exact_time = start.elapsed();

    // Filtered: filter model scores all, full model reranks survivors.
    let start = Instant::now();
    let (approx, stats) = opt.top_k(&w.test, k)?;
    let approx_time = start.elapsed();

    if let Some(s) = stats {
        println!(
            "filter kept {} of {} candidates for the full model",
            s.subset_size, s.batch_size
        );
    }
    println!("\nexact:    {exact_time:>8.1?}");
    println!(
        "filtered: {approx_time:>8.1?}  ({:.1}x speedup)",
        exact_time.as_secs_f64() / approx_time.as_secs_f64()
    );
    println!(
        "precision {:.2}, mAP {:.2}",
        metrics::precision_at_k(&approx, &exact),
        metrics::mean_average_precision(&approx, &exact),
    );
    println!(
        "average default-risk of returned set: {:.4} (exact {:.4})",
        metrics::average_value(&approx, &exact_scores),
        metrics::average_value(&exact, &exact_scores),
    );
    Ok(())
}
