//! Serving a Willump-optimized pipeline through the serving layer
//! (paper §6.3, Table 6): same RPC boundary, faster pipeline. Built
//! on the modern `ServingRuntime` builder API — the plain and
//! optimized pipelines are two *named endpoints* of one runtime
//! instead of two separate servers — then a worker sweep showing how
//! coalesced batching and multiple executor threads lift throughput
//! under concurrent clients.
//!
//! ```text
//! cargo run --release --example clipper_integration
//! ```

use std::error::Error;
use std::sync::Arc;
use std::time::Instant;

use willump::{Willump, WillumpConfig};
use willump_serve::{table_row_to_wire, Servable, ServerConfig, ServingRuntime};
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn mean_latency(
    runtime: &ServingRuntime,
    endpoint: &str,
    test: &willump_data::Table,
    batch: usize,
    reqs: usize,
) -> Result<f64, Box<dyn Error>> {
    let client = runtime.client();
    let n = test.n_rows();
    // Warm-up.
    let rows: Vec<_> = (0..batch)
        .map(|i| table_row_to_wire(test, i % n))
        .collect::<Result<_, _>>()?;
    client.predict_endpoint(endpoint, rows)?;
    let start = Instant::now();
    for r in 0..reqs {
        let rows: Vec<_> = (0..batch)
            .map(|i| table_row_to_wire(test, (r * batch + i) % n))
            .collect::<Result<_, _>>()?;
        client.predict_endpoint(endpoint, rows)?;
    }
    Ok(start.elapsed().as_secs_f64() / reqs as f64)
}

fn main() -> Result<(), Box<dyn Error>> {
    let w = WorkloadKind::Toxic.generate(&WorkloadConfig::default())?;

    // Both pipelines behind ONE runtime, as named endpoints — the
    // legacy API needed one `ClipperServer` per predictor.
    let plain: Arc<dyn Servable> = Arc::new(w.pipeline.fit_baseline(&w.train, &w.train_y, 42)?);
    let optimized: Arc<dyn Servable> = Arc::new(Willump::new(WillumpConfig::default()).optimize(
        &w.pipeline,
        &w.train,
        &w.train_y,
        &w.valid,
        &w.valid_y,
    )?);
    let mut builder = ServingRuntime::builder();
    builder.endpoint("toxic-plain", plain);
    builder.endpoint("toxic-willump", optimized.clone());
    let runtime = builder.build()?;

    println!("serving the toxic-comment pipeline through the RPC layer:\n");
    println!("batch | clipper      | clipper+willump | speedup");
    println!("------|--------------|-----------------|--------");
    for batch in [1usize, 10, 100] {
        let reqs = (300 / batch).clamp(10, 100);
        let reqs_plain = (60 / batch).clamp(5, 60);
        let lat_plain = mean_latency(&runtime, "toxic-plain", &w.test, batch, reqs_plain)?;
        let lat_opt = mean_latency(&runtime, "toxic-willump", &w.test, batch, reqs)?;
        println!(
            "{batch:>5} | {:>9.2?}    | {:>9.2?}       | {:.1}x",
            std::time::Duration::from_secs_f64(lat_plain),
            std::time::Duration::from_secs_f64(lat_opt),
            lat_plain / lat_opt
        );
    }
    println!("\nfixed RPC overheads amortize with batch size, so the");
    println!("speedup grows as batches get larger (paper Table 6).");

    // Scale-out sweep: the same optimized pipeline behind runtimes
    // with 1/2/4 workers and coalesced batching, against the
    // pre-coalescing single-worker configuration, under concurrent
    // clients.
    println!("\nworker sweep (4 concurrent clients, batch 10):\n");
    println!("config                  | throughput");
    println!("------------------------|------------");
    let configs = [
        ("seed (1w, no coalesce)", 1usize, false),
        ("1 worker, coalescing  ", 1, true),
        ("2 workers, coalescing ", 2, true),
        ("4 workers, coalescing ", 4, true),
    ];
    for (label, workers, coalesce) in configs {
        let mut builder = ServingRuntime::builder();
        builder.config(
            ServerConfig::builder()
                .workers(workers)
                .coalesce(coalesce)
                .build(),
        );
        builder
            .endpoint("toxic-willump", optimized.clone())
            .shards(workers);
        let runtime = builder.build()?;
        // The same harness the recorded EXPERIMENTS.md sweep uses.
        let tput =
            willump_bench::serving_throughput(&runtime, Some("toxic-willump"), &w.test, 10, 4, 40);
        println!("{label}  | {tput:>7.0} rows/s");
    }
    println!("\ncoalescing merges concurrent same-endpoint, same-schema");
    println!("requests into one model-level batch; extra workers overlap");
    println!("request handling.");
    Ok(())
}
