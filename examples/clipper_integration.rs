//! Serving a Willump-optimized pipeline through the Clipper-like
//! layer (paper §6.3, Table 6): same RPC boundary, faster pipeline.
//! Then scaling the server itself: a worker sweep showing how
//! coalesced batching and multiple executor threads lift throughput
//! under concurrent clients.
//!
//! ```text
//! cargo run --release --example clipper_integration
//! ```

use std::error::Error;
use std::sync::Arc;
use std::time::Instant;

use willump::{Willump, WillumpConfig};
use willump_serve::{table_row_to_wire, ClipperServer, Servable, ServerConfig};
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn mean_latency(
    server: &ClipperServer,
    test: &willump_data::Table,
    batch: usize,
    reqs: usize,
) -> Result<f64, Box<dyn Error>> {
    let client = server.client();
    let n = test.n_rows();
    // Warm-up.
    let rows: Vec<_> = (0..batch)
        .map(|i| table_row_to_wire(test, i % n))
        .collect::<Result<_, _>>()?;
    client.predict(rows)?;
    let start = Instant::now();
    for r in 0..reqs {
        let rows: Vec<_> = (0..batch)
            .map(|i| table_row_to_wire(test, (r * batch + i) % n))
            .collect::<Result<_, _>>()?;
        client.predict(rows)?;
    }
    Ok(start.elapsed().as_secs_f64() / reqs as f64)
}

fn main() -> Result<(), Box<dyn Error>> {
    let w = WorkloadKind::Toxic.generate(&WorkloadConfig::default())?;

    // Unoptimized pipeline behind the server.
    let plain: Arc<dyn Servable> = Arc::new(w.pipeline.fit_baseline(&w.train, &w.train_y, 42)?);
    let plain_server = ClipperServer::start(plain, ServerConfig::default());

    // Willump-optimized pipeline behind an identical server.
    let optimized: Arc<dyn Servable> = Arc::new(Willump::new(WillumpConfig::default()).optimize(
        &w.pipeline,
        &w.train,
        &w.train_y,
        &w.valid,
        &w.valid_y,
    )?);
    let opt_server = ClipperServer::start(optimized, ServerConfig::default());

    println!("serving the toxic-comment pipeline through the RPC layer:\n");
    println!("batch | clipper      | clipper+willump | speedup");
    println!("------|--------------|-----------------|--------");
    for batch in [1usize, 10, 100] {
        let reqs = (300 / batch).clamp(10, 100);
        let lat_plain = mean_latency(&plain_server, &w.test, batch, reqs)?;
        let lat_opt = mean_latency(&opt_server, &w.test, batch, reqs)?;
        println!(
            "{batch:>5} | {:>9.2?}    | {:>9.2?}       | {:.1}x",
            std::time::Duration::from_secs_f64(lat_plain),
            std::time::Duration::from_secs_f64(lat_opt),
            lat_plain / lat_opt
        );
    }
    println!("\nfixed RPC overheads amortize with batch size, so the");
    println!("speedup grows as batches get larger (paper Table 6).");

    // Scale-out sweep: the same optimized pipeline behind servers with
    // 1/2/4 workers and coalesced batching, against the pre-coalescing
    // single-worker configuration, under concurrent clients.
    let optimized: Arc<dyn Servable> = Arc::new(Willump::new(WillumpConfig::default()).optimize(
        &w.pipeline,
        &w.train,
        &w.train_y,
        &w.valid,
        &w.valid_y,
    )?);
    println!("\nworker sweep (4 concurrent clients, batch 10):\n");
    println!("config                  | throughput");
    println!("------------------------|------------");
    let configs = [
        ("seed (1w, no coalesce)", 1usize, false),
        ("1 worker, coalescing  ", 1, true),
        ("2 workers, coalescing ", 2, true),
        ("4 workers, coalescing ", 4, true),
    ];
    for (label, workers, coalesce) in configs {
        let server = ClipperServer::start(
            optimized.clone(),
            ServerConfig {
                workers,
                coalesce,
                ..ServerConfig::default()
            },
        );
        // The same harness the recorded EXPERIMENTS.md sweep uses.
        let tput = willump_bench::serving_throughput(&server, &w.test, 10, 4, 40);
        println!("{label}  | {tput:>7.0} rows/s");
    }
    println!("\ncoalescing merges concurrent same-schema requests into one");
    println!("model-level batch; extra workers overlap request handling.");
    Ok(())
}
