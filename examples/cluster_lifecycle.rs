//! Cluster lifecycle: kill a node and watch the health prober
//! re-admit it, then live-drain a shard under load and let the
//! coordinator rebalance onto a spare node.
//!
//! Like `cross_process`, this example really crosses process
//! boundaries: it re-executes its own binary with `--node NAME`, and
//! each child hosts a runtime behind a `RemoteRuntimeNode` TCP
//! listener. The parent then walks the full control-plane story:
//!
//! 1. serves `affine` with 2 local + 2 remote shards (node A) with the
//!    background prober running (`ServingRuntime::start_cluster`);
//! 2. kills node A mid-traffic — breakers open, requests fail over —
//!    then restarts it at the same address and waits for the prober to
//!    close the breakers again: **automatic re-admission**, no restart
//!    of the parent, no manual call;
//! 3. live-drains one remote shard under continuous load
//!    (`drain_shard`: zero in-flight loss, key-hash domain shrinks
//!    atomically) and rejoins it (`add_remote_shard`);
//! 4. hands the topology to a `ClusterCoordinator` with a spare node B
//!    registered, kills node A for good, and shows `rebalance()`
//!    migrating one shard per cycle onto B.
//!
//! ```text
//! cargo run --release --example cluster_lifecycle
//! ```

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use willump_repro::prelude::*;

/// The deterministic predictor every process serves: 3x - 1.
struct Affine;
impl Servable for Affine {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or("missing x")?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs.into_iter().map(|x| 3.0 * x - 1.0).collect())
    }
}

fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
    xs.iter()
        .map(|&x| vec![("x".to_string(), Value::Float(x))])
        .collect()
}

/// Child mode: host a runtime, announce the address, serve until the
/// parent closes stdin. `--addr` pins the listen address so a killed
/// node can be "restarted" where the parent expects it.
fn run_node(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint("affine", Arc::new(Affine)).shards(2);
    let node = RemoteRuntimeNode::bind(addr, b.build()?)?;
    println!("NODE_ADDR {}", node.local_addr());
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);
    Ok(())
}

/// Spawn a child node (optionally pinned to `addr`) and return it with
/// its announced address.
fn spawn_node(addr: &str) -> Result<(Child, String), Box<dyn std::error::Error>> {
    let mut child = Command::new(std::env::current_exe()?)
        .args(["--node", addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("child announces its address")?;
        if let Some(addr) = line.strip_prefix("NODE_ADDR ") {
            break addr.to_string();
        }
    };
    Ok((child, addr))
}

fn kill(mut child: Child) -> Result<(), Box<dyn std::error::Error>> {
    child.kill()?;
    child.wait()?;
    drop(child.stdin.take());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--node") {
        return run_node(args.get(i + 1).map(String::as_str).unwrap_or("127.0.0.1:0"));
    }

    // ---- a 2-local + 2-remote endpoint with the prober running -----
    let (node_a, addr_a) = spawn_node("127.0.0.1:0")?;
    println!("node A listening on {addr_a}");

    let long_cooldown = Duration::from_secs(600); // only the prober may re-admit
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint("affine", Arc::new(Affine))
        .shards(2)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr_a)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long_cooldown),
        ))
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr_a)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long_cooldown),
        ));
    let runtime = b.build()?;
    let cluster = runtime.start_cluster(ClusterConfig {
        probe_interval: Duration::from_millis(20),
        ..ClusterConfig::default()
    });
    let client = runtime.client();
    let ep = runtime.endpoint("affine", 1).expect("registered");

    for i in 0..20 {
        client.predict_keyed("affine", &format!("user-{i}"), wire_rows(&[i as f64]))?;
    }
    println!(
        "20 keyed requests served; per-shard {:?} (shards 2,3 on node A)\n",
        ep.stats().shard_requests()
    );

    // ---- kill node A: breakers open, traffic fails over ------------
    println!("killing node A…");
    kill(node_a)?;
    for i in 0..8 {
        client.predict_keyed("affine", &format!("user-{i}"), wire_rows(&[i as f64]))?;
    }
    println!(
        "8 requests with node A dead: all served, failovers {}, breakers {:?}",
        runtime.stats().failovers(),
        ep.transport_breaker_states()
    );
    assert!(ep
        .transport_breaker_states()
        .iter()
        .any(|s| *s != BreakerState::Closed));

    // ---- restart node A: the prober re-admits it automatically -----
    println!("\nrestarting node A at {addr_a}…");
    let (node_a, _) = {
        // The OS may hold the port briefly; retry the pinned bind.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match spawn_node(&addr_a) {
                Ok(pair) => break pair,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while ep
        .transport_breaker_states()
        .iter()
        .any(|s| *s != BreakerState::Closed)
    {
        assert!(
            Instant::now() < deadline,
            "prober failed to re-admit node A within 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "prober re-admitted node A: breakers {:?}, probes sent {} ok {}",
        ep.transport_breaker_states(),
        runtime.stats().probes_sent(),
        runtime.stats().probes_ok()
    );

    // ---- live drain + rejoin under continuous load ------------------
    println!("\ndraining remote shard 3 under load…");
    let served_during_drain = std::sync::atomic::AtomicU64::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| -> Result<(), ServeError> {
        let load_client = runtime.client();
        let served = &served_during_drain;
        let stop = &stop;
        scope.spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                load_client
                    .predict_keyed("affine", &format!("key-{i}"), wire_rows(&[i as f64]))
                    .expect("no request may fail during a drain");
                served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                i += 1;
            }
        });
        while served.load(std::sync::atomic::Ordering::Relaxed) < 100 {
            std::thread::sleep(Duration::from_millis(1));
        }
        runtime.drain_shard("affine", 1, 3, Duration::from_secs(10))?;
        let mark = served.load(std::sync::atomic::Ordering::Relaxed);
        while served.load(std::sync::atomic::Ordering::Relaxed) < mark + 100 {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    })?;
    println!(
        "drain completed with zero failed requests ({} served concurrently); shards now {}",
        served_during_drain.load(std::sync::atomic::Ordering::Relaxed),
        ep.shards()
    );
    assert_eq!(ep.shards(), 3);
    let rejoined = runtime.add_remote_shard("affine", 1, Arc::new(RemoteWorker::new(&addr_a)))?;
    println!("shard {rejoined} rejoined; shards back to {}", ep.shards());

    // ---- coordinator: kill A for good, rebalance onto spare B ------
    let (node_b, addr_b) = spawn_node("127.0.0.1:0")?;
    println!("\nspare node B listening on {addr_b}; killing node A for good…");
    kill(node_a)?;
    for i in 0..8 {
        client.predict_keyed("affine", &format!("user-{i}"), wire_rows(&[i as f64]))?;
    }

    let mut coordinator = ClusterCoordinator::new();
    coordinator
        .register_node(&addr_a)
        .register_node(&addr_b)
        .drain_timeout(Duration::from_secs(2));
    for cycle in 1.. {
        match coordinator.rebalance(&runtime) {
            Some(m) => println!(
                "cycle {cycle}: migrated `{}` v{} shard {} from {} to {}",
                m.endpoint, m.version, m.shard, m.from, m.to
            ),
            None => {
                println!("cycle {cycle}: balanced, nothing to migrate");
                break;
            }
        }
    }
    let descs = ep.transport_descriptions();
    assert!(descs.iter().all(|d| d.contains(&addr_b)));
    let scores = client.predict_keyed("affine", "user-1", wire_rows(&[5.0]))?;
    assert_eq!(scores, vec![14.0]);
    println!("all remote shards now on node B; traffic verified end to end");

    cluster.stop();
    kill(node_b)?;
    println!("\ncluster lifecycle OK");
    Ok(())
}
