//! The paper's Figure 1 scenario: a music recommender whose features
//! live in (simulated) remote tables. Shows how feature-level caching
//! and cascades cut remote requests and per-query latency.
//!
//! ```text
//! cargo run --release --example music_recommender
//! ```

use std::error::Error;

use willump::{CachingConfig, QueryMode, Willump, WillumpConfig};
use willump_graph::InputRow;
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn Error>> {
    // Remote tables: ~1 ms round trips charged to a virtual clock.
    let cfg = WorkloadConfig::default().with_remote_tables();
    let w = WorkloadKind::Music.generate(&cfg)?;
    let store = w.store.clone().expect("music uses a feature store");
    println!(
        "music workload: {} queries against {} remote feature tables",
        w.test.n_rows(),
        5
    );

    let serve = |opt: &willump::OptimizedPipeline| -> Result<(u64, f64), Box<dyn Error>> {
        store.stats().reset();
        store.clock().reset();
        let start = std::time::Instant::now();
        for r in 0..w.test.n_rows() {
            let input = InputRow::from_table(&w.test, r)?;
            opt.predict_one(&input)?;
        }
        let wall = start.elapsed().as_secs_f64();
        let effective = wall + store.clock().now_nanos() as f64 / 1e9;
        Ok((
            store.stats().round_trips(),
            effective / w.test.n_rows() as f64 * 1e3,
        ))
    };

    // Plain compiled serving: every query fetches every table.
    let plain = Willump::new(WillumpConfig {
        cascades: false,
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;
    let (base_requests, base_ms) = serve(&plain)?;
    println!("\nno optimizations:      {base_requests} requests, {base_ms:.2} ms/query");

    // Feature-level caching: per-IFV LRU keyed by entity id.
    let cached = Willump::new(WillumpConfig {
        cascades: false,
        mode: QueryMode::ExampleAtATime,
        caching: Some(CachingConfig { capacity: None }),
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;
    let (cache_requests, cache_ms) = serve(&cached)?;
    println!(
        "feature caching:       {cache_requests} requests ({:.1}% fewer), {cache_ms:.2} ms/query",
        100.0 * (1.0 - cache_requests as f64 / base_requests as f64)
    );

    // Cascades + caching: confident queries skip the expensive tables
    // entirely.
    let full = Willump::new(WillumpConfig {
        cascades: true,
        mode: QueryMode::ExampleAtATime,
        caching: Some(CachingConfig { capacity: None }),
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;
    let (both_requests, both_ms) = serve(&full)?;
    println!(
        "caching + cascades:    {both_requests} requests ({:.1}% fewer), {both_ms:.2} ms/query",
        100.0 * (1.0 - both_requests as f64 / base_requests as f64)
    );
    if let Some(sel) = &full.report().threshold {
        println!(
            "\ncascade threshold {:.1}; small model answered {:.0}% of validation queries",
            sel.threshold,
            sel.kept_fraction * 100.0
        );
    }
    Ok(())
}
