//! Quickstart: build a tiny ML inference pipeline, optimize it with
//! Willump, and compare against the unoptimized baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;
use std::time::Instant;

use willump::{Pipeline, Willump, WillumpConfig};
use willump_data::{Column, Table};
use willump_featurize::{Analyzer, TfIdfVectorizer, VectorizerConfig};
use willump_graph::{GraphBuilder, Operator};
use willump_models::{metrics, LogisticParams, ModelSpec};

/// A toy sentiment task: documents with "great"/"awful" markers, some
/// obvious (short + shouty) and some subtle (marker buried in text).
fn make_data(n: usize, seed: u64) -> (Table, Vec<f64>) {
    use rand::Rng;
    let mut rng = willump_data::rng::seeded(seed);
    let vocab = willump_data::text::SyntheticVocab::new(500);
    let mut docs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let positive = rng.gen_bool(0.5);
        let easy = rng.gen_bool(0.7);
        let len = if easy { 4 } else { 14 };
        let mut d = vocab.document(&mut rng, len, None, 0.0);
        d.push(' ');
        d.push_str(if positive { "great" } else { "awful" });
        if easy && positive {
            d.push_str(" !!!");
        }
        docs.push(d);
        labels.push(f64::from(positive));
    }
    let mut t = Table::new();
    t.add_column("text", Column::from(docs))
        .expect("fresh table");
    (t, labels)
}

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Generate train/validation/test data.
    let (train, train_y) = make_data(1500, 1);
    let (valid, valid_y) = make_data(700, 2);
    let (test, test_y) = make_data(700, 3);

    // 2. Describe the pipeline as a transformation graph: cheap string
    //    statistics plus an expensive character-n-gram TF-IDF, both
    //    feeding a logistic-regression model.
    let mut tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Char,
        ngram_lo: 3,
        ngram_hi: 5,
        min_df: 3,
        sublinear_tf: true,
        ..VectorizerConfig::default()
    })?;
    let corpus = train
        .column("text")
        .and_then(Column::as_str_slice)
        .expect("text column");
    tfidf.fit(corpus);

    let mut b = GraphBuilder::new();
    let text = b.source("text");
    let stats = b.add("stats", Operator::StringStats, [text])?;
    let chars = b.add("char_tfidf", Operator::TfIdf(Arc::new(tfidf)), [text])?;
    let graph = Arc::new(b.finish_with_concat("features", [stats, chars])?);
    let pipeline = Pipeline::new(graph, ModelSpec::Logistic(LogisticParams::default()));

    // 3. The unoptimized baseline: interpreted execution, full model.
    let baseline = pipeline.fit_baseline(&train, &train_y, 42)?;
    let start = Instant::now();
    let base_scores = baseline.predict_batch(&test)?;
    let base_time = start.elapsed();

    // 4. Willump: compile, analyze IFVs, train cascades.
    let optimized = Willump::new(WillumpConfig::default())
        .optimize(&pipeline, &train, &train_y, &valid, &valid_y)?;
    let start = Instant::now();
    let opt_scores = optimized.predict_batch(&test)?;
    let opt_time = start.elapsed();

    // 5. Same accuracy, much faster.
    let report = optimized.report();
    println!("efficient IFV set:    {:?}", report.efficient_set);
    println!("cascades deployed:    {}", report.cascades_deployed);
    if let Some(sel) = &report.threshold {
        println!("cascade threshold:    {:.1}", sel.threshold);
    }
    println!(
        "baseline:  {:>8.1?}  accuracy {:.4}",
        base_time,
        metrics::accuracy(&base_scores, &test_y)
    );
    println!(
        "optimized: {:>8.1?}  accuracy {:.4}  ({:.1}x speedup)",
        opt_time,
        metrics::accuracy(&opt_scores, &test_y),
        base_time.as_secs_f64() / opt_time.as_secs_f64()
    );
    Ok(())
}
