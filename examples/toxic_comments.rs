//! The paper's motivating scenario (§1): a toxic-comment classifier
//! where curse words let an approximate model short-circuit most
//! inputs while expensive character-n-gram TF-IDF handles the rest.
//!
//! ```text
//! cargo run --release --example toxic_comments
//! ```

use std::error::Error;
use std::time::Instant;

use willump::{QueryMode, Willump, WillumpConfig};
use willump_models::metrics;
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn Error>> {
    // Generate the Toxic benchmark (synthetic Jigsaw-style comments).
    let w = WorkloadKind::Toxic.generate(&WorkloadConfig::default())?;
    println!(
        "generated {} train / {} test comments",
        w.train.n_rows(),
        w.test.n_rows()
    );

    // Unoptimized: interpreted execution, every feature computed for
    // every comment.
    let baseline = w.pipeline.fit_baseline(&w.train, &w.train_y, 42)?;
    let start = Instant::now();
    let base_scores = baseline.predict_batch(&w.test)?;
    let base_time = start.elapsed();

    // Willump-optimized with end-to-end cascades.
    let optimized = Willump::new(WillumpConfig {
        mode: QueryMode::Batch,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;

    let start = Instant::now();
    let (scores, stats) = optimized.predict_batch_with_stats(&w.test)?;
    let opt_time = start.elapsed();

    let report = optimized.report();
    println!("\nIFV statistics (importance / cost):");
    for (g, (imp, cost)) in report
        .ifv_stats
        .importance
        .iter()
        .zip(&report.ifv_stats.cost)
        .enumerate()
    {
        let marker = if report.efficient_set.contains(&g) {
            " <- efficient"
        } else {
            ""
        };
        println!(
            "  IFV {g}: importance {imp:.4}, cost {:.1}us/row{marker}",
            cost * 1e6
        );
    }
    if let Some(sel) = &report.threshold {
        println!(
            "cascade threshold {:.1} (full acc {:.4}, cascade acc {:.4} on validation)",
            sel.threshold, sel.full_accuracy, sel.cascade_accuracy
        );
    }
    if let Some(s) = stats {
        println!(
            "small model resolved {}/{} comments ({:.0}%)",
            s.resolved_small,
            s.resolved_small + s.escalated,
            100.0 * s.small_fraction()
        );
    }
    println!(
        "\nbaseline:  {base_time:>8.1?}  accuracy {:.4}",
        metrics::accuracy(&base_scores, &w.test_y)
    );
    println!(
        "optimized: {opt_time:>8.1?}  accuracy {:.4}  ({:.1}x end-to-end speedup)",
        metrics::accuracy(&scores, &w.test_y),
        base_time.as_secs_f64() / opt_time.as_secs_f64()
    );
    Ok(())
}
