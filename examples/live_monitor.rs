//! Live ops monitoring: watch a serving runtime through a `StatsHub`
//! while a stateful streaming workload runs — and reconstruct what
//! happened purely from the monitor's history and event feed.
//!
//! The clickstream workload folds click events into the same feature
//! store tables the serving path joins against (streaming fraud
//! detection). This example:
//!
//! 1. serves the clickstream plan over 2 local shards plus 1
//!    in-process remote shard, with a background monitor sampling
//!    every 10ms (`ServingRuntime::start_monitor`);
//! 2. drives keyed traffic while a writer thread folds click events
//!    concurrently (`ClickstreamFolder`);
//! 3. live-drains the remote shard mid-run;
//! 4. then prints the whole story from the hub alone — per-interval
//!    rates from `StatsHub::deltas`, topology changes from
//!    `StatsHub::events` — without touching the runtime's own stats.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use willump_repro::prelude::*;
use willump_repro::willump_workloads::clickstream::{event_stream, ClickstreamFolder};

const REQUESTS_PER_THREAD: usize = 200;
const LOAD_THREADS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- the streaming workload, compiled to a serving plan --------
    let cfg = WorkloadConfig {
        n_train: 400,
        n_valid: 200,
        n_test: 300,
        seed: 42,
        ..WorkloadConfig::default()
    };
    let w = WorkloadKind::Clickstream.generate(&cfg)?;
    let plan = Willump::new(WillumpConfig {
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?
    .serving_plan();

    // ---- 2 local + 1 in-process remote shard, monitor attached -----
    let mut backend = ServingRuntime::builder();
    backend.config(ServerConfig::builder().workers(2).build());
    backend.plan("clickstream", plan.clone()).shards(1);
    let backend = backend.build()?;

    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.plan("clickstream", plan)
        .shards(2)
        .shard_transport(Arc::new(InProcessWorker::new(&backend)));
    let runtime = b.build()?;

    let monitor = runtime.start_monitor(MonitorConfig {
        interval: Duration::from_millis(10),
        history: 1_024,
        ..MonitorConfig::default()
    });
    println!("monitor sampling every 10ms into a 1024-sample ring\n");

    // ---- traffic + concurrent event folds + a mid-run drain --------
    let rows: Vec<WireRow> = (0..w.test.n_rows())
        .map(|r| table_row_to_wire(&w.test, r).expect("test row serializes"))
        .collect();
    let folder = ClickstreamFolder::new(w.store.clone().expect("clickstream has a store"), 256);
    let clicks = event_stream(7, 512);
    let stop_writer = AtomicBool::new(false);
    std::thread::scope(|s| -> Result<(), ServeError> {
        let writer = s.spawn(|| {
            let mut i = 0usize;
            while !stop_writer.load(Ordering::Relaxed) {
                folder
                    .fold(&clicks[i % clicks.len()])
                    .expect("folds never fail");
                i += 1;
            }
        });
        let loaders: Vec<_> = (0..LOAD_THREADS)
            .map(|t| {
                let client = runtime.client();
                let rows = &rows;
                s.spawn(move || {
                    for i in 0..REQUESTS_PER_THREAD {
                        let row = rows[(t * REQUESTS_PER_THREAD + i) % rows.len()].clone();
                        client
                            .predict_keyed("clickstream", &format!("user-{t}-{i}"), vec![row])
                            .expect("serving succeeds");
                        std::thread::sleep(Duration::from_micros(500));
                    }
                })
            })
            .collect();

        // Mid-run: live-drain the remote shard under load. Sampling
        // beside the blocking drain guarantees the monitor observes
        // the draining window when there is one.
        std::thread::sleep(Duration::from_millis(60));
        let drainer = s.spawn(|| runtime.drain_shard("clickstream", 1, 2, Duration::from_secs(10)));
        while !drainer.is_finished() {
            let _ = monitor.hub().sample_now(&runtime);
            std::thread::sleep(Duration::from_millis(1));
        }
        drainer.join().expect("drainer thread completes")?;
        println!("remote shard live-drained mid-run (zero in-flight loss)\n");

        for l in loaders {
            l.join().expect("load thread completes");
        }
        stop_writer.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread completes");
        Ok(())
    })?;

    // One settled sample, then stop the sampler — the hub survives.
    let _ = monitor.hub().sample_now(&runtime);
    let hub = monitor.stop();

    // ---- the dashboard: everything below reads the hub only --------
    println!(
        "{:>5} {:>9} {:>10} {:>8}",
        "seq", "interval", "rows/s", "shed"
    );
    let deltas = hub.deltas();
    let busiest: Vec<&MonitorSample> = {
        let mut d: Vec<&MonitorSample> = deltas.iter().collect();
        d.sort_by_key(|d| std::cmp::Reverse(d.requests));
        d.into_iter().take(8).collect()
    };
    for d in &busiest {
        println!(
            "{:>5} {:>8.1}ms {:>10.0} {:>8}",
            d.seq,
            d.elapsed_secs() * 1e3,
            d.requests_per_sec(),
            d.shed
        );
    }
    println!("(8 busiest of {} sampled intervals)\n", deltas.len());

    println!("event feed:");
    for e in hub.events() {
        println!("  [{:>4}] {:?}", e.seq, e.event);
    }

    let total = u64::try_from(LOAD_THREADS * REQUESTS_PER_THREAD).expect("fits");
    let last = hub.latest().expect("sampler ran");
    assert_eq!(
        last.requests, total,
        "the hub's final sample must account for every request"
    );
    assert!(
        hub.events()
            .iter()
            .any(|e| matches!(&e.event, MonitorEvent::ShardRemoved { endpoint, .. } if endpoint == "clickstream")),
        "the drain must surface in the event feed"
    );
    let ep = last.endpoint("clickstream", 1).expect("endpoint sampled");
    println!(
        "\nfinal sample: {} requests ({} rows), {} folds applied by the writer, \
         endpoint now {} remote shard(s)",
        last.requests,
        last.rows,
        folder.folded(),
        ep.shards.len()
    );
    println!("\nlive monitor OK — every claim above came from the StatsHub");
    Ok(())
}
