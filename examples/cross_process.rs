//! Cross-process sharding: a parent `ServingRuntime` routing one
//! endpoint over local shards *and* shards served by a child process.
//!
//! This example really crosses a process boundary: it re-executes its
//! own binary with `--node`, and the child hosts a runtime behind a
//! `RemoteRuntimeNode` TCP listener on a free loopback port. The
//! parent then:
//!
//! 1. serves `affine` with 2 local shards + 2 remote shards (the
//!    child), behind the ordinary admission path — keyed requests
//!    stick to shards that may live in the other process;
//! 2. proves the mixed deployment answers exactly like a 4-local one;
//! 3. kills the child and keeps serving: transport failures are
//!    counted and traffic fails over to the surviving local shards.
//!
//! ```text
//! cargo run --release --example cross_process
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;

use willump_repro::prelude::*;

/// The deterministic predictor both processes serve: 3x - 1.
struct Affine;
impl Servable for Affine {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or("missing x")?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs.into_iter().map(|x| 3.0 * x - 1.0).collect())
    }
}

fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
    xs.iter()
        .map(|&x| vec![("x".to_string(), Value::Float(x))])
        .collect()
}

/// Child mode: host a runtime on a free port, announce the address on
/// stdout, and serve until the parent closes our stdin.
fn run_node() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint("affine", Arc::new(Affine)).shards(2);
    let node = RemoteRuntimeNode::bind("127.0.0.1:0", b.build()?)?;
    println!("NODE_ADDR {}", node.local_addr());
    // Park until the parent exits (its death closes the stdin pipe).
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--node") {
        return run_node();
    }

    // ---- spawn the child node and learn its address ----------------
    let mut child = Command::new(std::env::current_exe()?)
        .arg("--node")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let child_stdout = child.stdout.take().expect("child stdout piped");
    let mut lines = BufReader::new(child_stdout).lines();
    let addr = loop {
        let line = lines.next().expect("child announces its address")?;
        if let Some(addr) = line.strip_prefix("NODE_ADDR ") {
            break addr.to_string();
        }
    };
    println!("child node listening on {addr}\n");

    // ---- a mixed 2-local + 2-remote endpoint vs a 4-local one ------
    let mut mixed = ServingRuntime::builder();
    mixed.config(ServerConfig::builder().workers(2).build());
    mixed
        .endpoint("affine", Arc::new(Affine))
        .shards(2)
        .shard_remote(&addr)
        .shard_remote(&addr);
    let mixed = mixed.build()?;

    let mut reference = ServingRuntime::builder();
    reference.config(ServerConfig::builder().workers(2).build());
    reference.endpoint("affine", Arc::new(Affine)).shards(4);
    let reference = reference.build()?;

    let mixed_client = mixed.client();
    let reference_client = reference.client();
    let mut diverged = 0;
    for i in 0..40 {
        let rows = wire_rows(&[i as f64, 0.5 - i as f64]);
        let key = format!("user-{}", i % 13);
        let a = mixed_client.predict_keyed("affine", &key, rows.clone())?;
        let b = reference_client.predict_keyed("affine", &key, rows)?;
        if a != b {
            diverged += 1;
        }
    }
    let ep = mixed.endpoint("affine", 1).expect("registered");
    let per_shard = ep.stats().shard_requests();
    println!("40 keyed requests through 2 local + 2 remote shards:");
    println!("  diverging answers vs 4-local reference: {diverged}");
    println!("  per-shard requests  {per_shard:?}  (shards 2,3 live in the child)");
    println!(
        "  remote forwards     {}  transport errors {}",
        mixed.stats().remote_forwards(),
        mixed.stats().transport_errors()
    );
    for (i, t) in ep.transport_stats().iter().enumerate() {
        println!(
            "  remote shard {}: {} forwards, mean round trip {:.0}us over {}",
            ep.local_shards() + i,
            t.forwards,
            t.mean_latency() * 1e6,
            ep.transport_descriptions()[i],
        );
    }
    assert_eq!(diverged, 0, "mixed deployment must match the reference");
    assert!(
        per_shard[2] + per_shard[3] > 0,
        "remote shards must have served"
    );

    // ---- kill the child: fail-over keeps the endpoint serving ------
    println!("\nkilling the child node…");
    child.kill()?;
    child.wait()?;
    // Also drop the stdin handle so nothing lingers.
    drop(child.stdin.take());

    let mut still_ok = 0;
    for i in 0..20 {
        let rows = wire_rows(&[i as f64]);
        let key = format!("user-{}", i % 13);
        if mixed_client.predict_keyed("affine", &key, rows).is_ok() {
            still_ok += 1;
        }
    }
    println!("20 more keyed requests with the node dead:");
    println!("  answered: {still_ok}/20 (fail-over to the 2 surviving local shards)");
    println!(
        "  transport errors {}  failovers {}",
        mixed.stats().transport_errors(),
        mixed.stats().failovers()
    );
    assert_eq!(still_ok, 20, "fail-over must keep every request served");
    assert!(
        mixed.stats().failovers() > 0,
        "some requests must have failed over"
    );
    let _ = std::io::stdout().flush();
    println!("\ncross-process sharding OK");
    Ok(())
}
