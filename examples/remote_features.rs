//! Remote feature stores: how Willump's feature-level caching and
//! cascades cut round trips to a remote feature store (the scenario
//! behind paper Tables 2 and 3).
//!
//! The Music workload looks up user/song/genre features in a store
//! behind a simulated ~1 ms network. We serve the test set one input
//! at a time under four configurations and report remote round trips
//! and effective per-input latency.
//!
//! ```text
//! cargo run --release --example remote_features
//! ```

use std::error::Error;

use willump::{CachingConfig, QueryMode, Willump, WillumpConfig};
use willump_graph::InputRow;
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn Error>> {
    // Generate Music with remote tables: lookups cost a virtual ~1 ms
    // round trip, charged to the store's simulated clock.
    let cfg = WorkloadConfig::default().with_remote_tables();
    let w = WorkloadKind::Music.generate(&cfg)?;
    let store = w.store.clone().expect("music queries a store");

    let configs: [(&str, bool, Option<CachingConfig>); 4] = [
        ("no caching, no cascades", false, None),
        (
            "feature-level caching",
            false,
            Some(CachingConfig { capacity: None }),
        ),
        ("cascades", true, None),
        (
            "caching + cascades",
            true,
            Some(CachingConfig { capacity: None }),
        ),
    ];

    println!(
        "Music, remote tables, {} per-input queries\n",
        w.test.n_rows()
    );
    println!(
        "{:<28} {:>12} {:>14} {:>16}",
        "configuration", "round trips", "reduction", "latency/input"
    );

    let mut baseline_requests = None;
    for (name, cascades, caching) in configs {
        let optimized = Willump::new(WillumpConfig {
            mode: QueryMode::ExampleAtATime,
            cascades,
            caching,
            ..WillumpConfig::default()
        })
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;

        store.stats().reset();
        let wall = std::time::Instant::now();
        for r in 0..w.test.n_rows() {
            let input = InputRow::from_table(&w.test, r)?;
            optimized.predict_one(&input)?;
        }
        // Effective latency = wall time + virtual network time.
        let elapsed = wall.elapsed().as_secs_f64() + store.stats().wait_nanos() as f64 * 1e-9;
        let trips = store.stats().round_trips();
        let base = *baseline_requests.get_or_insert(trips);
        println!(
            "{:<28} {:>12} {:>13.1}% {:>13.3} ms",
            name,
            trips,
            100.0 * (1.0 - trips as f64 / base as f64),
            1e3 * elapsed / w.test.n_rows() as f64,
        );
    }

    println!(
        "\nFeature-level caching reuses per-entity feature vectors across \
         inputs (Zipfian popularity makes hits common); cascades skip the \
         inefficient lookups entirely for easy inputs. Combined they \
         eliminate most remote traffic, as in paper Table 2."
    );
    Ok(())
}
