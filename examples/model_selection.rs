//! Clipper-style bandit model selection over competing pipelines.
//!
//! Clipper (and this reproduction's serving layer) can route queries
//! across several candidate models with a multi-armed bandit, learning
//! online which one predicts the current traffic best. Here we pit a
//! deliberately-weakened model against the properly trained one on the
//! Product workload and let UCB1 discover the winner from accuracy
//! feedback alone.
//!
//! ```text
//! cargo run --release --example model_selection
//! ```

use std::error::Error;
use std::sync::Arc;

use willump::{Willump, WillumpConfig};
use willump_data::Table;
use willump_models::metrics;
use willump_serve::{ModelSelector, SelectionPolicy, Servable};
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn Error>> {
    let w = WorkloadKind::Product.generate(&WorkloadConfig::default())?;

    // Candidate A: trained on the full training set.
    let strong = Willump::new(WillumpConfig::default()).optimize(
        &w.pipeline,
        &w.train,
        &w.train_y,
        &w.valid,
        &w.valid_y,
    )?;

    // Candidate B: starved of data (first 60 rows only) — plausible
    // for a stale model that predates most of the training data.
    let n_weak = 60;
    let weak_table = w.train.take_rows(&(0..n_weak).collect::<Vec<_>>());
    let weak = Willump::new(WillumpConfig::default()).optimize(
        &w.pipeline,
        &weak_table,
        &w.train_y[..n_weak],
        &w.valid,
        &w.valid_y,
    )?;

    let selector = ModelSelector::new(
        vec![
            (
                "stale-model".to_string(),
                Arc::new(weak) as Arc<dyn Servable>,
            ),
            (
                "fresh-model".to_string(),
                Arc::new(strong) as Arc<dyn Servable>,
            ),
        ],
        SelectionPolicy::Ucb1,
        7,
    )?;

    // Stream the test set in small query batches; after each response,
    // feed back accuracy as the bandit reward (in production this
    // feedback arrives later, e.g. from click logs).
    let batch = 10;
    let mut served = 0;
    while served + batch <= w.test.n_rows() {
        let rows: Vec<usize> = (served..served + batch).collect();
        let queries: Table = w.test.take_rows(&rows);
        let (scores, arm) = selector.predict(&queries)?;
        let truth = &w.test_y[served..served + batch];
        selector.reward(arm, metrics::accuracy(&scores, truth));
        served += batch;
    }

    println!("{} query batches served\n", served / batch);
    println!("{:<12} {:>8} {:>14}", "model", "pulls", "mean reward");
    for (i, arm) in selector.arm_stats().iter().enumerate() {
        println!(
            "{:<12} {:>8} {:>14.4}",
            selector.name(i),
            arm.pulls,
            arm.mean()
        );
    }
    let stats = selector.arm_stats();
    assert!(
        stats[1].pulls > stats[0].pulls,
        "the bandit should route most traffic to the stronger model"
    );
    println!("\nUCB1 concentrated traffic on the fresher, more accurate model.");
    Ok(())
}
