//! Cascade threshold tuning: the throughput-vs-accuracy tradeoff of
//! end-to-end cascades (the scenario behind paper Figure 7).
//!
//! We optimize the Toxic workload with cascades forced on, then sweep
//! the cascade threshold from "trust the small model completely" to
//! "escalate everything" and print throughput, accuracy, and the
//! fraction of inputs resolved by the small model at each setting.
//!
//! ```text
//! cargo run --release --example cascade_tuning
//! ```

use std::error::Error;
use std::time::Instant;

use willump::{Willump, WillumpConfig};
use willump_models::metrics;
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn Error>> {
    let w = WorkloadKind::Toxic.generate(&WorkloadConfig::default())?;

    // Force cascade deployment (no economic gate) so the sweep always
    // has a cascade to tune, as the paper's Figure 7 sweep does.
    let mut optimized = Willump::new(WillumpConfig {
        cascade_gate: false,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)?;

    let report = optimized.report().clone();
    println!("workload: toxic");
    println!("efficient IFVs: {:?}", report.efficient_set);
    if let Some(sel) = &report.threshold {
        println!(
            "selected threshold: {:.1} (kept fraction {:.2})\n",
            sel.threshold, sel.kept_fraction
        );
    }

    // Full-model reference accuracy.
    let full_feats = optimized.executor().features_batch(&w.test, None)?;
    let full_acc = metrics::accuracy(
        &optimized.full_model().predict_scores(&full_feats),
        &w.test_y,
    );

    println!(
        "{:>9} {:>14} {:>10} {:>12} {:>12}",
        "threshold", "rows/s", "accuracy", "vs full", "small-model%"
    );
    for t in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let cascade = optimized
            .cascade_mut()
            .expect("cascade deployed with gate off");
        cascade.set_threshold(t);

        let start = Instant::now();
        let (scores, stats) = optimized.predict_batch_with_stats(&w.test)?;
        let secs = start.elapsed().as_secs_f64();
        let stats = stats.expect("cascade stats present");

        let acc = metrics::accuracy(&scores, &w.test_y);
        println!(
            "{:>9.1} {:>14.0} {:>10.4} {:>+11.4} {:>11.1}%",
            t,
            w.test.n_rows() as f64 / secs,
            acc,
            acc - full_acc,
            100.0 * stats.resolved_small as f64 / w.test.n_rows() as f64,
        );
    }

    println!(
        "\nLow thresholds trust the small model on hard inputs and lose \
         accuracy; high thresholds escalate almost everything and lose \
         throughput. Willump picks the lowest threshold whose validation \
         accuracy stays within the configured target of the full model \
         (paper §4.2)."
    );
    Ok(())
}
