//! Integration tests spanning every crate: generate workloads, run
//! the Willump optimizer end-to-end, and check the paper's core
//! claims hold (accuracy preserved, requests reduced, top-K close to
//! exact).

use willump::{CachingConfig, QueryMode, Willump, WillumpConfig};
use willump_graph::{EngineMode, Executor, InputRow};
use willump_models::metrics;
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn small(kind: WorkloadKind, remote: bool) -> willump_workloads::Workload {
    let mut cfg = WorkloadConfig {
        n_train: 800,
        n_valid: 500,
        n_test: 500,
        seed: 42,
        remote: None,
    };
    if remote {
        cfg = cfg.with_remote_tables();
    }
    kind.generate(&cfg).expect("workload generates")
}

#[test]
fn every_workload_optimizes_without_accuracy_loss() {
    for kind in WorkloadKind::ALL {
        let w = small(kind, false);
        let opt = Willump::new(WillumpConfig::default())
            .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
            .expect("optimization succeeds");
        let scores = opt.predict_batch(&w.test).expect("prediction succeeds");

        if kind.is_classification() {
            let exec = opt.executor();
            let full_feats = exec.features_batch(&w.test, None).expect("features");
            let full_scores = opt.full_model().predict_scores(&full_feats);
            let full_acc = metrics::accuracy(&full_scores, &w.test_y);
            let opt_acc = metrics::accuracy(&scores, &w.test_y);
            // Within the paper's statistical-significance margin.
            let margin = metrics::accuracy_ci_95(full_acc, w.test_y.len());
            assert!(
                opt_acc >= full_acc - margin,
                "{}: optimized {opt_acc} vs full {full_acc} (margin {margin})",
                kind.name()
            );
        } else {
            let mse = metrics::mse(&scores, &w.test_y);
            assert!(mse.is_finite(), "{}: mse {mse}", kind.name());
        }
    }
}

#[test]
fn interpreted_and_compiled_engines_agree_on_features() {
    for kind in WorkloadKind::ALL {
        let w = small(kind, false);
        let interp = Executor::new(w.pipeline.graph().clone(), EngineMode::Interpreted)
            .expect("interp executor");
        let compiled = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled)
            .expect("compiled executor");
        let sample: Vec<usize> = (0..w.test.n_rows()).step_by(97).collect();
        let sub = w.test.take_rows(&sample);
        let a = interp.features_batch(&sub, None).expect("interp features");
        let b = compiled
            .features_batch(&sub, None)
            .expect("compiled features");
        assert_eq!(a.n_rows(), b.n_rows(), "{}", kind.name());
        assert_eq!(a.n_cols(), b.n_cols(), "{}", kind.name());
        for r in 0..a.n_rows() {
            let ea = a.row_entries(r);
            let eb = b.row_entries(r);
            assert_eq!(ea.len(), eb.len(), "{} row {r}", kind.name());
            for ((c1, v1), (c2, v2)) in ea.iter().zip(&eb) {
                assert_eq!(c1, c2, "{} row {r}", kind.name());
                assert!((v1 - v2).abs() < 1e-9, "{} row {r} col {c1}", kind.name());
            }
        }
    }
}

#[test]
fn single_input_serving_matches_batch_everywhere() {
    for kind in WorkloadKind::ALL {
        let w = small(kind, false);
        let opt = Willump::new(WillumpConfig::default())
            .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
            .expect("optimization succeeds");
        let batch = opt.predict_batch(&w.test).expect("batch predicts");
        for r in (0..w.test.n_rows()).step_by(73) {
            let input = InputRow::from_table(&w.test, r).expect("row");
            let one = opt.predict_one(&input).expect("single predicts");
            assert!(
                (one - batch[r]).abs() < 1e-9,
                "{} row {r}: {one} vs {}",
                kind.name(),
                batch[r]
            );
        }
    }
}

#[test]
fn cascades_reduce_remote_requests_on_music() {
    let w = small(WorkloadKind::Music, true);
    let store = w.store.clone().expect("music has a store");

    let plain = Willump::new(WillumpConfig {
        cascades: false,
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    store.stats().reset();
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row");
        plain.predict_one(&input).expect("predicts");
    }
    let base_requests = store.stats().round_trips();

    let casc = Willump::new(WillumpConfig {
        cascades: true,
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    if !casc.report().cascades_deployed {
        // The economic gate can decline on tiny data; nothing to test.
        return;
    }
    store.stats().reset();
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row");
        casc.predict_one(&input).expect("predicts");
    }
    let casc_requests = store.stats().round_trips();
    assert!(
        casc_requests < base_requests,
        "cascades {casc_requests} vs baseline {base_requests}"
    );
}

#[test]
fn feature_caching_reduces_remote_requests_more_than_e2e() {
    let w = small(WorkloadKind::Music, true);
    let store = w.store.clone().expect("music has a store");

    let serve = |opt: &willump::OptimizedPipeline| {
        store.stats().reset();
        for r in 0..w.test.n_rows() {
            let input = InputRow::from_table(&w.test, r).expect("row");
            opt.predict_one(&input).expect("predicts");
        }
        store.stats().round_trips()
    };

    let plain = Willump::new(WillumpConfig {
        cascades: false,
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    let base_requests = serve(&plain);

    let cached = Willump::new(WillumpConfig {
        cascades: false,
        mode: QueryMode::ExampleAtATime,
        caching: Some(CachingConfig { capacity: None }),
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    let cached_requests = serve(&cached);

    // Zipfian entities must produce a large feature-cache reduction.
    assert!(
        (cached_requests as f64) < 0.7 * base_requests as f64,
        "cached {cached_requests} vs base {base_requests}"
    );
}

#[test]
fn topk_filter_stays_close_to_exact() {
    for kind in [
        WorkloadKind::Product,
        WorkloadKind::Price,
        WorkloadKind::Credit,
    ] {
        let w = small(kind, false);
        let k = 25;
        let opt = Willump::new(WillumpConfig {
            mode: QueryMode::TopK { k },
            ..WillumpConfig::default()
        })
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");

        let exec = opt.executor();
        let feats = exec.features_batch(&w.test, None).expect("features");
        let exact_scores = opt.full_model().predict_scores(&feats);
        let exact = metrics::top_k_indices(&exact_scores, k);

        let (approx, _) = opt.top_k(&w.test, k).expect("top-K succeeds");
        assert_eq!(approx.len(), k, "{}", kind.name());
        let exact_value = metrics::average_value(&exact, &exact_scores);
        let approx_value = metrics::average_value(&approx, &exact_scores);
        // Average value of the returned set within 5% of exact.
        assert!(
            (exact_value - approx_value).abs() <= 0.05 * exact_value.abs().max(1e-9),
            "{}: approx {approx_value} vs exact {exact_value}",
            kind.name()
        );
    }
}

#[test]
fn clipper_layer_serves_optimized_pipelines() {
    use std::sync::Arc;
    use willump_serve::{table_row_to_wire, ClipperServer, Servable, ServerConfig};

    let w = small(WorkloadKind::Product, false);
    let opt = Willump::new(WillumpConfig::default())
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
    let direct = opt.predict_batch(&w.test).expect("direct predicts");

    let servable: Arc<dyn Servable> = Arc::new(opt);
    let server = ClipperServer::start(servable, ServerConfig::default());
    let client = server.client();
    let rows: Vec<_> = (0..10)
        .map(|r| table_row_to_wire(&w.test, r).expect("wire row"))
        .collect();
    let scores = client.predict(rows).expect("serving succeeds");
    for (r, s) in scores.iter().enumerate() {
        assert!((s - direct[r]).abs() < 1e-9, "row {r}");
    }
    assert_eq!(server.stats().requests(), 1);
}

#[test]
fn optimization_time_is_bounded() {
    // Paper §6.4: optimization never exceeds thirty seconds.
    for kind in WorkloadKind::ALL {
        let w = small(kind, false);
        let opt = Willump::new(WillumpConfig::default())
            .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
            .expect("optimizes");
        assert!(
            opt.report().optimization_seconds < 30.0,
            "{}: {}s",
            kind.name(),
            opt.report().optimization_seconds
        );
    }
}
