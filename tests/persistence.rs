//! Model persistence: trained models must survive a JSON round trip
//! with bit-identical predictions. Production serving trains offline
//! and loads at deploy time, so serialization fidelity is part of the
//! public contract (every `TrainedModel` family derives serde).

use willump_data::{FeatureMatrix, Matrix};
use willump_models::{
    GbdtParams, LinearParams, LogisticParams, MlpParams, ModelSpec, TrainedModel,
};

fn training_data() -> (FeatureMatrix, Vec<f64>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut classes = Vec::new();
    let mut values = Vec::new();
    for i in 0..120 {
        let a = (i % 12) as f64 / 12.0;
        let b = ((i * 7) % 12) as f64 / 12.0;
        rows.push(vec![a, b, a * b]);
        classes.push(f64::from(a + b > 1.0));
        values.push(2.0 * a - b);
    }
    (
        FeatureMatrix::Dense(Matrix::from_rows(&rows)),
        classes,
        values,
    )
}

fn assert_round_trip(model: &TrainedModel, x: &FeatureMatrix) {
    let json = serde_json::to_string(model).expect("serializes");
    let back: TrainedModel = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.task(), model.task());
    let before = model.predict_scores(x);
    let after = back.predict_scores(x);
    for (i, (a, b)) in before.iter().zip(&after).enumerate() {
        assert!(
            (a - b).abs() < 1e-15,
            "row {i}: {a} vs {b} after round trip"
        );
    }
}

#[test]
fn logistic_round_trips() {
    let (x, y, _) = training_data();
    let m = ModelSpec::Logistic(LogisticParams::default())
        .fit(&x, &y, 7)
        .expect("trains");
    assert_round_trip(&m, &x);
}

#[test]
fn linear_round_trips() {
    let (x, _, v) = training_data();
    let m = ModelSpec::Linear(LinearParams::default())
        .fit(&x, &v, 7)
        .expect("trains");
    assert_round_trip(&m, &x);
}

#[test]
fn gbdt_round_trips() {
    let (x, y, v) = training_data();
    let c = ModelSpec::GbdtClassifier(GbdtParams::default())
        .fit(&x, &y, 7)
        .expect("trains");
    assert_round_trip(&c, &x);
    let r = ModelSpec::GbdtRegressor(GbdtParams::default())
        .fit(&x, &v, 7)
        .expect("trains");
    assert_round_trip(&r, &x);
}

#[test]
fn mlp_round_trips() {
    let (x, y, _) = training_data();
    let m = ModelSpec::MlpClassifier(MlpParams::default())
        .fit(&x, &y, 7)
        .expect("trains");
    assert_round_trip(&m, &x);
}

#[test]
fn calibrators_round_trip() {
    use willump_models::{IsotonicCalibrator, PlattScaler};
    let scores: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
    let labels: Vec<f64> = scores.iter().map(|s| f64::from(*s > 0.3)).collect();

    let p = PlattScaler::fit(&scores, &labels).expect("fits");
    let p2: PlattScaler =
        serde_json::from_str(&serde_json::to_string(&p).expect("ser")).expect("de");
    let iso = IsotonicCalibrator::fit(&scores, &labels).expect("fits");
    let iso2: IsotonicCalibrator =
        serde_json::from_str(&serde_json::to_string(&iso).expect("ser")).expect("de");
    for s in [0.0, 0.1, 0.31, 0.5, 0.99] {
        assert!((p.calibrate(s) - p2.calibrate(s)).abs() < 1e-15);
        assert!((iso.calibrate(s) - iso2.calibrate(s)).abs() < 1e-15);
    }
}

#[test]
fn model_spec_round_trips_with_hyperparameters() {
    let spec = ModelSpec::GbdtClassifier(GbdtParams {
        n_trees: 17,
        ..GbdtParams::default()
    });
    let json = serde_json::to_string(&spec).expect("serializes");
    let back: ModelSpec = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, spec, "hyperparameters must survive");
}
