//! Property-based tests on the core invariants the optimizer relies
//! on: the IFV partition, layout remapping, Algorithm 1's guarantees,
//! cascade correctness at extreme thresholds, and data-structure
//! round trips.

use proptest::prelude::*;
use std::sync::Arc;

use willump::efficient::{select_efficient_ifvs, SelectionStrategy};
use willump::stats::IfvStats;
use willump_data::{Matrix, SparseMatrix, SparseRowBuilder};
use willump_graph::analysis::identify_ifvs;
use willump_graph::{EngineMode, Executor, GraphBuilder, Operator, TransformGraph};
use willump_store::LruCache;

/// Build a random multi-generator graph: `widths[i]` string-stats
/// chains per generator are not varied (all StringStats), but the
/// number of generators and shared sources are.
fn arb_graph(n_fgs: usize, shared_source: bool) -> Arc<TransformGraph> {
    let mut b = GraphBuilder::new();
    let shared = if shared_source {
        Some(b.source("shared"))
    } else {
        None
    };
    let mut roots = Vec::new();
    for i in 0..n_fgs {
        let src = match (shared, i % 2 == 0) {
            (Some(s), true) => s,
            _ => b.source(format!("col{i}")),
        };
        let node = b
            .add(format!("stats{i}"), Operator::StringStats, [src])
            .expect("node added");
        roots.push(node);
    }
    Arc::new(b.finish_with_concat("cat", roots).expect("graph built"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rules 1-3: generators partition all non-preprocessing,
    /// non-commutative nodes, and each non-shared source belongs to
    /// exactly one generator.
    #[test]
    fn ifv_partition_is_disjoint_cover(n_fgs in 1usize..7, shared in any::<bool>()) {
        let g = arb_graph(n_fgs, shared);
        let analysis = identify_ifvs(&g).unwrap();
        prop_assert_eq!(analysis.generators.len(), n_fgs);
        let mut seen = vec![0usize; g.len()];
        for gen in &analysis.generators {
            for &id in &gen.nodes {
                seen[id] += 1;
            }
        }
        for &id in &analysis.preprocessing {
            seen[id] += 1;
        }
        for &id in &analysis.commutative {
            seen[id] += 1;
        }
        // Every node appears in exactly one bucket.
        for (id, count) in seen.iter().enumerate() {
            prop_assert_eq!(*count, 1, "node {} in {} buckets", id, count);
        }
    }

    /// Topological order: every edge goes forward.
    #[test]
    fn topo_order_respects_edges(n_fgs in 1usize..7, shared in any::<bool>()) {
        let g = arb_graph(n_fgs, shared);
        let mut pos = vec![0usize; g.len()];
        for (i, &id) in g.topo_order().iter().enumerate() {
            pos[id] = i;
        }
        for node in g.nodes() {
            for &inp in &node.inputs {
                prop_assert!(pos[inp] < pos[node.id]);
            }
        }
    }

    /// Any subset's features equal the matching column range of the
    /// full features.
    #[test]
    fn subset_features_are_slices_of_full(
        n_fgs in 2usize..5,
        pick in prop::collection::vec(any::<bool>(), 2..5),
    ) {
        let g = arb_graph(n_fgs, false);
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let subset: Vec<usize> = (0..n_fgs).filter(|&i| *pick.get(i).unwrap_or(&false)).collect();
        prop_assume!(!subset.is_empty());

        let mut table = willump_data::Table::new();
        for i in 0..n_fgs {
            table
                .add_column(
                    format!("col{i}"),
                    willump_data::Column::from(vec![format!("text {i} one"), format!("x{i}!!")]),
                )
                .unwrap();
        }
        let full = exec.features_batch(&table, None).unwrap();
        let sub = exec.features_batch(&table, Some(&subset)).unwrap();
        // Column offsets: each generator occupies 8 columns.
        for r in 0..table.n_rows() {
            let full_e = full.row_entries(r);
            let mut expected: Vec<(usize, f64)> = Vec::new();
            for (new_idx, &gidx) in subset.iter().enumerate() {
                let lo = gidx * 8;
                for (c, v) in &full_e {
                    if *c >= lo && *c < lo + 8 {
                        expected.push((c - lo + new_idx * 8, *v));
                    }
                }
            }
            expected.sort_unstable_by_key(|(c, _)| *c);
            prop_assert_eq!(sub.row_entries(r), expected);
        }
    }

    /// Algorithm 1 always respects the cost budget and returns sorted,
    /// deduplicated indices.
    #[test]
    fn efficient_selection_respects_budget(
        importance in prop::collection::vec(0.0f64..10.0, 1..10),
        cost in prop::collection::vec(0.001f64..10.0, 1..10),
        gamma in 0.0f64..1.0,
        frac in 0.05f64..1.0,
    ) {
        let n = importance.len().min(cost.len());
        let stats = IfvStats {
            importance: importance[..n].to_vec(),
            cost: cost[..n].to_vec(),
            boundary_cost: 0.0,
        };
        let subset = select_efficient_ifvs(
            &stats,
            SelectionStrategy::CostEffective { gamma, use_gamma_rule: true },
            frac,
        );
        let total: f64 = stats.cost.iter().sum();
        let chosen: f64 = subset.iter().map(|&g| stats.cost[g]).sum();
        prop_assert!(chosen <= total * frac + 1e-9);
        let mut sorted = subset.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, subset);
    }

    /// Sparse matrices round-trip through dense.
    #[test]
    fn sparse_dense_round_trip(
        rows in prop::collection::vec(
            prop::collection::vec((0usize..16, -5.0f64..5.0), 0..8),
            0..8,
        )
    ) {
        let mut b = SparseRowBuilder::new(16);
        for r in &rows {
            b.push_row(r);
        }
        let m = b.finish();
        let d: Matrix = m.to_dense();
        let back = SparseMatrix::from_dense(&d);
        prop_assert_eq!(m.to_dense(), back.to_dense());
    }

    /// The LRU cache never exceeds its capacity and always returns the
    /// latest value written for a key.
    #[test]
    fn lru_capacity_and_freshness(
        capacity in 1usize..8,
        ops in prop::collection::vec((0u8..16, 0i32..100), 1..100),
    ) {
        let mut cache = LruCache::with_capacity(capacity);
        let mut last: std::collections::HashMap<u8, i32> = std::collections::HashMap::new();
        for (k, v) in ops {
            cache.put(k, v);
            last.insert(k, v);
            prop_assert!(cache.len() <= capacity);
        }
        // Any cached value must be the most recently written one.
        for (k, v) in &last {
            if let Some(cached) = cache.peek(k) {
                prop_assert_eq!(cached, v);
            }
        }
    }

    /// Matrix hstack width/row bookkeeping.
    #[test]
    fn hstack_shapes(
        a_cols in 1usize..5,
        b_cols in 1usize..5,
        rows in 1usize..6,
    ) {
        let a = Matrix::zeros(rows, a_cols);
        let b = Matrix::zeros(rows, b_cols);
        let h = Matrix::hstack(&[&a, &b]).unwrap();
        prop_assert_eq!(h.n_rows(), rows);
        prop_assert_eq!(h.n_cols(), a_cols + b_cols);
    }

    /// Quantile binning is monotone: larger inputs never land in a
    /// smaller bin, and every output is a valid bin index.
    #[test]
    fn quantile_binner_is_monotone(
        values in prop::collection::vec(-1e6f64..1e6, 2..200),
        n_bins in 2usize..12,
        queries in prop::collection::vec(-2e6f64..2e6, 0..50),
    ) {
        use willump_featurize::QuantileBinner;
        let mut b = QuantileBinner::new(n_bins).unwrap();
        b.fit(&values).unwrap();
        prop_assert!(b.n_bins() >= 1 && b.n_bins() <= n_bins);
        let mut sorted_queries = queries;
        sorted_queries.sort_unstable_by(|a, c| a.partial_cmp(c).unwrap());
        let mut prev_bin = 0usize;
        for q in sorted_queries {
            let bin = b.transform_one(q).unwrap();
            prop_assert!(bin < b.n_bins());
            prop_assert!(bin >= prev_bin, "monotonicity violated");
            prev_bin = bin;
        }
    }

    /// Target encoding always lands between the extreme labels and
    /// unknown categories hit the prior exactly.
    #[test]
    fn target_encoder_bounded_by_labels(
        pairs in prop::collection::vec((0u8..6, any::<bool>()), 1..100),
        smoothing in 0.0f64..50.0,
    ) {
        use willump_featurize::TargetEncoder;
        let cats: Vec<String> = pairs.iter().map(|(c, _)| format!("c{c}")).collect();
        let labels: Vec<f64> = pairs.iter().map(|(_, y)| f64::from(*y)).collect();
        let mut e = TargetEncoder::new(smoothing).unwrap();
        e.fit(&cats, &labels).unwrap();
        let lo = labels.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = labels.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for c in &cats {
            let code = e.transform_one(c).unwrap();
            prop_assert!(code >= lo - 1e-12 && code <= hi + 1e-12);
        }
        prop_assert!((e.transform_one("never-seen").unwrap() - e.prior()).abs() < 1e-12);
    }

    /// Isotonic calibration output is non-decreasing over any query
    /// sequence and stays in the label range.
    #[test]
    fn isotonic_calibration_is_monotone(
        pairs in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..150),
    ) {
        use willump_models::IsotonicCalibrator;
        let scores: Vec<f64> = pairs.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f64> = pairs.iter().map(|(_, y)| f64::from(*y)).collect();
        let iso = IsotonicCalibrator::fit(&scores, &labels).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=50 {
            let q = i as f64 / 50.0;
            let c = iso.calibrate(q);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    /// Fault plans are deterministic and hit close to the nominal rate.
    #[test]
    fn fault_plan_rate_is_respected(rate in 0.0f64..1.0, seed in any::<u64>()) {
        use willump_store::FaultPlan;
        let plan = FaultPlan { rate, seed };
        let n = 2000u64;
        let hits = (0..n).filter(|&i| plan.fails(i)).count() as f64;
        let observed = hits / n as f64;
        prop_assert!((observed - rate).abs() < 0.08, "rate {rate}, observed {observed}");
        // Determinism.
        prop_assert_eq!(plan.fails(7), plan.fails(7));
    }

    /// The hashing vectorizer is deterministic, bounded, and agrees
    /// between batch and single-row paths on arbitrary text.
    #[test]
    fn hashing_vectorizer_batch_matches_single(
        docs in prop::collection::vec(".{0,40}", 1..10),
        width_pow in 3u32..10,
    ) {
        use willump_featurize::{HashingVectorizer, VectorizerConfig};
        let v = HashingVectorizer::new(
            VectorizerConfig::default(),
            1usize << width_pow,
        ).unwrap();
        let batch = v.transform(&docs);
        for (r, d) in docs.iter().enumerate() {
            let row = v.transform_one(d);
            prop_assert_eq!(batch.row_pairs(r), row.clone());
            prop_assert!(row.iter().all(|(c, _)| *c < v.n_features()));
        }
    }

    /// The pipeline DSL accepts any topology of valid statements and
    /// produces a graph whose sources match the declared ones.
    #[test]
    fn pipeline_dsl_builds_declared_sources(n_sources in 1usize..6) {
        use std::collections::HashMap;
        use willump_graph::parse_pipeline;
        let mut text = String::new();
        for i in 0..n_sources {
            text.push_str(&format!("source col{i}\n"));
        }
        for i in 0..n_sources {
            text.push_str(&format!("f{i} = string_stats(col{i})\n"));
        }
        let args: Vec<String> = (0..n_sources).map(|i| format!("f{i}")).collect();
        text.push_str(&format!("features = concat({})\n", args.join(", ")));
        let g = parse_pipeline(&text, &HashMap::new()).unwrap();
        let sources = g.source_columns();
        prop_assert_eq!(sources.len(), n_sources);
        prop_assert_eq!(g.out_dim(), 8 * n_sources);
    }
}

/// Cascade at threshold 1.0 equals the full model exactly (not a
/// proptest: needs training, so run once).
#[test]
fn cascade_threshold_one_is_exact() {
    use willump::{Willump, WillumpConfig};
    use willump_workloads::{WorkloadConfig, WorkloadKind};

    let w = WorkloadKind::Product
        .generate(&WorkloadConfig::small())
        .expect("generates");
    let cfg = WillumpConfig {
        cascade_gate: false,
        ..WillumpConfig::default()
    };
    let mut opt = Willump::new(cfg)
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
    if let Some(c) = opt.cascade_mut() {
        c.set_threshold(1.0);
    } else {
        return;
    }
    let scores = opt.predict_batch(&w.test).expect("predicts");
    let feats = opt
        .executor()
        .features_batch(&w.test, None)
        .expect("features");
    let full = opt.full_model().predict_scores(&feats);
    for (a, b) in scores.iter().zip(&full) {
        assert!((a - b).abs() < 1e-12);
    }
}
