//! Failure injection and degenerate-input tests: the optimizer and
//! serving paths must return errors (never panic, never silently
//! mispredict) when the substrate misbehaves or the data is broken.

use willump::{CachingConfig, QueryMode, Willump, WillumpConfig};
use willump_data::{Column, Table};
use willump_graph::InputRow;
use willump_store::FaultPlan;
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn music() -> willump_workloads::Workload {
    let cfg = WorkloadConfig {
        n_train: 500,
        n_valid: 300,
        n_test: 200,
        seed: 11,
        remote: None,
    }
    .with_remote_tables();
    WorkloadKind::Music.generate(&cfg).expect("music generates")
}

#[test]
fn store_faults_surface_as_errors_not_panics() {
    let w = music();
    let store = w.store.clone().expect("music has a store");
    let opt = Willump::new(WillumpConfig {
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes before faults start");

    // Fail every store round trip: every lookup-dependent prediction
    // must return Err, and none may panic.
    store.set_fault_plan(Some(FaultPlan { rate: 1.0, seed: 3 }));
    for r in 0..20 {
        let input = InputRow::from_table(&w.test, r).expect("row");
        assert!(opt.predict_one(&input).is_err(), "row {r} should fail");
    }
    assert!(store.stats().faults() >= 20);

    // Recovery: clearing the plan restores service with no residue.
    store.set_fault_plan(None);
    for r in 0..20 {
        let input = InputRow::from_table(&w.test, r).expect("row");
        assert!(opt.predict_one(&input).is_ok(), "row {r} should recover");
    }
}

#[test]
fn partial_faults_fail_only_affected_queries() {
    let w = music();
    let store = w.store.clone().expect("music has a store");
    let opt = Willump::new(WillumpConfig {
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");

    store.set_fault_plan(Some(FaultPlan { rate: 0.3, seed: 5 }));
    store.stats().reset();
    let mut ok = 0;
    let mut failed = 0;
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row");
        match opt.predict_one(&input) {
            Ok(score) => {
                assert!(score.is_finite());
                ok += 1;
            }
            Err(_) => failed += 1,
        }
    }
    store.set_fault_plan(None);
    assert!(ok > 0, "some queries must dodge the 30% fault rate");
    assert!(failed > 0, "some queries must hit the 30% fault rate");
}

#[test]
fn faults_during_batch_prediction_are_errors() {
    let w = music();
    let store = w.store.clone().expect("music has a store");
    let opt = Willump::new(WillumpConfig::default())
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
    store.set_fault_plan(Some(FaultPlan { rate: 1.0, seed: 1 }));
    assert!(opt.predict_batch(&w.test).is_err());
    store.set_fault_plan(None);
}

#[test]
fn feature_cache_reduces_fault_exposure() {
    // With feature-level caching, cached entities never touch the
    // faulty store, so a 100% fault rate only fails cache misses.
    let w = music();
    let store = w.store.clone().expect("music has a store");
    let cached = Willump::new(WillumpConfig {
        mode: QueryMode::ExampleAtATime,
        caching: Some(CachingConfig { capacity: None }),
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");

    // Warm the cache with a clean pass.
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row");
        cached.predict_one(&input).expect("warm pass succeeds");
    }

    store.set_fault_plan(Some(FaultPlan { rate: 1.0, seed: 2 }));
    let mut survived = 0;
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row");
        if cached.predict_one(&input).is_ok() {
            survived += 1;
        }
    }
    store.set_fault_plan(None);
    assert_eq!(
        survived,
        w.test.n_rows(),
        "warm cache should satisfy repeated queries without the store"
    );
}

#[test]
fn empty_validation_set_is_rejected() {
    let w = WorkloadKind::Product
        .generate(&WorkloadConfig::small())
        .expect("generates");
    let empty = Table::new();
    let res = Willump::new(WillumpConfig::default()).optimize(
        &w.pipeline,
        &w.train,
        &w.train_y,
        &empty,
        &[],
    );
    assert!(res.is_err(), "empty validation set must be rejected");
}

#[test]
fn single_class_training_labels_do_not_panic() {
    let w = WorkloadKind::Product
        .generate(&WorkloadConfig::small())
        .expect("generates");
    let ones = vec![1.0; w.train.n_rows()];
    let valid_ones = vec![1.0; w.valid.n_rows()];
    // Must either optimize (predicting the constant class) or error
    // cleanly; both are acceptable, panicking is not.
    if let Ok(opt) = Willump::new(WillumpConfig::default()).optimize(
        &w.pipeline,
        &w.train,
        &ones,
        &w.valid,
        &valid_ones,
    ) {
        let scores = opt.predict_batch(&w.test).expect("predicts");
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn unknown_source_column_in_input_row_errors() {
    let w = WorkloadKind::Product
        .generate(&WorkloadConfig::small())
        .expect("generates");
    let opt = Willump::new(WillumpConfig::default())
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
    // A table with none of the pipeline's source columns.
    let mut bogus = Table::new();
    bogus
        .add_column("unrelated", Column::from(vec![1.0, 2.0]))
        .expect("fresh table");
    assert!(opt.predict_batch(&bogus).is_err());
}

#[test]
fn tiny_cache_capacity_still_serves_correctly() {
    let w = music();
    for capacity in [Some(1), Some(2)] {
        let opt = Willump::new(WillumpConfig {
            mode: QueryMode::ExampleAtATime,
            caching: Some(CachingConfig { capacity }),
            cascades: false,
            ..WillumpConfig::default()
        })
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
        let plain = Willump::new(WillumpConfig {
            mode: QueryMode::ExampleAtATime,
            cascades: false,
            ..WillumpConfig::default()
        })
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
        for r in (0..w.test.n_rows()).step_by(17) {
            let input = InputRow::from_table(&w.test, r).expect("row");
            let a = opt.predict_one(&input).expect("cached predicts");
            let b = plain.predict_one(&input).expect("plain predicts");
            assert!(
                (a - b).abs() < 1e-9,
                "capacity {capacity:?} row {r}: {a} vs {b} (thrashing cache must not corrupt)"
            );
        }
    }
}

#[test]
fn cascade_threshold_extremes_behave() {
    let w = WorkloadKind::Toxic
        .generate(&WorkloadConfig::small())
        .expect("generates");
    let mut opt = Willump::new(WillumpConfig {
        cascade_gate: false,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    let cascade = opt.cascade_mut().expect("gate off deploys cascade");

    // Threshold above any attainable confidence: everything escalates,
    // so predictions equal the full model's.
    cascade.set_threshold(1.01);
    let (scores, stats) = opt.predict_batch_with_stats(&w.test).expect("predicts");
    let stats = stats.expect("cascade stats");
    assert_eq!(stats.resolved_small, 0);
    let full_feats = opt
        .executor()
        .features_batch(&w.test, None)
        .expect("features");
    let full = opt.full_model().predict_scores(&full_feats);
    for (a, b) in scores.iter().zip(&full) {
        assert!((a - b).abs() < 1e-9);
    }

    // Threshold at the floor: confidence is always >= 0.5, so nothing
    // escalates and the small model answers everything.
    let cascade = opt.cascade_mut().expect("cascade still deployed");
    cascade.set_threshold(0.0);
    let (_, stats) = opt.predict_batch_with_stats(&w.test).expect("predicts");
    assert_eq!(stats.expect("cascade stats").escalated, 0);
}

#[test]
fn topk_with_k_larger_than_batch_is_clamped_or_errors() {
    let w = WorkloadKind::Product
        .generate(&WorkloadConfig::small())
        .expect("generates");
    let opt = Willump::new(WillumpConfig {
        mode: QueryMode::TopK { k: 10 },
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    let tiny = w.test.take_rows(&[0, 1, 2]);
    if let Ok((idx, _)) = opt.top_k(&tiny, 10) {
        assert!(idx.len() <= 3, "cannot return more rows than exist");
        // No duplicate indices.
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), idx.len());
    }
}
