//! Regression tests for the remote-feature cascade economics (paper
//! Tables 2 and 3): with remote tables and example-at-a-time queries,
//! the optimizer must measure per-row serving costs, deploy cascades,
//! and actually cut remote round trips — without accuracy loss.

use willump::{QueryMode, Willump, WillumpConfig};
use willump_graph::InputRow;
use willump_models::metrics;
use willump_workloads::{Workload, WorkloadConfig, WorkloadKind};

fn remote(kind: WorkloadKind) -> Workload {
    let cfg = WorkloadConfig {
        n_train: 1_200,
        n_valid: 800,
        n_test: 800,
        seed: 42,
        remote: None,
    }
    .with_remote_tables();
    kind.generate(&cfg).expect("workload generates")
}

fn serve_round_trips(w: &Workload, opt: &willump::OptimizedPipeline) -> u64 {
    let store = w.store.clone().expect("lookup workload has a store");
    store.stats().reset();
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row");
        opt.predict_one(&input).expect("predicts");
    }
    store.stats().round_trips()
}

/// Paper Table 2: cascades reduce Music's remote requests by ~29%,
/// Tracking's by ~42%. We require a substantial reduction (>= 15%) and
/// no statistically significant accuracy loss.
#[test]
fn cascades_cut_remote_requests_without_accuracy_loss() {
    for kind in [WorkloadKind::Music, WorkloadKind::Tracking] {
        let w = remote(kind);
        let plain = Willump::new(WillumpConfig {
            cascades: false,
            mode: QueryMode::ExampleAtATime,
            ..WillumpConfig::default()
        })
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
        let base = serve_round_trips(&w, &plain);

        let casc = Willump::new(WillumpConfig {
            mode: QueryMode::ExampleAtATime,
            ..WillumpConfig::default()
        })
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
        assert!(
            casc.report().cascades_deployed,
            "{}: cascades must deploy on remote tables (gate: {:?})",
            kind.name(),
            casc.report().cascade_gate_reason
        );
        let reduced = serve_round_trips(&w, &casc);
        assert!(
            (reduced as f64) < 0.85 * base as f64,
            "{}: {reduced} vs {base} round trips",
            kind.name()
        );

        let scores = casc.predict_batch(&w.test).expect("predicts");
        let feats = casc
            .executor()
            .features_batch(&w.test, None)
            .expect("features");
        let full_acc = metrics::accuracy(&casc.full_model().predict_scores(&feats), &w.test_y);
        let acc = metrics::accuracy(&scores, &w.test_y);
        let margin = metrics::accuracy_ci_95(full_acc, w.test_y.len());
        assert!(
            acc >= full_acc - margin,
            "{}: cascade {acc} vs full {full_acc} (margin {margin})",
            kind.name()
        );
    }
}

/// The cost basis is query-aware: optimizing the same remote workload
/// for example-at-a-time queries must see (much) larger IFV costs than
/// optimizing it for batch queries, because round trips stop being
/// amortized.
#[test]
fn per_row_cost_basis_sees_round_trips() {
    let w = remote(WorkloadKind::Music);
    let batch = Willump::new(WillumpConfig {
        mode: QueryMode::Batch,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    let single = Willump::new(WillumpConfig {
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");

    let batch_total = batch.report().ifv_stats.total_cost();
    let single_total = single.report().ifv_stats.total_cost();
    // 1 ms RTT x 5 lookups ~ 5 ms/row vs ~us-level amortized costs.
    assert!(
        single_total > 10.0 * batch_total,
        "per-row {single_total} vs batch {batch_total}"
    );
    assert!(single_total >= 4e-3, "per-row total {single_total}");
}

/// Cascade + feature-level caching compose: together they must beat
/// either alone on remote round trips (paper Table 2's bottom row).
#[test]
fn caching_and_cascades_compose() {
    use willump::CachingConfig;
    let w = remote(WorkloadKind::Music);
    let mk = |cascades: bool, caching: Option<CachingConfig>| {
        Willump::new(WillumpConfig {
            cascades,
            caching,
            mode: QueryMode::ExampleAtATime,
            ..WillumpConfig::default()
        })
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes")
    };
    let unlimited = Some(CachingConfig { capacity: None });
    let base = serve_round_trips(&w, &mk(false, None));
    let casc_only = serve_round_trips(&w, &mk(true, None));
    let cache_only = serve_round_trips(&w, &mk(false, unlimited));
    let both = serve_round_trips(&w, &mk(true, unlimited));
    assert!(casc_only < base);
    assert!(cache_only < base);
    assert!(
        both <= casc_only && both <= cache_only,
        "both {both}, cascades {casc_only}, caching {cache_only}, base {base}"
    );
}
