//! Workspace smoke test: the `willump-repro` facade's re-exports
//! resolve and compose — build a `Pipeline` through `willump`, a
//! `Table` through `willump_data`, optimize, and run one prediction
//! end-to-end through the compiled engine.

use std::sync::Arc;

use willump_repro::willump::{Pipeline, Willump, WillumpConfig};
use willump_repro::willump_data::{Column, Table};
use willump_repro::willump_graph::{GraphBuilder, InputRow, Operator};
use willump_repro::willump_models::{LogisticParams, ModelSpec};

fn tiny_table(docs: Vec<String>) -> Table {
    let mut t = Table::new();
    t.add_column("text", Column::from(docs))
        .expect("fresh table");
    t
}

#[test]
fn facade_reexports_compose_end_to_end() {
    // Data through willump_data: longer, louder documents are class 1.
    let make = |n: usize, offset: usize| -> (Table, Vec<f64>) {
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let positive = (i + offset).is_multiple_of(2);
            let doc = if positive {
                format!("GREAT wonderful product number {i}!!!")
            } else {
                format!("bad item {i}")
            };
            docs.push(doc);
            labels.push(f64::from(positive));
        }
        (tiny_table(docs), labels)
    };
    let (train, train_y) = make(120, 0);
    let (valid, valid_y) = make(60, 1);

    // Pipeline through willump: one cheap feature generator feeding a
    // logistic model.
    let mut b = GraphBuilder::new();
    let text = b.source("text");
    let stats = b
        .add("stats", Operator::StringStats, [text])
        .expect("node added");
    let graph = Arc::new(b.finish_with_concat("features", [stats]).expect("graph"));
    let pipeline = Pipeline::new(graph, ModelSpec::Logistic(LogisticParams::default()));

    // Optimize and predict end-to-end.
    let optimized = Willump::new(WillumpConfig::default())
        .optimize(&pipeline, &train, &train_y, &valid, &valid_y)
        .expect("optimizes");

    let (test, _) = make(10, 0);
    let scores = optimized.predict_batch(&test).expect("batch predicts");
    assert_eq!(scores.len(), 10);
    assert!(scores.iter().all(|s| s.is_finite()));

    // Single-row path resolves through the facade too.
    let row = InputRow::from_table(&test, 0).expect("row");
    let one = optimized.predict_one(&row).expect("single predicts");
    assert!(one.is_finite());
}
