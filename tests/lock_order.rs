//! Workspace-level exercise of the debug-only lock-order deadlock
//! detector in the vendored `parking_lot` stand-in.
//!
//! Runs only with the tracker compiled in:
//!
//! ```sh
//! cargo test -q --features lock-order-tracking
//! ```
//!
//! (the CI `locks` job). Everything here deliberately creates a
//! classic two-lock inversion — the pattern behind the `ClipperServer`
//! shutdown deadlock fixed in PR 2 — and asserts the detector reports
//! it with both of the conflicting acquisition sites instead of
//! letting the suite hang.

#![cfg(all(feature = "lock-order-tracking", debug_assertions))]

use parking_lot::{Mutex, RwLock};

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// The deliberate inversion: establish stats-then-queue, then acquire
/// queue-then-stats. The detector must panic (instead of risking a
/// deadlock under concurrency) and name both acquisition sites.
#[test]
fn deliberate_inversion_fires_with_both_sites() {
    let stats = Mutex::new(0u64);
    let queue = Mutex::new(Vec::<u64>::new());

    // Establish the canonical order: stats, then queue.
    {
        let s = stats.lock();
        queue.lock().push(*s);
    }

    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let q = queue.lock();
        let _s = stats.lock(); // inversion: queue held, acquiring stats
        drop(q);
    }))
    .expect_err("the detector must flag the inverted acquisition");

    let msg = panic_message(err);
    assert!(
        msg.contains("lock-order inversion"),
        "unexpected panic message: {msg}"
    );
    // Both of the conflicting acquisition sites — the current one and
    // the one that established the opposite ordering — are in this
    // file.
    assert!(
        msg.matches("tests/lock_order.rs").count() >= 2,
        "expected both acquisition sites in the message, got: {msg}"
    );
}

/// A cycle through three locks (a->b, b->c, then c->a) is caught even
/// though no two locks are ever directly inverted.
#[test]
fn transitive_cycle_is_caught() {
    let a = Mutex::new(());
    let b = RwLock::new(());
    let c = Mutex::new(());

    {
        let _ga = a.lock();
        let _gb = b.write(); // a -> b
    }
    {
        let _gb = b.read();
        let _gc = c.lock(); // b -> c
    }
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _gc = c.lock();
        let _ga = a.lock(); // closes the cycle c -> a
    }))
    .expect_err("the transitive cycle must be detected");
    let msg = panic_message(err);
    assert!(msg.contains("lock-order inversion"), "got: {msg}");
}

/// A consistent discipline across threads stays silent, so the
/// detector can ride along under the entire test suite without false
/// positives.
#[test]
fn consistent_cross_thread_order_is_silent() {
    let outer = Mutex::new(0u64);
    let inner = Mutex::new(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..100 {
                    let o = outer.lock();
                    let mut i = inner.lock();
                    *i += *o;
                }
            });
        }
    });
    assert_eq!(*outer.lock(), 0);
}
