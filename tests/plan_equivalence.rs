//! Plan-equivalence properties: a lowered `ServingPlan` must produce
//! outputs identical to the optimization it was lowered from, on
//! arbitrary generated batches.
//!
//! Each property checks three implementations against each other:
//! an independently-coded *reference* of the paper semantics (computed
//! straight from the executor and models), the lowered plan run by the
//! `PlanExecutor`, and the legacy wrapper shim (`CascadePredictor` /
//! `TopKFilter` / `E2eCachedPredictor`).

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

use willump::cascade::THRESHOLD_CANDIDATES;
use willump::{CascadePredictor, ServingPlan, TopKConfig, TopKFilter};
use willump_data::{Column, Table};
use willump_graph::{EngineMode, Executor, GraphBuilder, InputRow, TransformGraph};
use willump_models::{metrics, LinearParams, LogisticParams, ModelSpec, TrainedModel};
use willump_serve::E2eCachedPredictor;

/// Two numeric feature generators over sources `a` and `b`.
fn two_fg_graph() -> Arc<TransformGraph> {
    let mut b = GraphBuilder::new();
    let a = b.source("a");
    let c = b.source("b");
    let f0 = b
        .add("f0", willump_graph::Operator::NumericColumn, [a])
        .unwrap();
    let f1 = b
        .add("f1", willump_graph::Operator::NumericColumn, [c])
        .unwrap();
    Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap())
}

fn table_from_pairs(rows: &[(f64, f64)]) -> Table {
    let mut t = Table::new();
    t.add_column(
        "a",
        Column::from(rows.iter().map(|r| r.0).collect::<Vec<_>>()),
    )
    .unwrap();
    t.add_column(
        "b",
        Column::from(rows.iter().map(|r| r.1).collect::<Vec<_>>()),
    )
    .unwrap();
    t
}

struct Fixture {
    exec: Executor,
    /// Classification pair (cascades).
    small: Arc<TrainedModel>,
    full: Arc<TrainedModel>,
    /// Regression pair (top-K).
    filter: Arc<TrainedModel>,
    ranker: Arc<TrainedModel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let exec = Executor::new(two_fg_graph(), EngineMode::Compiled).unwrap();
        // Classification data: FG0 signals easy rows, FG1 hard ones.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let y = (i % 2) as f64;
            if i % 3 != 0 {
                rows.push((if y > 0.5 { 3.0 } else { -3.0 }, 0.0));
            } else {
                rows.push((0.0, if y > 0.5 { 2.0 } else { -2.0 }));
            }
            labels.push(y);
        }
        let t = table_from_pairs(&rows);
        let full_feats = exec.features_batch(&t, None).unwrap();
        let eff_feats = exec.features_batch(&t, Some(&[0])).unwrap();
        let full = Arc::new(
            ModelSpec::Logistic(LogisticParams::default())
                .fit(&full_feats, &labels, 1)
                .unwrap(),
        );
        let small = Arc::new(
            ModelSpec::Logistic(LogisticParams::default())
                .fit(&eff_feats, &labels, 1)
                .unwrap(),
        );
        // Regression data: score dominated by FG0, corrected by FG1.
        let targets: Vec<f64> = rows.iter().map(|(a, b)| 2.0 * a + 0.3 * b).collect();
        let params = LinearParams {
            epochs: 120,
            learning_rate: 0.05,
            decay: 0.001,
            l2: 0.0,
        };
        let ranker = Arc::new(
            ModelSpec::Linear(params.clone())
                .fit(&full_feats, &targets, 1)
                .unwrap(),
        );
        let filter = Arc::new(
            ModelSpec::Linear(params)
                .fit(&eff_feats, &targets, 1)
                .unwrap(),
        );
        Fixture {
            exec,
            small,
            full,
            filter,
            ranker,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The lowered cascade plan matches both an independent reference
    /// of the paper's cascade semantics and the legacy wrapper shim,
    /// batch-wise and row-wise, on arbitrary batches and thresholds.
    #[test]
    fn cascade_plan_matches_reference_and_shim(
        rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..40),
        t_idx in 0usize..THRESHOLD_CANDIDATES.len(),
    ) {
        let fx = fixture();
        let threshold = THRESHOLD_CANDIDATES[t_idx];
        let t = table_from_pairs(&rows);

        // Reference: small scores on efficient features, full scores
        // on the complete layout, per-row threshold arbitration.
        let eff = fx.exec.features_batch(&t, Some(&[0])).unwrap();
        let small_scores = fx.small.predict_scores(&eff);
        let full_feats = fx.exec.features_batch(&t, None).unwrap();
        let full_scores = fx.full.predict_scores(&full_feats);
        let reference: Vec<f64> = small_scores
            .iter()
            .zip(&full_scores)
            .map(|(&s, &f)| if s.max(1.0 - s) > threshold { s } else { f })
            .collect();

        let plan = ServingPlan::cascade(
            fx.exec.clone(),
            fx.small.clone(),
            fx.full.clone(),
            threshold,
            vec![0],
        )
        .unwrap();
        let out = plan.run_batch(&t).unwrap();
        prop_assert_eq!(out.scores.len(), reference.len());
        for (i, (p, r)) in out.scores.iter().zip(&reference).enumerate() {
            prop_assert!((p - r).abs() <= 1e-12, "row {}: plan {} vs reference {}", i, p, r);
        }
        let escalated_ref = reference
            .iter()
            .zip(&small_scores)
            .filter(|(_, &s)| s.max(1.0 - s) <= threshold)
            .count();
        prop_assert_eq!(out.report.escalated, escalated_ref);

        // Legacy shim agrees (batch and row paths).
        let shim = CascadePredictor::new(
            fx.exec.clone(),
            fx.small.clone(),
            fx.full.clone(),
            threshold,
            vec![0],
        )
        .unwrap();
        let (shim_scores, stats) = shim.predict_batch(&t).unwrap();
        prop_assert_eq!(&shim_scores, &out.scores);
        prop_assert_eq!(stats.escalated, escalated_ref);
        for (r, &s) in small_scores.iter().enumerate().take(5) {
            let input = InputRow::from_table(&t, r).unwrap();
            let (one, escalated) = shim.predict_one(&input).unwrap();
            prop_assert!((one - out.scores[r]).abs() <= 1e-9);
            prop_assert_eq!(escalated, s.max(1.0 - s) <= threshold);
        }
    }

    /// The lowered top-K plan returns exactly the indices the paper's
    /// filter semantics prescribe, and the legacy wrapper shim agrees
    /// including its serving statistics.
    #[test]
    fn topk_plan_matches_reference_and_shim(
        rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 2..50),
        k in 1usize..8,
        ck in 1usize..5,
        frac_pct in 0usize..30,
    ) {
        let fx = fixture();
        let config = TopKConfig {
            ck,
            min_subset_frac: frac_pct as f64 / 100.0,
        };
        let t = table_from_pairs(&rows);
        let n = t.n_rows();

        // Reference: filter scores -> top subset -> full rerank.
        let eff = fx.exec.features_batch(&t, Some(&[0])).unwrap();
        let filter_scores = fx.filter.predict_scores(&eff);
        let by_ck = ck.saturating_mul(k);
        let by_frac = (config.min_subset_frac * n as f64).ceil() as usize;
        let subset_size = by_ck.max(by_frac).min(n);
        let candidates = metrics::top_k_indices(&filter_scores, subset_size);
        let sub = t.take_rows(&candidates);
        let sub_full = fx.exec.features_batch(&sub, None).unwrap();
        let sub_scores = fx.ranker.predict_scores(&sub_full);
        let reference: Vec<usize> = metrics::top_k_indices(&sub_scores, k.min(candidates.len()))
            .into_iter()
            .map(|j| candidates[j])
            .collect();

        let plan = ServingPlan::top_k_filter(
            fx.exec.clone(),
            fx.filter.clone(),
            fx.ranker.clone(),
            k,
            config,
            vec![0],
        )
        .unwrap();
        let (ranked, report) = plan.top_k(&t, k).unwrap();
        prop_assert_eq!(&ranked, &reference);
        prop_assert_eq!(report.filter_batch, Some(n));
        prop_assert_eq!(report.filter_kept, Some(subset_size));

        let shim = TopKFilter::new(
            fx.exec.clone(),
            fx.filter.clone(),
            fx.ranker.clone(),
            config,
            vec![0],
        )
        .unwrap();
        let (shim_ranked, stats) = shim.top_k(&t, k).unwrap();
        prop_assert_eq!(&shim_ranked, &reference);
        prop_assert_eq!(stats.batch_size, n);
        prop_assert_eq!(stats.subset_size, subset_size);
    }

    /// A plan with composed cache stages behaves exactly like the
    /// legacy `E2eCachedPredictor` wrapped around the same plan: same
    /// scores, same hit/miss counts, on query streams with repeats.
    #[test]
    fn cached_plan_matches_legacy_cache_wrapper(
        queries in prop::collection::vec((0u8..5, 0u8..5), 1..60),
    ) {
        let fx = fixture();
        let base = ServingPlan::full_model_plan(fx.exec.clone(), fx.full.clone());
        let cached_plan = base
            .clone()
            .with_e2e_cache(vec!["a".to_string(), "b".to_string()], None)
            .unwrap();
        let inner = base.clone();
        let legacy = E2eCachedPredictor::new(
            move |input| inner.predict_one(input).map_err(|e| e.to_string()),
            vec!["a".to_string(), "b".to_string()],
            None,
        );
        for &(qa, qb) in &queries {
            let input = InputRow::new([
                ("a", willump_data::Value::Float(f64::from(qa))),
                ("b", willump_data::Value::Float(f64::from(qb))),
            ]);
            let from_plan = cached_plan.run_one(&input).unwrap();
            let from_legacy = legacy.predict_one(&input).unwrap();
            prop_assert!((from_plan.score - from_legacy).abs() <= 1e-12);
        }
        prop_assert_eq!(cached_plan.cache_hits(), legacy.hits());
        prop_assert_eq!(cached_plan.cache_misses(), legacy.misses());
    }
}

/// The optimizer's deployed serving plan is the same object the
/// legacy accessors expose, and its batch path equals the
/// `OptimizedPipeline` prediction path.
#[test]
fn optimizer_lowered_plan_matches_pipeline_path() {
    use willump::{QueryMode, Willump, WillumpConfig};
    use willump_workloads::{WorkloadConfig, WorkloadKind};

    let w = WorkloadKind::Product
        .generate(&WorkloadConfig::small())
        .expect("generates");
    let opt = Willump::new(WillumpConfig {
        cascade_gate: false,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");

    let plan = opt.serving_plan();
    let via_plan = plan.predict_batch(&w.test).expect("plan predicts");
    let via_pipeline = opt.predict_batch(&w.test).expect("pipeline predicts");
    assert_eq!(via_plan, via_pipeline);
    if opt.report().cascades_deployed {
        assert!(plan.threshold().is_some(), "cascade plan carries its gate");
        assert_eq!(
            plan.efficient_set().unwrap(),
            opt.cascade().unwrap().efficient_set()
        );
    }

    // Top-K mode lowers a filter plan.
    let opt = Willump::new(WillumpConfig {
        mode: QueryMode::TopK { k: 10 },
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimizes");
    if opt.report().filter_deployed {
        let plan = opt.serving_plan();
        assert!(plan.topk_config().is_some());
        let (via_plan, _) = plan.top_k(&w.test, 10).expect("plan top-k");
        let (via_pipeline, _) = opt.top_k(&w.test, 10).expect("pipeline top-k");
        assert_eq!(via_plan, via_pipeline);
    }
}
