//! Compressed sparse row (CSR) matrices for wide text features.
//!
//! TF-IDF over word and character n-grams (the Product, Toxic, and
//! Price workloads) produces feature vectors with 10^4-10^6 columns of
//! which only dozens are nonzero; CSR keeps the compiled engine's
//! memory traffic proportional to the nonzeros.

use serde::{Deserialize, Serialize};

use crate::{DataError, Matrix};

/// A CSR sparse `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    /// Row start offsets into `indices`/`data`; length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index of each stored value.
    indices: Vec<u32>,
    /// Stored (nonzero) values.
    data: Vec<f64>,
    cols: usize,
}

/// Incremental row-by-row builder for [`SparseMatrix`].
///
/// ```
/// use willump_data::SparseRowBuilder;
///
/// let mut b = SparseRowBuilder::new(4);
/// b.push_row(&[(1, 2.0), (3, 1.0)]);
/// b.push_row(&[]);
/// let m = b.finish();
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SparseRowBuilder {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f64>,
    cols: usize,
}

impl SparseRowBuilder {
    /// A builder for matrices with `cols` columns.
    pub fn new(cols: usize) -> SparseRowBuilder {
        SparseRowBuilder {
            indptr: vec![0],
            indices: Vec::new(),
            data: Vec::new(),
            cols,
        }
    }

    /// Append one row given `(column, value)` pairs.
    ///
    /// Entries are sorted by column and zero values are dropped;
    /// duplicate columns within a row are summed.
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) {
        let mut row: Vec<(usize, f64)> =
            entries.iter().copied().filter(|(_, v)| *v != 0.0).collect();
        row.sort_unstable_by_key(|(c, _)| *c);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
        for (c, v) in row {
            assert!(c < self.cols, "column {c} out of range ({})", self.cols);
            match merged.last_mut() {
                Some((lc, lv)) if *lc == c => *lv += v,
                _ => merged.push((c, v)),
            }
        }
        for (c, v) in merged {
            if v != 0.0 {
                self.indices.push(c as u32);
                self.data.push(v);
            }
        }
        self.indptr.push(self.indices.len());
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Finish the build, producing the matrix.
    pub fn finish(self) -> SparseMatrix {
        SparseMatrix {
            indptr: self.indptr,
            indices: self.indices,
            data: self.data,
            cols: self.cols,
        }
    }
}

impl SparseMatrix {
    /// An empty matrix with `rows` rows and `cols` columns (all zero).
    pub fn zeros(rows: usize, cols: usize) -> SparseMatrix {
        SparseMatrix {
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
            cols,
        }
    }

    /// Convert a dense matrix, dropping zeros.
    pub fn from_dense(m: &Matrix) -> SparseMatrix {
        let mut b = SparseRowBuilder::new(m.n_cols());
        let mut scratch = Vec::new();
        for r in 0..m.n_rows() {
            scratch.clear();
            scratch.extend(
                m.row(r)
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v != 0.0)
                    .map(|(c, v)| (c, *v)),
            );
            b.push_row(&scratch);
        }
        b.finish()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (nonzero) values.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// The `(column, value)` pairs of row `r` in column order.
    ///
    /// # Panics
    /// Panics if `r >= n_rows()`.
    pub fn row_pairs(&self, r: usize) -> Vec<(usize, f64)> {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        self.indices[lo..hi]
            .iter()
            .zip(&self.data[lo..hi])
            .map(|(c, v)| (*c as usize, *v))
            .collect()
    }

    /// Borrowed view of row `r` as parallel column/value slices.
    ///
    /// # Panics
    /// Panics if `r >= n_rows()`.
    pub fn row_view(&self, r: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Dot product of row `r` with a dense weight vector.
    ///
    /// # Panics
    /// Panics if `r` is out of bounds or `w` is shorter than `n_cols()`.
    pub fn row_dot(&self, r: usize, w: &[f64]) -> f64 {
        assert!(w.len() >= self.cols, "weight vector too short");
        let (cols, vals) = self.row_view(r);
        cols.iter().zip(vals).map(|(c, v)| w[*c as usize] * v).sum()
    }

    /// Materialize as a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n_rows(), self.cols);
        for r in 0..self.n_rows() {
            let (cols, vals) = self.row_view(r);
            let row = out.row_mut(r);
            for (c, v) in cols.iter().zip(vals) {
                row[*c as usize] = *v;
            }
        }
        out
    }

    /// Horizontally concatenate sparse matrices with equal row counts.
    ///
    /// # Errors
    /// Returns [`DataError::ShapeMismatch`] on differing row counts or
    /// an empty input.
    pub fn hstack(parts: &[&SparseMatrix]) -> Result<SparseMatrix, DataError> {
        let Some(first) = parts.first() else {
            return Err(DataError::ShapeMismatch {
                context: "hstack of zero sparse matrices".into(),
            });
        };
        let rows = first.n_rows();
        if parts.iter().any(|p| p.n_rows() != rows) {
            return Err(DataError::ShapeMismatch {
                context: "sparse hstack row counts differ".into(),
            });
        }
        let cols = parts.iter().map(|p| p.cols).sum();
        let mut b = SparseRowBuilder::new(cols);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            let mut offset = 0usize;
            for p in parts {
                let (cs, vs) = p.row_view(r);
                scratch.extend(cs.iter().zip(vs).map(|(c, v)| (*c as usize + offset, *v)));
                offset += p.cols;
            }
            b.push_row(&scratch);
        }
        Ok(b.finish())
    }

    /// Gather rows by index into a new matrix (indices may repeat).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, rows: &[usize]) -> SparseMatrix {
        let mut b = SparseRowBuilder::new(self.cols);
        for &r in rows {
            b.push_row(&self.row_pairs(r));
        }
        b.finish()
    }

    /// Per-column mean absolute values over all rows (implicit zeros
    /// included in the denominator).
    pub fn column_mean_abs(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for (c, v) in self.indices.iter().zip(&self.data) {
            sums[*c as usize] += v.abs();
        }
        let n = self.n_rows();
        if n > 0 {
            for s in &mut sums {
                *s /= n as f64;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        let mut b = SparseRowBuilder::new(5);
        b.push_row(&[(0, 1.0), (3, 2.0)]);
        b.push_row(&[]);
        b.push_row(&[(4, -1.0)]);
        b.finish()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 5);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn rows_sorted_and_merged() {
        let mut b = SparseRowBuilder::new(4);
        b.push_row(&[(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        let m = b.finish();
        assert_eq!(m.row_pairs(0), vec![(1, 2.0), (3, 5.0)]);
    }

    #[test]
    fn merged_to_zero_is_dropped() {
        let mut b = SparseRowBuilder::new(2);
        b.push_row(&[(1, 1.0), (1, -1.0)]);
        let m = b.finish();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dense_round_trip() {
        let d = Matrix::from_rows(&[vec![0.0, 1.5, 0.0], vec![2.0, 0.0, -3.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn row_dot_matches_dense() {
        let m = sample();
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(m.row_dot(0, &w), 1.0 + 8.0);
        assert_eq!(m.row_dot(1, &w), 0.0);
        assert_eq!(m.row_dot(2, &w), -5.0);
    }

    #[test]
    fn hstack_offsets_columns() {
        let a = sample();
        let joined = SparseMatrix::hstack(&[&a, &a]).unwrap();
        assert_eq!(joined.n_cols(), 10);
        assert_eq!(
            joined.row_pairs(0),
            vec![(0, 1.0), (3, 2.0), (5, 1.0), (8, 2.0)]
        );
        assert!(SparseMatrix::hstack(&[]).is_err());
    }

    #[test]
    fn take_rows_repeats() {
        let m = sample();
        let t = m.take_rows(&[2, 0, 2]);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.row_pairs(0), vec![(4, -1.0)]);
        assert_eq!(t.row_pairs(1), vec![(0, 1.0), (3, 2.0)]);
    }

    #[test]
    fn column_mean_abs_counts_zeros() {
        let m = sample();
        let means = m.column_mean_abs();
        assert!((means[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((means[4] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(means[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "column 9 out of range")]
    fn out_of_range_column_panics() {
        let mut b = SparseRowBuilder::new(4);
        b.push_row(&[(9, 1.0)]);
    }
}
