//! Dynamic values: the unit of data flowing through the *interpreted*
//! engine (the Python-baseline stand-in). Boxed, heap-allocated, and
//! dynamically typed on purpose — the cost structure is the point.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The dynamic type of a [`Value`] or a [`crate::Column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Missing / no value.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "null",
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar, analogous to a Python object in the
/// paper's unoptimized pipelines.
///
/// Strings are reference-counted so cloning a `Value` out of a column
/// is cheap, mirroring CPython's pointer semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing / no value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// The dynamic type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Numeric view of the value, if it has one.
    ///
    /// Bools coerce to 0.0/1.0 and ints widen to float, matching the
    /// implicit coercions the benchmark pipelines rely on.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// Integer view of the value, if it is an int or bool.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None);
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Null.data_type(), DataType::Null);
        assert_eq!(Value::from("hi").data_type(), DataType::Str);
        assert_eq!(Value::from(1i64).data_type(), DataType::Int);
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::from(1.5).to_string(), "1.5");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(format!("{:?}", DataType::Str), "Str");
        assert_eq!(DataType::Float.to_string(), "float");
    }

    #[test]
    fn string_clone_is_shallow() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
