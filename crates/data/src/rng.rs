//! Seeded randomness helpers used by workload generators.
//!
//! All experiment binaries derive their randomness from fixed seeds so
//! that tables and figures are reproducible run-to-run.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A Zipf-distributed sampler over `{0, 1, ..., n-1}`.
///
/// Entity popularity in the lookup workloads (users, songs, IPs) is
/// Zipfian — that skew is what makes the paper's feature-level caching
/// effective (Table 2's 92.3 % request reduction on Music). Sampling
/// uses a precomputed CDF with binary search, so draws are `O(log n)`.
///
/// ```
/// use willump_data::rng::{seeded, Zipf};
/// use rand::Rng;
///
/// let zipf = Zipf::new(100, 1.1);
/// let mut rng = seeded(7);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf law over `n` ranks with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        Zipf::sample(self, rng)
    }
}

/// Sample an index according to (unnormalized, non-negative) weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A standard-normal draw via Box-Muller (keeps us independent of
/// `rand_distr`, which is outside the approved dependency set).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std * z
}

/// Fisher-Yates shuffled `0..n` index permutation.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(1000, 1.2);
        let mut rng = seeded(42);
        let mut head = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of 1000 ranks should soak up far more than the 1%
        // uniform share.
        assert!(head as f64 / draws as f64 > 0.3, "head share {head}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let zipf = Zipf::new(5, 0.8);
        let mut rng = seeded(1);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn zipf_deterministic_under_seed() {
        let zipf = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = seeded(9);
            (0..20).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = seeded(9);
            (0..20).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = seeded(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[0.0, 1.0, 3.0])] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn normal_has_right_moments() {
        let mut rng = seeded(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(5);
        let p = permutation(&mut rng, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
