//! Named-column tables, analogous to Pandas DataFrames in the paper's
//! pipelines and to the feature tables stored in Redis.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::{Column, DataError, DataType, Value};

/// An ordered collection of equal-length named [`Column`]s.
///
/// ```
/// use willump_data::{Table, Column};
///
/// # fn main() -> Result<(), willump_data::DataError> {
/// let mut t = Table::new();
/// t.add_column("id", Column::from(vec![10i64, 20]))?;
/// t.add_column("name", Column::from(vec!["a", "b"]))?;
/// assert_eq!(t.column_names(), vec!["id", "name"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    columns: Vec<(String, Column)>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Table {
    /// An empty table with no columns.
    pub fn new() -> Table {
        Table::default()
    }

    /// Build a table from `(name, column)` pairs.
    ///
    /// # Errors
    /// Returns an error on duplicate names or mismatched lengths.
    pub fn from_columns(
        cols: impl IntoIterator<Item = (String, Column)>,
    ) -> Result<Table, DataError> {
        let mut t = Table::new();
        for (name, col) in cols {
            t.add_column(name, col)?;
        }
        Ok(t)
    }

    /// Number of rows (0 for a table with no columns).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The schema as `(name, type)` pairs in insertion order.
    pub fn schema(&self) -> Vec<(&str, DataType)> {
        self.columns
            .iter()
            .map(|(n, c)| (n.as_str(), c.data_type()))
            .collect()
    }

    /// Append a column.
    ///
    /// # Errors
    /// Returns [`DataError::DuplicateColumn`] if `name` exists, or
    /// [`DataError::ShapeMismatch`] if the length differs from the
    /// table's current row count (for non-empty tables).
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<(), DataError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(DataError::DuplicateColumn { name });
        }
        if !self.columns.is_empty() && col.len() != self.n_rows() {
            return Err(DataError::ShapeMismatch {
                context: format!(
                    "column `{name}` has {} rows, table has {}",
                    col.len(),
                    self.n_rows()
                ),
            });
        }
        self.index.insert(name.clone(), self.columns.len());
        self.columns.push((name, col));
        Ok(())
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index.get(name).map(|&i| &self.columns[i].1)
    }

    /// Borrow a column by name, erroring when missing.
    ///
    /// # Errors
    /// Returns [`DataError::UnknownColumn`] when the name is absent.
    pub fn try_column(&self, name: &str) -> Result<&Column, DataError> {
        self.column(name).ok_or_else(|| DataError::UnknownColumn {
            name: name.to_string(),
        })
    }

    /// The value at (`row`, `name`), if both exist.
    pub fn value(&self, row: usize, name: &str) -> Option<Value> {
        self.column(name).and_then(|c| c.value(row))
    }

    /// A full row as boxed values in column order.
    ///
    /// # Errors
    /// Returns [`DataError::RowOutOfBounds`] when `row >= n_rows()`.
    pub fn row(&self, row: usize) -> Result<Vec<Value>, DataError> {
        if row >= self.n_rows() {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.n_rows(),
            });
        }
        Ok(self
            .columns
            .iter()
            .map(|(_, c)| c.value(row).expect("bounds checked"))
            .collect())
    }

    /// Gather rows by index into a new table (indices may repeat).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, rows: &[usize]) -> Table {
        let mut t = Table::new();
        for (name, col) in &self.columns {
            t.add_column(name.clone(), col.take(rows))
                .expect("taken columns share length");
        }
        t
    }

    /// Keep only the named columns, in the given order.
    ///
    /// # Errors
    /// Returns [`DataError::UnknownColumn`] for any missing name.
    pub fn select(&self, names: &[&str]) -> Result<Table, DataError> {
        let mut t = Table::new();
        for &name in names {
            let col = self.try_column(name)?.clone();
            t.add_column(name, col)?;
        }
        Ok(t)
    }

    /// Iterate `(name, column)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Rebuild the name index (used after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_columns([
            ("id".to_string(), Column::from(vec![1i64, 2, 3])),
            ("x".to_string(), Column::from(vec![0.1, 0.2, 0.3])),
            ("s".to_string(), Column::from(vec!["a", "b", "c"])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.value(2, "s"), Some(Value::from("c")));
        assert_eq!(t.value(3, "s"), None);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn duplicate_and_mismatch_rejected() {
        let mut t = sample();
        assert!(matches!(
            t.add_column("id", Column::from(vec![9i64, 9, 9])),
            Err(DataError::DuplicateColumn { .. })
        ));
        assert!(matches!(
            t.add_column("bad", Column::from(vec![1i64])),
            Err(DataError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn row_extraction() {
        let t = sample();
        let r = t.row(1).unwrap();
        assert_eq!(r, vec![Value::Int(2), Value::Float(0.2), Value::from("b")]);
        assert!(t.row(5).is_err());
    }

    #[test]
    fn take_and_select() {
        let t = sample();
        let sub = t.take_rows(&[2, 0]);
        assert_eq!(sub.value(0, "id"), Some(Value::Int(3)));
        let sel = t.select(&["s", "id"]).unwrap();
        assert_eq!(sel.column_names(), vec!["s", "id"]);
        assert!(t.select(&["nope"]).is_err());
    }

    #[test]
    fn schema_reports_types() {
        let t = sample();
        assert_eq!(
            t.schema(),
            vec![
                ("id", DataType::Int),
                ("x", DataType::Float),
                ("s", DataType::Str)
            ]
        );
    }
}
