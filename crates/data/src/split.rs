//! Train/validation/test splitting utilities.
//!
//! Willump trains small models on a training set and picks cascade
//! thresholds on a validation set (paper §4.2); the threshold
//! robustness microbenchmark (§6.4) needs *two* disjoint validation
//! sets, which [`three_way_split`] provides via [`SplitSpec`].

use rand::Rng;

use crate::rng::permutation;

/// Fractions for a three-way split; the remainder goes to test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSpec {
    /// Fraction of rows assigned to training.
    pub train: f64,
    /// Fraction of rows assigned to validation.
    pub valid: f64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec {
            train: 0.6,
            valid: 0.2,
        }
    }
}

/// Index sets for a three-way split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Validation row indices.
    pub valid: Vec<usize>,
    /// Test row indices.
    pub test: Vec<usize>,
}

/// Shuffle `0..n` and split it into train/valid/test index sets.
///
/// # Panics
/// Panics if the fractions are negative or sum above 1.
pub fn three_way_split<R: Rng + ?Sized>(rng: &mut R, n: usize, spec: SplitSpec) -> Split {
    assert!(
        spec.train >= 0.0 && spec.valid >= 0.0 && spec.train + spec.valid <= 1.0,
        "invalid split fractions"
    );
    let perm = permutation(rng, n);
    let n_train = (n as f64 * spec.train).round() as usize;
    let n_valid = (n as f64 * spec.valid).round() as usize;
    let n_train = n_train.min(n);
    let n_valid = n_valid.min(n - n_train);
    Split {
        train: perm[..n_train].to_vec(),
        valid: perm[n_train..n_train + n_valid].to_vec(),
        test: perm[n_train + n_valid..].to_vec(),
    }
}

/// Split the validation indices themselves into two disjoint halves
/// (for the cascade-threshold robustness experiment).
pub fn halve(indices: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mid = indices.len() / 2;
    (indices[..mid].to_vec(), indices[mid..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn split_partitions_everything() {
        let mut rng = seeded(0);
        let s = three_way_split(&mut rng, 100, SplitSpec::default());
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.valid.len(), 20);
        assert_eq!(s.test.len(), 20);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let a = three_way_split(&mut seeded(4), 50, SplitSpec::default());
        let b = three_way_split(&mut seeded(4), 50, SplitSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn halve_is_disjoint_cover() {
        let idx: Vec<usize> = (0..11).collect();
        let (a, b) = halve(&idx);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 6);
        let mut joined = [a, b].concat();
        joined.sort_unstable();
        assert_eq!(joined, idx);
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn overfull_fractions_panic() {
        let _ = three_way_split(
            &mut seeded(0),
            10,
            SplitSpec {
                train: 0.9,
                valid: 0.5,
            },
        );
    }

    #[test]
    fn tiny_n_does_not_panic() {
        let s = three_way_split(&mut seeded(0), 1, SplitSpec::default());
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 1);
    }
}
