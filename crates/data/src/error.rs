//! Error type for the data substrate.

use std::error::Error;
use std::fmt;

use crate::DataType;

/// Errors produced by data-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Shapes of two containers were incompatible for the operation.
    ShapeMismatch {
        /// What was being attempted.
        context: String,
    },
    /// A column name was not found in a table.
    UnknownColumn {
        /// The missing name.
        name: String,
    },
    /// A column with the same name already exists.
    DuplicateColumn {
        /// The duplicated name.
        name: String,
    },
    /// A value's type did not match the column's type.
    TypeMismatch {
        /// Type the container holds.
        expected: DataType,
        /// Type that was supplied.
        found: DataType,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of rows available.
        len: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            DataError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            DataError::DuplicateColumn { name } => write!(f, "duplicate column `{name}`"),
            DataError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DataError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for length {len}")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DataError::UnknownColumn { name: "x".into() };
        assert_eq!(e.to_string(), "unknown column `x`");
        let e = DataError::TypeMismatch {
            expected: DataType::Int,
            found: DataType::Str,
        };
        assert!(e.to_string().contains("expected int"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
