//! Typed columns: the building block of [`crate::Table`].

use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::{DataError, DataType, Value};

/// A homogeneously typed column of data, analogous to a Pandas Series.
///
/// Columns are the storage behind [`crate::Table`]; the interpreted
/// engine reads them value-at-a-time through [`Column::value`], while
/// the compiled engine reads whole typed vectors without boxing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Boolean column.
    Bool(Vec<bool>),
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<Arc<str>>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool(_) => DataType::Bool,
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// The boxed value at `row`, or `None` if out of bounds.
    pub fn value(&self, row: usize) -> Option<Value> {
        match self {
            Column::Bool(v) => v.get(row).map(|b| Value::Bool(*b)),
            Column::Int(v) => v.get(row).map(|i| Value::Int(*i)),
            Column::Float(v) => v.get(row).map(|f| Value::Float(*f)),
            Column::Str(v) => v.get(row).map(|s| Value::Str(Arc::clone(s))),
        }
    }

    /// Append a value of the matching type.
    ///
    /// # Errors
    /// Returns [`DataError::TypeMismatch`] if `v`'s type differs from
    /// the column type.
    pub fn push(&mut self, v: Value) -> Result<(), DataError> {
        match (self, v) {
            (Column::Bool(c), Value::Bool(b)) => c.push(b),
            (Column::Int(c), Value::Int(i)) => c.push(i),
            (Column::Float(c), Value::Float(f)) => c.push(f),
            (Column::Float(c), Value::Int(i)) => c.push(i as f64),
            (Column::Str(c), Value::Str(s)) => c.push(s),
            (col, v) => {
                return Err(DataError::TypeMismatch {
                    expected: col.data_type(),
                    found: v.data_type(),
                })
            }
        }
        Ok(())
    }

    /// View the column as numeric values (bools as 0/1, ints widened).
    ///
    /// # Errors
    /// Returns [`DataError::TypeMismatch`] for string columns.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, DataError> {
        match self {
            Column::Bool(v) => Ok(v.iter().map(|b| f64::from(u8::from(*b))).collect()),
            Column::Int(v) => Ok(v.iter().map(|i| *i as f64).collect()),
            Column::Float(v) => Ok(v.clone()),
            Column::Str(_) => Err(DataError::TypeMismatch {
                expected: DataType::Float,
                found: DataType::Str,
            }),
        }
    }

    /// Borrow the underlying strings, if this is a string column.
    pub fn as_str_slice(&self) -> Option<&[Arc<str>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the underlying ints, if this is an int column.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the underlying floats, if this is a float column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Gather rows by index into a new column (indices may repeat).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn take(&self, rows: &[usize]) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(rows.iter().map(|&r| v[r]).collect()),
            Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r]).collect()),
            Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r]).collect()),
            Column::Str(v) => Column::Str(rows.iter().map(|&r| Arc::clone(&v[r])).collect()),
        }
    }

    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> Option<Column> {
        match dt {
            DataType::Bool => Some(Column::Bool(Vec::new())),
            DataType::Int => Some(Column::Int(Vec::new())),
            DataType::Float => Some(Column::Float(Vec::new())),
            DataType::Str => Some(Column::Str(Vec::new())),
            DataType::Null => None,
        }
    }

    /// Iterate the column as boxed [`Value`]s (interpreted-engine path).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i).expect("index in range"))
    }
}

impl From<Vec<bool>> for Column {
    fn from(v: Vec<bool>) -> Self {
        Column::Bool(v)
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::Int(v)
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::Float(v)
    }
}

impl From<Vec<String>> for Column {
    fn from(v: Vec<String>) -> Self {
        Column::Str(v.into_iter().map(Arc::from).collect())
    }
}

impl From<Vec<&str>> for Column {
    fn from(v: Vec<&str>) -> Self {
        Column::Str(v.into_iter().map(Arc::from).collect())
    }
}

impl FromIterator<f64> for Column {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Column::Float(iter.into_iter().collect())
    }
}

impl FromIterator<i64> for Column {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        Column::Int(iter.into_iter().collect())
    }
}

impl FromIterator<String> for Column {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        Column::Str(iter.into_iter().map(Arc::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = Column::from(vec![1i64, 2]);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(2), Some(Value::Int(3)));
        assert_eq!(c.value(3), None);
        assert!(c.push(Value::str("no")).is_err());
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut c = Column::from(vec![1.0f64]);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.value(1), Some(Value::Float(2.0)));
    }

    #[test]
    fn to_f64_vec_coerces_bools() {
        let c = Column::from(vec![true, false, true]);
        assert_eq!(c.to_f64_vec().unwrap(), vec![1.0, 0.0, 1.0]);
        let s = Column::from(vec!["a", "b"]);
        assert!(s.to_f64_vec().is_err());
    }

    #[test]
    fn take_gathers_with_repeats() {
        let c = Column::from(vec!["a", "b", "c"]);
        let t = c.take(&[2, 2, 0]);
        assert_eq!(t.value(0), Some(Value::from("c")));
        assert_eq!(t.value(1), Some(Value::from("c")));
        assert_eq!(t.value(2), Some(Value::from("a")));
    }

    #[test]
    fn empty_of_type() {
        assert_eq!(Column::empty(DataType::Int).unwrap().len(), 0);
        assert!(Column::empty(DataType::Null).is_none());
    }

    #[test]
    fn iter_values_yields_all() {
        let c = Column::from(vec![1.5f64, 2.5]);
        let vals: Vec<Value> = c.iter_values().collect();
        assert_eq!(vals, vec![Value::Float(1.5), Value::Float(2.5)]);
    }

    #[test]
    fn collect_from_iterators() {
        let c: Column = (0..3).map(|i| i as f64).collect();
        assert_eq!(c.data_type(), DataType::Float);
        let c: Column = (0i64..3).collect();
        assert_eq!(c.data_type(), DataType::Int);
    }
}
