//! # willump-data
//!
//! Data substrate for the Willump reproduction: dynamic [`Value`]s,
//! typed [`Column`]s and [`Table`]s (the role Pandas plays in the
//! paper's pipelines), dense [`Matrix`] and CSR [`SparseMatrix`]
//! feature containers (the role NumPy/SciPy play), and seeded
//! generators ([`rng`]) used by the synthetic benchmark workloads.
//!
//! Everything here is deterministic given a seed so that experiment
//! binaries regenerate the same tables on every run.
//!
//! ```
//! use willump_data::{Table, Column, Value};
//!
//! # fn main() -> Result<(), willump_data::DataError> {
//! let mut t = Table::new();
//! t.add_column("user_id", Column::from(vec![1i64, 2, 3]))?;
//! t.add_column("score", Column::from(vec![0.5f64, 0.25, 0.75]))?;
//! assert_eq!(t.n_rows(), 3);
//! assert_eq!(t.value(1, "score").unwrap(), Value::Float(0.25));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod column;
mod error;
mod matrix;
pub mod rng;
mod sparse;
pub mod split;
mod table;
pub mod text;
mod value;

pub use column::Column;
pub use error::DataError;
pub use matrix::Matrix;
pub use sparse::{SparseMatrix, SparseRowBuilder};
pub use table::Table;
pub use value::{DataType, Value};

/// A feature container that is either dense or sparse (CSR).
///
/// Text featurization (TF-IDF over n-grams) produces very wide, very
/// sparse outputs, while tabular lookups produce narrow dense outputs;
/// models in `willump-models` accept either through this enum.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureMatrix {
    /// Row-major dense features.
    Dense(Matrix),
    /// Compressed sparse row features.
    Sparse(SparseMatrix),
}

impl FeatureMatrix {
    /// Number of rows (data inputs).
    pub fn n_rows(&self) -> usize {
        match self {
            FeatureMatrix::Dense(m) => m.n_rows(),
            FeatureMatrix::Sparse(m) => m.n_rows(),
        }
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        match self {
            FeatureMatrix::Dense(m) => m.n_cols(),
            FeatureMatrix::Sparse(m) => m.n_cols(),
        }
    }

    /// Dot product of row `row` with a dense weight vector.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds or `w.len() < self.n_cols()`.
    pub fn row_dot(&self, row: usize, w: &[f64]) -> f64 {
        match self {
            FeatureMatrix::Dense(m) => m.row(row).iter().zip(w).map(|(x, wi)| x * wi).sum(),
            FeatureMatrix::Sparse(m) => m.row_dot(row, w),
        }
    }

    /// The `(column, value)` pairs of one row, zeros omitted.
    pub fn row_entries(&self, row: usize) -> Vec<(usize, f64)> {
        match self {
            FeatureMatrix::Dense(m) => m
                .row(row)
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(c, v)| (c, *v))
                .collect(),
            FeatureMatrix::Sparse(m) => m.row_pairs(row),
        }
    }

    /// Convert to a dense matrix (copies for the sparse case).
    pub fn to_dense(&self) -> Matrix {
        match self {
            FeatureMatrix::Dense(m) => m.clone(),
            FeatureMatrix::Sparse(m) => m.to_dense(),
        }
    }

    /// Horizontally concatenate feature matrices with equal row counts.
    ///
    /// The result is sparse if any input is sparse (wide text blocks
    /// dominate), dense otherwise. This is the "feature concatenation"
    /// node at the bottom of every Willump transformation graph.
    ///
    /// # Errors
    /// Returns [`DataError::ShapeMismatch`] if row counts differ or
    /// `parts` is empty.
    pub fn hstack(parts: &[FeatureMatrix]) -> Result<FeatureMatrix, DataError> {
        if parts.is_empty() {
            return Err(DataError::ShapeMismatch {
                context: "hstack of zero feature matrices".into(),
            });
        }
        let n = parts[0].n_rows();
        if parts.iter().any(|p| p.n_rows() != n) {
            return Err(DataError::ShapeMismatch {
                context: format!(
                    "hstack row counts differ: {:?}",
                    parts.iter().map(FeatureMatrix::n_rows).collect::<Vec<_>>()
                ),
            });
        }
        if parts.iter().all(|p| matches!(p, FeatureMatrix::Dense(_))) {
            let mats: Vec<&Matrix> = parts
                .iter()
                .map(|p| match p {
                    FeatureMatrix::Dense(m) => m,
                    FeatureMatrix::Sparse(_) => unreachable!(),
                })
                .collect();
            return Ok(FeatureMatrix::Dense(Matrix::hstack(&mats)?));
        }
        let sparse: Vec<SparseMatrix> = parts
            .iter()
            .map(|p| match p {
                FeatureMatrix::Dense(m) => SparseMatrix::from_dense(m),
                FeatureMatrix::Sparse(m) => m.clone(),
            })
            .collect();
        let refs: Vec<&SparseMatrix> = sparse.iter().collect();
        Ok(FeatureMatrix::Sparse(SparseMatrix::hstack(&refs)?))
    }

    /// Select a subset of rows (in the given order) into a new matrix.
    ///
    /// # Panics
    /// Panics if any index in `rows` is out of bounds.
    pub fn take_rows(&self, rows: &[usize]) -> FeatureMatrix {
        match self {
            FeatureMatrix::Dense(m) => FeatureMatrix::Dense(m.take_rows(rows)),
            FeatureMatrix::Sparse(m) => FeatureMatrix::Sparse(m.take_rows(rows)),
        }
    }
}

impl From<Matrix> for FeatureMatrix {
    fn from(m: Matrix) -> Self {
        FeatureMatrix::Dense(m)
    }
}

impl From<SparseMatrix> for FeatureMatrix {
    fn from(m: SparseMatrix) -> Self {
        FeatureMatrix::Sparse(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hstack_mixed_promotes_to_sparse() {
        let d = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut b = SparseRowBuilder::new(3);
        b.push_row(&[(0, 5.0)]);
        b.push_row(&[(2, 6.0)]);
        let s = b.finish();
        let out = FeatureMatrix::hstack(&[d.into(), s.into()]).unwrap();
        assert!(matches!(out, FeatureMatrix::Sparse(_)));
        assert_eq!(out.n_cols(), 5);
        assert_eq!(out.row_entries(1), vec![(0, 3.0), (1, 4.0), (4, 6.0)]);
    }

    #[test]
    fn hstack_dense_stays_dense() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
        let out = FeatureMatrix::hstack(&[a.into(), b.into()]).unwrap();
        assert!(matches!(out, FeatureMatrix::Dense(_)));
        assert_eq!(out.to_dense().row(0), &[1.0, 3.0]);
    }

    #[test]
    fn hstack_rejects_mismatched_rows() {
        let a = Matrix::from_rows(&[vec![1.0]]);
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(FeatureMatrix::hstack(&[a.into(), b.into()]).is_err());
    }

    #[test]
    fn row_dot_agrees_between_representations() {
        let d = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        let w = [0.5, 1.5, -1.0];
        for r in 0..2 {
            let dd = FeatureMatrix::Dense(d.clone()).row_dot(r, &w);
            let ss = FeatureMatrix::Sparse(s.clone()).row_dot(r, &w);
            assert!((dd - ss).abs() < 1e-12);
        }
    }

    #[test]
    fn take_rows_reorders() {
        let d = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let fm = FeatureMatrix::Dense(d).take_rows(&[2, 0]);
        assert_eq!(fm.to_dense().row(0), &[3.0]);
        assert_eq!(fm.to_dense().row(1), &[1.0]);
    }
}
