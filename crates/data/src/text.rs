//! Synthetic text generation for the text-heavy workloads.
//!
//! The Product, Toxic, and Price benchmarks featurize free text. We
//! generate documents from a synthetic vocabulary with controllable
//! *signal tokens*: tokens whose presence correlates with the positive
//! class. Strongly-signaled documents are the "easy" inputs that let
//! Willump's cascades short-circuit (the curse-word example from the
//! paper's introduction).

use rand::Rng;

use crate::rng::Zipf;

/// A synthetic vocabulary of pronounceable word-like tokens.
#[derive(Debug, Clone)]
pub struct SyntheticVocab {
    words: Vec<String>,
    zipf: Zipf,
}

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pl",
    "qu", "r", "s", "sh", "st", "t", "tr", "v", "w", "z",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "t", "l", "m", "nd", "st", "ck"];

/// Deterministically build the `i`-th synthetic word.
fn make_word(i: usize) -> String {
    let mut word = String::new();
    let mut x = i;
    // Two syllables keeps words distinct up to ~6.5M combinations.
    for _ in 0..2 {
        word.push_str(ONSETS[x % ONSETS.len()]);
        x /= ONSETS.len();
        word.push_str(NUCLEI[x % NUCLEI.len()]);
        x /= NUCLEI.len();
        word.push_str(CODAS[x % CODAS.len()]);
        x /= CODAS.len();
    }
    if x > 0 {
        word.push_str(&x.to_string());
    }
    word
}

impl SyntheticVocab {
    /// A vocabulary of `n` distinct words with Zipfian usage frequency
    /// (natural-language-like token distribution).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> SyntheticVocab {
        let words = (0..n).map(make_word).collect();
        SyntheticVocab {
            words,
            zipf: Zipf::new(n, 1.05),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at rank `i` (rank 0 is most frequent).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn word(&self, i: usize) -> &str {
        &self.words[i]
    }

    /// Sample one word according to the Zipfian usage distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.words[self.zipf.sample(rng)]
    }

    /// Generate a document of `len` words, each independently replaced
    /// by `signal` with probability `signal_prob`.
    pub fn document<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        len: usize,
        signal: Option<&str>,
        signal_prob: f64,
    ) -> String {
        let mut out = String::with_capacity(len * 7);
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            match signal {
                Some(tok) if rng.gen::<f64>() < signal_prob => out.push_str(tok),
                _ => out.push_str(self.sample(rng)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn words_are_distinct() {
        let v = SyntheticVocab::new(5000);
        let mut set = std::collections::HashSet::new();
        for i in 0..v.len() {
            assert!(set.insert(v.word(i).to_string()), "dup word {}", v.word(i));
        }
    }

    #[test]
    fn words_are_nonempty_and_lowercase() {
        let v = SyntheticVocab::new(1000);
        for i in 0..v.len() {
            let w = v.word(i);
            assert!(!w.is_empty());
            assert!(w
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn document_length_and_signal() {
        let v = SyntheticVocab::new(100);
        let mut rng = seeded(2);
        let doc = v.document(&mut rng, 12, Some("zzsignal"), 1.0);
        let toks: Vec<&str> = doc.split(' ').collect();
        assert_eq!(toks.len(), 12);
        assert!(toks.iter().all(|t| *t == "zzsignal"));

        let doc = v.document(&mut rng, 12, Some("zzsignal"), 0.0);
        assert!(!doc.contains("zzsignal"));
    }

    #[test]
    fn sampling_is_zipf_skewed() {
        let v = SyntheticVocab::new(500);
        let mut rng = seeded(8);
        let mut top_hits = 0;
        let trials = 10_000;
        let top: std::collections::HashSet<&str> = (0..10).map(|i| v.word(i)).collect();
        for _ in 0..trials {
            if top.contains(v.sample(&mut rng)) {
                top_hits += 1;
            }
        }
        assert!(top_hits > trials / 10, "top-10 hits {top_hits}");
    }

    #[test]
    fn deterministic_given_seed() {
        let v = SyntheticVocab::new(100);
        let a = v.document(&mut seeded(3), 8, None, 0.0);
        let b = v.document(&mut seeded(3), 8, None, 0.0);
        assert_eq!(a, b);
    }
}
