//! Row-major dense matrices: the feature vectors consumed by models.

use serde::{Deserialize, Serialize};

use crate::DataError;

/// A row-major dense `f64` matrix.
///
/// Rows are data inputs; columns are features. The compiled engine
/// writes feature blocks directly into `Matrix` buffers with no
/// per-value boxing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A `rows` x `cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from explicit rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let cols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must share a length"
        );
        Matrix {
            data: rows.iter().flatten().copied().collect(),
            rows: rows.len(),
            cols,
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`DataError::ShapeMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Result<Matrix, DataError> {
        if data.len() != rows * cols {
            return Err(DataError::ShapeMismatch {
                context: format!(
                    "buffer of {} values cannot form a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build a single-column matrix from a vector.
    pub fn column_vector(v: Vec<f64>) -> Matrix {
        let rows = v.len();
        Matrix {
            data: v,
            rows,
            cols: 1,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    /// Panics if `r >= n_rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    /// Panics if `r >= n_rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set the value at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// The whole buffer in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Copy column `c` out of the matrix.
    ///
    /// # Panics
    /// Panics if `c >= n_cols()`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Per-column means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        if self.rows > 0 {
            for m in &mut means {
                *m /= self.rows as f64;
            }
        }
        means
    }

    /// Per-column mean absolute values (used for linear-model
    /// prediction importances: |coef| x mean |feature|).
    pub fn column_mean_abs(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, v) in means.iter_mut().zip(self.row(r)) {
                *m += v.abs();
            }
        }
        if self.rows > 0 {
            for m in &mut means {
                *m /= self.rows as f64;
            }
        }
        means
    }

    /// Horizontally concatenate matrices with equal row counts.
    ///
    /// # Errors
    /// Returns [`DataError::ShapeMismatch`] on differing row counts or
    /// an empty input.
    pub fn hstack(parts: &[&Matrix]) -> Result<Matrix, DataError> {
        let Some(first) = parts.first() else {
            return Err(DataError::ShapeMismatch {
                context: "hstack of zero matrices".into(),
            });
        };
        let rows = first.rows;
        if parts.iter().any(|p| p.rows != rows) {
            return Err(DataError::ShapeMismatch {
                context: "hstack row counts differ".into(),
            });
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        Ok(out)
    }

    /// Vertically concatenate matrices with equal column counts.
    ///
    /// # Errors
    /// Returns [`DataError::ShapeMismatch`] on differing column counts
    /// or an empty input.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix, DataError> {
        let Some(first) = parts.first() else {
            return Err(DataError::ShapeMismatch {
                context: "vstack of zero matrices".into(),
            });
        };
        let cols = first.cols;
        if parts.iter().any(|p| p.cols != cols) {
            return Err(DataError::ShapeMismatch {
                context: "vstack column counts differ".into(),
            });
        }
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Gather rows by index into a new matrix (indices may repeat).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != n_cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(vec![1.0, 2.0, 3.0], 2, 2).is_err());
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let h = Matrix::hstack(&[&a, &b]).unwrap();
        assert_eq!(h.row(1), &[2.0, 5.0, 6.0]);
        let v = Matrix::vstack(&[&a, &a]).unwrap();
        assert_eq!(v.n_rows(), 4);
        assert!(Matrix::hstack(&[]).is_err());
        let c = Matrix::from_rows(&[vec![9.0]]);
        assert!(Matrix::hstack(&[&a, &c]).is_err());
        assert!(Matrix::vstack(&[&a, &b]).is_err());
    }

    #[test]
    fn means_and_abs_means() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 2.0]]);
        assert_eq!(m.column_means(), vec![2.0, 0.0]);
        assert_eq!(m.column_mean_abs(), vec![2.0, 2.0]);
        assert_eq!(Matrix::zeros(0, 2).column_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn matvec_multiplies() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn take_rows_gathers() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let t = m.take_rows(&[2, 2, 0]);
        assert_eq!(t.as_slice(), &[3.0, 3.0, 1.0]);
    }

    #[test]
    fn set_updates_cell() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 7.0);
        assert_eq!(m.get(0, 1), 7.0);
    }
}
