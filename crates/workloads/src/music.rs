//! The Music benchmark: KKBox music recommendation (WSDM Cup 2018).
//!
//! Predicts whether a user will like a song with a GBDT over five
//! lookup IFVs — the paper's Figure 1 pipeline, and "the
//! classification benchmark with the most IFVs" (§6.4):
//!
//! 1. **user bias stats** (cheap, 2-wide): the user's average rating
//!    behaviour — classifies most pairs on its own,
//! 2. **song bias stats** (cheap, 2-wide),
//! 3. **genre features** (cheap, 2-wide),
//! 4. **user latent factors** (8-wide): needed for the hard pairs
//!    where biases cancel,
//! 5. **song latent factors** (8-wide).
//!
//! Entity popularity in the serving stream is Zipfian while
//! (user, song) *pairs* rarely repeat — exactly the structure that
//! makes feature-level caching beat end-to-end caching in paper
//! Table 2 (92.3 % vs 0.8 % request reduction).

use std::sync::Arc;

use rand::Rng;
use willump::{Pipeline, WillumpError};
use willump_data::rng::{normal, seeded, Zipf};
use willump_data::{Column, Table};
use willump_featurize::StoreJoin;
use willump_graph::{GraphBuilder, Operator};
use willump_models::{GbdtParams, ModelSpec, TreeParams};
use willump_store::{FeatureTable, Key, Store};

use crate::common::{Workload, WorkloadConfig};

const N_USERS: usize = 1_000;
const N_SONGS: usize = 1_500;
const N_GENRES: usize = 12;
const LATENT_DIM: usize = 8;

struct Universe {
    user_latent: Vec<Vec<f64>>,
    song_latent: Vec<Vec<f64>>,
    user_bias: Vec<f64>,
    song_bias: Vec<f64>,
    /// How much a user's taste is driven by latent structure rather
    /// than their overall bias. Predictable users (~70 %) have
    /// eclecticness near 0.1: their pairs are "easy" — classifiable
    /// from biases alone. Eclectic users (~30 %, near 1.8) need the
    /// latent IFVs. This is the identifiable easy/hard mix the paper's
    /// cascades rely on ("many data inputs are 'easy'", §2.2), and it
    /// is *visible to the cheap IFV* via the user_stats table.
    user_eclecticness: Vec<f64>,
    genre_bias: Vec<f64>,
    song_genre: Vec<usize>,
}

fn build_universe<R: Rng>(rng: &mut R) -> Universe {
    let user_latent: Vec<Vec<f64>> = (0..N_USERS)
        .map(|_| (0..LATENT_DIM).map(|_| normal(rng, 0.0, 1.0)).collect())
        .collect();
    let song_latent: Vec<Vec<f64>> = (0..N_SONGS)
        .map(|_| (0..LATENT_DIM).map(|_| normal(rng, 0.0, 1.0)).collect())
        .collect();
    // Biases are bimodal (users/songs are mostly decisive likes or
    // dislikes), matching real interaction data where most pairs are
    // obvious: agreeing signs are far from the decision boundary (no
    // hidden term can flip them — the cascade's safely-kept rows),
    // opposing signs land near zero (correctly escalated).
    let mut bimodal = |scale: f64| -> f64 {
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * (scale + normal(rng, 0.0, 0.25))
    };
    Universe {
        user_bias: (0..N_USERS).map(|_| bimodal(1.2)).collect(),
        song_bias: (0..N_SONGS).map(|_| bimodal(1.2)).collect(),
        user_eclecticness: (0..N_USERS)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    // Predictable users: latent taste is negligible, so
                    // a bias-only model matches the full model on them
                    // (the cascade's "easy" inputs).
                    0.02 + normal(rng, 0.0, 0.005).abs()
                } else {
                    1.8 + normal(rng, 0.0, 0.2)
                }
            })
            .collect(),
        genre_bias: (0..N_GENRES).map(|_| normal(rng, 0.0, 0.5)).collect(),
        song_genre: (0..N_SONGS).map(|_| rng.gen_range(0..N_GENRES)).collect(),
        user_latent,
        song_latent,
    }
}

fn affinity(u: &Universe, user: usize, song: usize) -> f64 {
    // A low-order interaction a depth-5 GBDT can actually learn: the
    // first two latent dimensions interact, the rest contribute
    // axis-aligned taste/quality terms.
    let ul = &u.user_latent[user];
    let sl = &u.song_latent[song];
    let interaction = 0.5 * (ul[0] * sl[0] + ul[1] * sl[1]);
    let direct = 0.4 * ul[2] + 0.4 * sl[2];
    // Biases decide predictable users' pairs (easy); eclectic users'
    // pairs hinge on the latent terms (hard) *and* their bias signal
    // is attenuated, so a bias-only model is correctly uncertain about
    // them rather than confidently wrong. Eclecticness is stored in
    // user_stats, so the cascade's small model can recognize which
    // pairs it can classify and which to escalate.
    let e = u.user_eclecticness[user];
    let bias_weight = 1.0 / (1.0 + 0.45 * e * e);
    let biases = u.user_bias[user] + u.song_bias[song] + u.genre_bias[u.song_genre[song]];
    bias_weight * biases + e * (interaction + direct)
}

fn build_store(u: &Universe, cfg: &WorkloadConfig) -> Result<Store, WillumpError> {
    let err = |e: willump_store::StoreError| WillumpError::Graph(e.to_string());
    // Cheap per-entity stats: bias, a noisy popularity proxy, and (for
    // users) eclecticness — the behavioural statistic a production
    // feature store would precompute from listening history, and the
    // signal that lets the small model recognize escalation-worthy
    // pairs.
    let mut user_stats = FeatureTable::new(3);
    let mut song_stats = FeatureTable::new(2);
    let mut genre_feats = FeatureTable::new(2);
    let mut user_latent = FeatureTable::new(LATENT_DIM);
    let mut song_latent = FeatureTable::new(LATENT_DIM);
    for i in 0..N_USERS {
        user_stats
            .insert(
                Key::Int(i as i64),
                vec![
                    u.user_bias[i],
                    (i % 97) as f64 / 97.0,
                    u.user_eclecticness[i],
                ],
            )
            .map_err(err)?;
        user_latent
            .insert(Key::Int(i as i64), u.user_latent[i].clone())
            .map_err(err)?;
    }
    for i in 0..N_SONGS {
        song_stats
            .insert(
                Key::Int(i as i64),
                vec![u.song_bias[i], (i % 89) as f64 / 89.0],
            )
            .map_err(err)?;
        song_latent
            .insert(Key::Int(i as i64), u.song_latent[i].clone())
            .map_err(err)?;
    }
    for g in 0..N_GENRES {
        genre_feats
            .insert(
                Key::Int(g as i64),
                vec![u.genre_bias[g], g as f64 / N_GENRES as f64],
            )
            .map_err(err)?;
    }
    Ok(Store::remote(
        [
            ("user_stats".to_string(), user_stats),
            ("song_stats".to_string(), song_stats),
            ("genre_features".to_string(), genre_feats),
            ("user_latent".to_string(), user_latent),
            ("song_latent".to_string(), song_latent),
        ],
        cfg.latency(),
    ))
}

fn make_split<R: Rng>(
    rng: &mut R,
    u: &Universe,
    n: usize,
    user_zipf: &Zipf,
    song_zipf: &Zipf,
    seen_pairs: &mut std::collections::HashSet<(u32, u32)>,
) -> (Table, Vec<f64>) {
    let mut users = Vec::with_capacity(n);
    let mut songs = Vec::with_capacity(n);
    let mut genres = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let user = user_zipf.sample(rng);
        // KKBox rows are distinct (user, song) interactions: a user
        // appears for many songs, but the same pair never repeats.
        // Entities being Zipfian while pairs stay unique is what makes
        // feature-level caching effective where end-to-end caching is
        // not (paper Table 2).
        let mut song = song_zipf.sample(rng);
        let mut attempts = 0;
        while seen_pairs.contains(&(user as u32, song as u32)) {
            song = if attempts < 8 {
                song_zipf.sample(rng)
            } else {
                rng.gen_range(0..N_SONGS)
            };
            attempts += 1;
            if attempts > 64 {
                // The heaviest Zipf users can exhaust the catalogue on
                // large splits; accept an occasional repeat pair (real
                // interaction logs have them too) rather than spin.
                break;
            }
        }
        seen_pairs.insert((user as u32, song as u32));
        users.push(user as i64);
        songs.push(song as i64);
        genres.push(u.song_genre[song] as i64);
        let score = affinity(u, user, song) + normal(rng, 0.0, 0.2);
        labels.push(f64::from(score > 0.0));
    }
    let mut t = Table::new();
    t.add_column("user_id", Column::from(users))
        .expect("fresh table");
    t.add_column("song_id", Column::from(songs))
        .expect("fresh table");
    t.add_column("genre_id", Column::from(genres))
        .expect("fresh table");
    (t, labels)
}

/// Generate the Music workload.
///
/// # Errors
/// Propagates construction failures (indicating bugs, not user error).
pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, WillumpError> {
    let mut rng = seeded(cfg.seed ^ 0x4D555349); // "MUSI"
    let universe = build_universe(&mut rng);
    let store = build_store(&universe, cfg)?;

    // Zipfian entity popularity drives cache behaviour: heavy skew
    // (a small head of very active users / very popular songs) is what
    // gives feature-level caching its high hit rates in paper Table 2.
    let user_zipf = Zipf::new(N_USERS, 1.4);
    let song_zipf = Zipf::new(N_SONGS, 1.15);
    let mut seen_pairs = std::collections::HashSet::new();

    let (train, train_y) = make_split(
        &mut rng,
        &universe,
        cfg.n_train,
        &user_zipf,
        &song_zipf,
        &mut seen_pairs,
    );
    let (valid, valid_y) = make_split(
        &mut rng,
        &universe,
        cfg.n_valid,
        &user_zipf,
        &song_zipf,
        &mut seen_pairs,
    );
    let (test, test_y) = make_split(
        &mut rng,
        &universe,
        cfg.n_test,
        &user_zipf,
        &song_zipf,
        &mut seen_pairs,
    );

    let join = |table: &str| -> Result<Operator, WillumpError> {
        Ok(Operator::StoreLookup(Arc::new(
            StoreJoin::new(store.clone(), table).map_err(|e| WillumpError::Graph(e.to_string()))?,
        )))
    };

    let mut b = GraphBuilder::new();
    let user = b.source("user_id");
    let song = b.source("song_id");
    let genre = b.source("genre_id");
    let ustat = b.add("user_stats", join("user_stats")?, [user])?;
    let sstat = b.add("song_stats", join("song_stats")?, [song])?;
    let gfeat = b.add("genre_features", join("genre_features")?, [genre])?;
    let ulat = b.add("user_latent", join("user_latent")?, [user])?;
    let slat = b.add("song_latent", join("song_latent")?, [song])?;
    let graph = Arc::new(b.finish_with_concat("features", [ustat, sstat, gfeat, ulat, slat])?);

    let pipeline = Pipeline::new(
        graph,
        ModelSpec::GbdtClassifier(GbdtParams {
            n_trees: 60,
            learning_rate: 0.15,
            tree: TreeParams {
                max_depth: 5,
                min_samples_leaf: 5,
                ..TreeParams::default()
            },
        }),
    );

    Ok(Workload {
        name: "music",
        pipeline,
        train,
        train_y,
        valid,
        valid_y,
        test,
        test_y,
        store: Some(store),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_graph::{EngineMode, Executor};
    use willump_models::metrics;

    #[test]
    fn generates_and_trains_accurately() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let feats = exec.features_batch(&w.train, None).unwrap();
        let model = w.pipeline.spec().fit(&feats, &w.train_y, 1).unwrap();
        let test_feats = exec.features_batch(&w.test, None).unwrap();
        let acc = metrics::accuracy(&model.predict_scores(&test_feats), &w.test_y);
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn has_five_lookup_ifvs() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        assert_eq!(exec.analysis().generators.len(), 5);
        assert!(w.store.is_some());
    }

    #[test]
    fn entities_repeat_but_pairs_rarely_do() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let users = w.test.column("user_id").unwrap().as_i64_slice().unwrap();
        let songs = w.test.column("song_id").unwrap().as_i64_slice().unwrap();
        let n = users.len() as f64;
        let uniq_users: std::collections::HashSet<i64> = users.iter().copied().collect();
        let uniq_pairs: std::collections::HashSet<(i64, i64)> =
            users.iter().copied().zip(songs.iter().copied()).collect();
        // Users repeat a lot; pairs are all distinct (interaction
        // semantics).
        assert!(
            (uniq_users.len() as f64) < 0.6 * n,
            "{} users",
            uniq_users.len()
        );
        assert_eq!(uniq_pairs.len(), users.len());
    }

    #[test]
    fn remote_tables_charge_latency() {
        let cfg = WorkloadConfig::small().with_remote_tables();
        let w = generate(&cfg).unwrap();
        let store = w.store.clone().unwrap();
        store.stats().reset();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let _ = exec.features_batch(&w.test, None).unwrap();
        // One batched round trip per lookup node.
        assert_eq!(store.stats().round_trips(), 5);
        assert!(store.clock().now_nanos() > 0);
    }
}
