//! The Product benchmark: Lazada product-title quality (CIKM
//! AnalytiCup 2017).
//!
//! Classifies product titles as *concise* or *not concise* with a
//! linear model over three IFVs of sharply different cost:
//!
//! 1. **string stats** (cheap): length, punctuation, repetition — most
//!    spammy titles give themselves away here (the "easy" inputs),
//! 2. **word TF-IDF** (moderate): spam words,
//! 3. **char-trigram TF-IDF** (expensive): obfuscated spam markers
//!    hidden *inside* fabricated compound tokens, which word-level
//!    features cannot see (the "hard" inputs).

use std::sync::Arc;

use rand::Rng;
use willump::{Pipeline, WillumpError};
use willump_data::rng::seeded;
use willump_data::text::SyntheticVocab;
use willump_data::{Column, Table};
use willump_featurize::stringstats::string_stats_batch;
use willump_featurize::{Analyzer, StandardScaler, TfIdfVectorizer, VectorizerConfig};
use willump_graph::{GraphBuilder, Operator};
use willump_models::{LogisticParams, ModelSpec};

use crate::common::{Workload, WorkloadConfig};

/// Marker char-trigram embedded in hard non-concise titles.
const HARD_MARKER: &str = "xqz";
/// Spam words appearing in medium-difficulty non-concise titles.
const SPAM_WORDS: [&str; 4] = ["freebie", "bestest", "cheapo", "superdeal"];

fn make_title<R: Rng>(rng: &mut R, vocab: &SyntheticVocab, concise: bool) -> String {
    if concise {
        // Short clean titles.
        let doc_len = rng.gen_range(3..7);
        vocab.document(rng, doc_len, None, 0.0)
    } else {
        let style: f64 = rng.gen();
        if style < 0.5 {
            // Easy: long, shouty, repetitive.
            let doc_len = rng.gen_range(14..22);
            let mut t = vocab.document(rng, doc_len, None, 0.0);
            t.push_str("!!! SALE SALE SALE !!!");
            t
        } else if style < 0.8 {
            // Medium: normal length, contains spam words.
            let spam = SPAM_WORDS[rng.gen_range(0..SPAM_WORDS.len())];
            let doc_len = rng.gen_range(4..8);
            let mut t = vocab.document(rng, doc_len, Some(spam), 0.35);
            if !t.contains(spam) {
                t.push(' ');
                t.push_str(spam);
            }
            t
        } else {
            // Hard: looks concise, but a fabricated compound token
            // hides the marker trigram. Each compound is unique, so
            // only character n-grams generalize.
            let doc_len = rng.gen_range(3..6);
            let mut t = vocab.document(rng, doc_len, None, 0.0);
            let compound = format!(
                "{}{}{}",
                vocab.word(rng.gen_range(0..vocab.len())),
                HARD_MARKER,
                rng.gen_range(0..100_000)
            );
            t.push(' ');
            t.push_str(&compound);
            t
        }
    }
}

fn make_split<R: Rng>(rng: &mut R, vocab: &SyntheticVocab, n: usize) -> (Vec<String>, Vec<f64>) {
    let mut titles = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        // Positive class = concise (roughly balanced).
        let concise = rng.gen_bool(0.55);
        titles.push(make_title(rng, vocab, concise));
        labels.push(f64::from(concise));
    }
    (titles, labels)
}

fn to_table(titles: Vec<String>) -> Result<Table, WillumpError> {
    let mut t = Table::new();
    t.add_column("title", Column::from(titles))?;
    Ok(t)
}

/// Generate the Product workload.
///
/// # Errors
/// Propagates construction failures (indicating bugs, not user error).
pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, WillumpError> {
    let mut rng = seeded(cfg.seed ^ 0x50524F44); // "PROD"
    let vocab = SyntheticVocab::new(2_000);

    let (train_titles, train_y) = make_split(&mut rng, &vocab, cfg.n_train);
    let (valid_titles, valid_y) = make_split(&mut rng, &vocab, cfg.n_valid);
    let (test_titles, test_y) = make_split(&mut rng, &vocab, cfg.n_test);

    // Fit the vectorizers on the training corpus only.
    let mut word_tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Word,
        ngram_lo: 1,
        ngram_hi: 2,
        min_df: 3,
        max_features: Some(4_000),
        ..VectorizerConfig::default()
    })
    .map_err(|e| WillumpError::Graph(e.to_string()))?;
    word_tfidf.fit(&train_titles);
    let mut char_tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Char,
        ngram_lo: 3,
        ngram_hi: 4,
        min_df: 5,
        max_features: Some(20_000),
        sublinear_tf: true,
        ..VectorizerConfig::default()
    })
    .map_err(|e| WillumpError::Graph(e.to_string()))?;
    char_tfidf.fit(&train_titles);

    // Standardize the raw string statistics (as the sklearn pipelines
    // the benchmark derives from do before a linear model); this also
    // keeps linear prediction importances on comparable scales across
    // IFVs.
    let mut scaler = StandardScaler::new();
    scaler.fit(&string_stats_batch(&train_titles));

    let mut b = GraphBuilder::new();
    let title = b.source("title");
    let raw_stats = b.add("title_stats", Operator::StringStats, [title])?;
    let stats = b.add(
        "title_stats_scaled",
        Operator::Scale(Arc::new(scaler)),
        [raw_stats],
    )?;
    let words = b.add("word_tfidf", Operator::TfIdf(Arc::new(word_tfidf)), [title])?;
    let chars = b.add("char_tfidf", Operator::TfIdf(Arc::new(char_tfidf)), [title])?;
    let graph = Arc::new(b.finish_with_concat("features", [stats, words, chars])?);

    let pipeline = Pipeline::new(
        graph,
        ModelSpec::Logistic(LogisticParams {
            epochs: 60,
            learning_rate: 1.0,
            decay: 0.002,
            ..LogisticParams::default()
        }),
    );

    Ok(Workload {
        name: "product",
        pipeline,
        train: to_table(train_titles)?,
        train_y,
        valid: to_table(valid_titles)?,
        valid_y,
        test: to_table(test_titles)?,
        test_y,
        store: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_graph::{EngineMode, Executor};
    use willump_models::metrics;

    #[test]
    fn generates_and_trains_accurately() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        assert_eq!(w.train.n_rows(), 500);
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let feats = exec.features_batch(&w.train, None).unwrap();
        let model = w.pipeline.spec().fit(&feats, &w.train_y, 1).unwrap();
        let test_feats = exec.features_batch(&w.test, None).unwrap();
        let acc = metrics::accuracy(&model.predict_scores(&test_feats), &w.test_y);
        assert!(acc > 0.9, "test accuracy {acc}");
    }

    #[test]
    fn has_three_ifvs_with_cost_skew() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        assert_eq!(exec.analysis().generators.len(), 3);
        let costs = willump_graph::cost::measure_costs(&exec, &w.train).unwrap();
        // Char tf-idf must dominate string stats by a wide margin.
        assert!(
            costs.per_generator[2] > costs.per_generator[0] * 3.0,
            "costs {:?}",
            costs.per_generator
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&WorkloadConfig::small()).unwrap();
        let b = generate(&WorkloadConfig::small()).unwrap();
        assert_eq!(a.train.value(0, "title"), b.train.value(0, "title"));
        assert_eq!(a.train_y, b.train_y);
    }

    #[test]
    fn hard_titles_contain_marker() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let titles = w.train.column("title").unwrap().as_str_slice().unwrap();
        let with_marker = titles
            .iter()
            .zip(&w.train_y)
            .filter(|(t, y)| t.contains(HARD_MARKER) && **y == 0.0)
            .count();
        assert!(with_marker > 5, "only {with_marker} hard negatives");
    }
}
