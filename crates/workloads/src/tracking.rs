//! The Tracking benchmark: TalkingData ad-tracking fraud detection
//! (Kaggle).
//!
//! Predicts whether a user downloads an app after clicking a mobile
//! ad, with a GBDT over five entity lookups plus a cheap time feature
//! (paper Table 1: remote data lookup, data joins, classification,
//! GBDT). IP popularity is heavily Zipfian and click tuples repeat,
//! reproducing Table 2's cache behaviour (50.1 % feature-level vs
//! 22.1 % end-to-end request reduction). Like the original dataset,
//! many rows share identical feature tuples with near-deterministic
//! labels, which is why the paper excludes Tracking from top-K
//! queries.

use std::sync::Arc;

use rand::Rng;
use willump::{Pipeline, WillumpError};
use willump_data::rng::{normal, seeded, Zipf};
use willump_data::{Column, Table};
use willump_featurize::StoreJoin;
use willump_graph::{GraphBuilder, Operator};
use willump_models::{GbdtParams, ModelSpec, TreeParams};
use willump_store::{FeatureTable, Key, Store};

use crate::common::{Workload, WorkloadConfig};

const N_IPS: usize = 4_000;
const N_APPS: usize = 300;
const N_DEVICES: usize = 100;
const N_OS: usize = 40;
const N_CHANNELS: usize = 60;

struct Universe {
    ip_fraud: Vec<f64>,
    app_quality: Vec<f64>,
    device_score: Vec<f64>,
    os_score: Vec<f64>,
    channel_score: Vec<f64>,
}

fn build_universe<R: Rng>(rng: &mut R) -> Universe {
    Universe {
        ip_fraud: (0..N_IPS).map(|_| normal(rng, 0.0, 1.5)).collect(),
        app_quality: (0..N_APPS).map(|_| normal(rng, 0.0, 1.0)).collect(),
        device_score: (0..N_DEVICES).map(|_| normal(rng, 0.0, 0.4)).collect(),
        os_score: (0..N_OS).map(|_| normal(rng, 0.0, 0.3)).collect(),
        channel_score: (0..N_CHANNELS).map(|_| normal(rng, 0.0, 0.6)).collect(),
    }
}

fn attribution_logit(
    u: &Universe,
    ip: usize,
    app: usize,
    dev: usize,
    os: usize,
    ch: usize,
    hour: f64,
) -> f64 {
    -1.0 - 1.4 * u.ip_fraud[ip]
        + 1.0 * u.app_quality[app]
        + 0.5 * u.device_score[dev]
        + 0.4 * u.os_score[os]
        + 0.8 * u.channel_score[ch]
        + 0.2 * ((hour - 12.0) / 12.0)
}

fn build_store(u: &Universe, cfg: &WorkloadConfig) -> Result<Store, WillumpError> {
    let err = |e: willump_store::StoreError| WillumpError::Graph(e.to_string());
    let mut ip = FeatureTable::new(2);
    let mut app = FeatureTable::new(2);
    let mut dev = FeatureTable::new(1);
    let mut os = FeatureTable::new(1);
    let mut ch = FeatureTable::new(2);
    for i in 0..N_IPS {
        ip.insert(
            Key::Int(i as i64),
            vec![u.ip_fraud[i], (i % 101) as f64 / 101.0],
        )
        .map_err(err)?;
    }
    for i in 0..N_APPS {
        app.insert(
            Key::Int(i as i64),
            vec![u.app_quality[i], (i % 13) as f64 / 13.0],
        )
        .map_err(err)?;
    }
    for i in 0..N_DEVICES {
        dev.insert(Key::Int(i as i64), vec![u.device_score[i]])
            .map_err(err)?;
    }
    for i in 0..N_OS {
        os.insert(Key::Int(i as i64), vec![u.os_score[i]])
            .map_err(err)?;
    }
    for i in 0..N_CHANNELS {
        ch.insert(
            Key::Int(i as i64),
            vec![u.channel_score[i], (i % 7) as f64 / 7.0],
        )
        .map_err(err)?;
    }
    Ok(Store::remote(
        [
            ("ip_features".to_string(), ip),
            ("app_features".to_string(), app),
            ("device_features".to_string(), dev),
            ("os_features".to_string(), os),
            ("channel_features".to_string(), ch),
        ],
        cfg.latency(),
    ))
}

fn make_split<R: Rng>(rng: &mut R, u: &Universe, n: usize) -> (Table, Vec<f64>) {
    // Heavy Zipf on IPs (click farms), lighter on the rest.
    let ip_zipf = Zipf::new(N_IPS, 1.3);
    let app_zipf = Zipf::new(N_APPS, 1.1);
    let mut ips = Vec::with_capacity(n);
    let mut apps = Vec::with_capacity(n);
    let mut devs = Vec::with_capacity(n);
    let mut oss = Vec::with_capacity(n);
    let mut chs = Vec::with_capacity(n);
    let mut hours = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        let ip = ip_zipf.sample(rng);
        let app = app_zipf.sample(rng);
        let dev = rng.gen_range(0..N_DEVICES);
        let os = rng.gen_range(0..N_OS);
        let ch = rng.gen_range(0..N_CHANNELS);
        let hour = rng.gen_range(0..24) as f64;
        // Click bursts: the same tuple repeats 1-4 times, which is
        // what gives end-to-end caching its ~22 % hit rate.
        let repeats = (1 + rng.gen_range(0..4usize).saturating_sub(2))
            .min(n - i)
            .max(1);
        for _ in 0..repeats {
            let logit = attribution_logit(u, ip, app, dev, os, ch, hour) + normal(rng, 0.0, 0.2);
            ips.push(ip as i64);
            apps.push(app as i64);
            devs.push(dev as i64);
            oss.push(os as i64);
            chs.push(ch as i64);
            hours.push(hour);
            labels.push(f64::from(logit > 0.0));
            i += 1;
            if i >= n {
                break;
            }
        }
    }
    let mut t = Table::new();
    t.add_column("ip", Column::from(ips)).expect("fresh table");
    t.add_column("app", Column::from(apps))
        .expect("fresh table");
    t.add_column("device", Column::from(devs))
        .expect("fresh table");
    t.add_column("os", Column::from(oss)).expect("fresh table");
    t.add_column("channel", Column::from(chs))
        .expect("fresh table");
    t.add_column("hour", Column::from(hours))
        .expect("fresh table");
    (t, labels)
}

/// Generate the Tracking workload.
///
/// # Errors
/// Propagates construction failures (indicating bugs, not user error).
pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, WillumpError> {
    let mut rng = seeded(cfg.seed ^ 0x54524143); // "TRAC"
    let universe = build_universe(&mut rng);
    let store = build_store(&universe, cfg)?;

    let (train, train_y) = make_split(&mut rng, &universe, cfg.n_train);
    let (valid, valid_y) = make_split(&mut rng, &universe, cfg.n_valid);
    let (test, test_y) = make_split(&mut rng, &universe, cfg.n_test);

    let join = |table: &str| -> Result<Operator, WillumpError> {
        Ok(Operator::StoreLookup(Arc::new(
            StoreJoin::new(store.clone(), table).map_err(|e| WillumpError::Graph(e.to_string()))?,
        )))
    };

    let mut b = GraphBuilder::new();
    let ip = b.source("ip");
    let app = b.source("app");
    let device = b.source("device");
    let os = b.source("os");
    let channel = b.source("channel");
    let hour = b.source("hour");
    let ip_f = b.add("ip_lookup", join("ip_features")?, [ip])?;
    let app_f = b.add("app_lookup", join("app_features")?, [app])?;
    let dev_f = b.add("device_lookup", join("device_features")?, [device])?;
    let os_f = b.add("os_lookup", join("os_features")?, [os])?;
    let ch_f = b.add("channel_lookup", join("channel_features")?, [channel])?;
    let hour_f = b.add("hour_feature", Operator::NumericColumn, [hour])?;
    let graph =
        Arc::new(b.finish_with_concat("features", [ip_f, app_f, dev_f, os_f, ch_f, hour_f])?);

    let pipeline = Pipeline::new(
        graph,
        ModelSpec::GbdtClassifier(GbdtParams {
            n_trees: 60,
            learning_rate: 0.15,
            tree: TreeParams {
                max_depth: 5,
                min_samples_leaf: 5,
                ..TreeParams::default()
            },
        }),
    );

    Ok(Workload {
        name: "tracking",
        pipeline,
        train,
        train_y,
        valid,
        valid_y,
        test,
        test_y,
        store: Some(store),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_graph::{EngineMode, Executor};
    use willump_models::metrics;

    #[test]
    fn generates_and_trains_accurately() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let feats = exec.features_batch(&w.train, None).unwrap();
        let model = w.pipeline.spec().fit(&feats, &w.train_y, 1).unwrap();
        let test_feats = exec.features_batch(&w.test, None).unwrap();
        let acc = metrics::accuracy(&model.predict_scores(&test_feats), &w.test_y);
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn six_ifvs_five_lookups() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        assert_eq!(exec.analysis().generators.len(), 6);
        let lookups = exec
            .graph()
            .nodes()
            .iter()
            .filter(|n| n.op.is_lookup())
            .count();
        assert_eq!(lookups, 5);
    }

    #[test]
    fn click_tuples_repeat() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let ips = w.test.column("ip").unwrap().as_i64_slice().unwrap();
        let apps = w.test.column("app").unwrap().as_i64_slice().unwrap();
        let hours = w.test.column("hour").unwrap().as_f64_slice().unwrap();
        let mut tuples = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for i in 0..ips.len() {
            if !tuples.insert((ips[i], apps[i], hours[i] as i64)) {
                repeats += 1;
            }
        }
        let frac = repeats as f64 / ips.len() as f64;
        assert!(frac > 0.05, "tuple repeat fraction {frac}");
    }

    #[test]
    fn ips_are_heavily_skewed() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let ips = w.test.column("ip").unwrap().as_i64_slice().unwrap();
        let mut counts = std::collections::HashMap::new();
        for &ip in ips {
            *counts.entry(ip).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max as f64 > ips.len() as f64 * 0.02, "max ip count {max}");
    }
}
