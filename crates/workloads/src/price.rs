//! The Price benchmark: Mercari price suggestion (Kaggle).
//!
//! Predicts log-prices for online sellers with a small MLP (paper
//! Table 1: feature encoding, string processing, TF-IDF, regression,
//! NN). Four IFVs:
//!
//! 1. **numeric block** (cheap): shipping flag and item condition,
//! 2. **brand one-hot** (cheap): the dominant price driver,
//! 3. **category one-hot** (cheap),
//! 4. **name TF-IDF** (expensive): premium/defect wording.

use std::sync::Arc;

use rand::Rng;
use willump::{Pipeline, WillumpError};
use willump_data::rng::{normal, seeded, Zipf};
use willump_data::text::SyntheticVocab;
use willump_data::{Column, Table};
use willump_featurize::{Analyzer, OneHotEncoder, TfIdfVectorizer, VectorizerConfig};
use willump_graph::{GraphBuilder, Operator};
use willump_models::{MlpParams, ModelSpec};

use crate::common::{Workload, WorkloadConfig};

const N_BRANDS: usize = 60;
const N_CATEGORIES: usize = 20;
/// Name tokens that shift price up/down (learnable through TF-IDF).
const PREMIUM_WORDS: [&str; 3] = ["deluxe", "limited", "signature"];
const DEFECT_WORDS: [&str; 3] = ["cracked", "stained", "forparts"];

struct Universe {
    brand_price: Vec<f64>,
    category_mult: Vec<f64>,
}

fn build_universe<R: Rng>(rng: &mut R) -> Universe {
    Universe {
        brand_price: (0..N_BRANDS).map(|_| normal(rng, 3.0, 0.8)).collect(),
        category_mult: (0..N_CATEGORIES).map(|_| normal(rng, 0.0, 0.4)).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn log_price(
    u: &Universe,
    brand: usize,
    category: usize,
    shipping: f64,
    condition: f64,
    premium: bool,
    defect: bool,
    noise: f64,
) -> f64 {
    u.brand_price[brand] + u.category_mult[category] + 0.3 * shipping - 0.1 * condition
        + if premium { 0.5 } else { 0.0 }
        - if defect { 0.7 } else { 0.0 }
        + noise
}

struct SplitData {
    names: Vec<String>,
    brands: Vec<String>,
    categories: Vec<String>,
    shipping: Vec<f64>,
    condition: Vec<f64>,
    targets: Vec<f64>,
}

fn make_split<R: Rng>(
    rng: &mut R,
    u: &Universe,
    vocab: &SyntheticVocab,
    n: usize,
    brand_zipf: &Zipf,
) -> SplitData {
    let mut out = SplitData {
        names: Vec::with_capacity(n),
        brands: Vec::with_capacity(n),
        categories: Vec::with_capacity(n),
        shipping: Vec::with_capacity(n),
        condition: Vec::with_capacity(n),
        targets: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let brand = brand_zipf.sample(rng);
        let category = rng.gen_range(0..N_CATEGORIES);
        let shipping = f64::from(rng.gen_bool(0.4));
        let condition = rng.gen_range(1..=5) as f64;
        let premium = rng.gen_bool(0.15);
        let defect = rng.gen_bool(0.1);
        let doc_len = rng.gen_range(3..8);
        let mut name = vocab.document(rng, doc_len, None, 0.0);
        if premium {
            name.push(' ');
            name.push_str(PREMIUM_WORDS[rng.gen_range(0..PREMIUM_WORDS.len())]);
        }
        if defect {
            name.push(' ');
            name.push_str(DEFECT_WORDS[rng.gen_range(0..DEFECT_WORDS.len())]);
        }
        out.targets.push(log_price(
            u,
            brand,
            category,
            shipping,
            condition,
            premium,
            defect,
            normal(rng, 0.0, 0.1),
        ));
        out.names.push(name);
        out.brands.push(format!("brand_{brand}"));
        out.categories.push(format!("cat_{category}"));
        out.shipping.push(shipping);
        out.condition.push(condition);
    }
    out
}

fn to_table(s: &SplitData) -> Result<Table, WillumpError> {
    let mut t = Table::new();
    t.add_column("name", Column::from(s.names.clone()))?;
    t.add_column("brand", Column::from(s.brands.clone()))?;
    t.add_column("category", Column::from(s.categories.clone()))?;
    t.add_column("shipping", Column::from(s.shipping.clone()))?;
    t.add_column("condition", Column::from(s.condition.clone()))?;
    Ok(t)
}

/// Generate the Price workload.
///
/// # Errors
/// Propagates construction failures (indicating bugs, not user error).
pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, WillumpError> {
    let mut rng = seeded(cfg.seed ^ 0x50524943); // "PRIC"
    let universe = build_universe(&mut rng);
    let vocab = SyntheticVocab::new(2_500);
    let brand_zipf = Zipf::new(N_BRANDS, 1.0);

    let train_s = make_split(&mut rng, &universe, &vocab, cfg.n_train, &brand_zipf);
    let valid_s = make_split(&mut rng, &universe, &vocab, cfg.n_valid, &brand_zipf);
    let test_s = make_split(&mut rng, &universe, &vocab, cfg.n_test, &brand_zipf);

    let mut name_tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Word,
        ngram_lo: 1,
        ngram_hi: 2,
        min_df: 3,
        max_features: Some(8_000),
        ..VectorizerConfig::default()
    })
    .map_err(|e| WillumpError::Graph(e.to_string()))?;
    name_tfidf.fit(&train_s.names);
    let mut brand_onehot = OneHotEncoder::new();
    brand_onehot.fit(&train_s.brands);
    let mut cat_onehot = OneHotEncoder::new();
    cat_onehot.fit(&train_s.categories);

    let mut b = GraphBuilder::new();
    let name = b.source("name");
    let brand = b.source("brand");
    let category = b.source("category");
    let shipping = b.source("shipping");
    let condition = b.source("condition");
    let ship_f = b.add("shipping_feature", Operator::NumericColumn, [shipping])?;
    let cond_f = b.add("condition_feature", Operator::NumericColumn, [condition])?;
    let brand_f = b.add(
        "brand_onehot",
        Operator::OneHot(Arc::new(brand_onehot)),
        [brand],
    )?;
    let cat_f = b.add(
        "category_onehot",
        Operator::OneHot(Arc::new(cat_onehot)),
        [category],
    )?;
    let name_f = b.add("name_tfidf", Operator::TfIdf(Arc::new(name_tfidf)), [name])?;
    let graph =
        Arc::new(b.finish_with_concat("features", [ship_f, cond_f, brand_f, cat_f, name_f])?);

    let pipeline = Pipeline::new(
        graph,
        ModelSpec::MlpRegressor(MlpParams {
            hidden: 32,
            epochs: 25,
            learning_rate: 0.02,
            ..MlpParams::default()
        }),
    );

    Ok(Workload {
        name: "price",
        pipeline,
        train: to_table(&train_s)?,
        train_y: train_s.targets,
        valid: to_table(&valid_s)?,
        valid_y: valid_s.targets,
        test: to_table(&test_s)?,
        test_y: test_s.targets,
        store: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_graph::{EngineMode, Executor};
    use willump_models::metrics;

    #[test]
    fn generates_and_trains_with_low_error() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let feats = exec.features_batch(&w.train, None).unwrap();
        let model = w.pipeline.spec().fit(&feats, &w.train_y, 1).unwrap();
        let test_feats = exec.features_batch(&w.test, None).unwrap();
        let mse = metrics::mse(&model.predict_scores(&test_feats), &w.test_y);
        // Target variance is ~1.0 (brand spread 0.8^2 + rest); an MLP
        // that learned brand/category/text should be far below that.
        assert!(mse < 0.25, "test mse {mse}");
    }

    #[test]
    fn five_ifvs() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        assert_eq!(exec.analysis().generators.len(), 5);
        assert!(w.store.is_none());
    }

    #[test]
    fn name_tfidf_is_most_expensive() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let costs = willump_graph::cost::measure_costs(&exec, &w.train).unwrap();
        let c = &costs.per_generator;
        let max_other = c[..4].iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(c[4] > max_other, "costs {c:?}");
    }
}
