//! Shared workload types.

use willump::Pipeline;
use willump_data::Table;
use willump_store::{LatencyModel, Store};

/// Configuration for workload generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Training rows.
    pub n_train: usize,
    /// Validation rows.
    pub n_valid: usize,
    /// Test (serving) rows.
    pub n_test: usize,
    /// Seed for all generation and training randomness.
    pub seed: u64,
    /// Latency model for data tables (lookup workloads only); `None`
    /// means local zero-latency tables.
    pub remote: Option<LatencyModel>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_train: 2_000,
            n_valid: 1_000,
            n_test: 1_000,
            seed: 42,
            remote: None,
        }
    }
}

impl WorkloadConfig {
    /// A smaller configuration for fast unit tests.
    pub fn small() -> WorkloadConfig {
        WorkloadConfig {
            n_train: 500,
            n_valid: 300,
            n_test: 300,
            ..WorkloadConfig::default()
        }
    }

    /// The latency model in effect (local when `remote` is `None`).
    pub fn latency(&self) -> LatencyModel {
        self.remote.unwrap_or_else(LatencyModel::local)
    }

    /// The paper's remote setting: ~1 ms round trips to a same-
    /// datacenter Redis, charged to a virtual clock.
    pub fn with_remote_tables(mut self) -> WorkloadConfig {
        self.remote = Some(LatencyModel::virtual_network(1_000_000, 2_000));
        self
    }
}

/// A generated benchmark workload: pipeline + data splits (+ store for
/// the lookup workloads).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload display name.
    pub name: &'static str,
    /// The inference pipeline (graph + model spec).
    pub pipeline: Pipeline,
    /// Training inputs.
    pub train: Table,
    /// Training labels/targets.
    pub train_y: Vec<f64>,
    /// Validation inputs (threshold selection).
    pub valid: Table,
    /// Validation labels/targets.
    pub valid_y: Vec<f64>,
    /// Test/serving inputs.
    pub test: Table,
    /// Test labels/targets.
    pub test_y: Vec<f64>,
    /// The feature store backing lookup nodes, if any (shared with the
    /// pipeline's `StoreLookup` operators so its counters observe all
    /// requests).
    pub store: Option<Store>,
}

impl Workload {
    /// The pipeline's raw source column names, in graph order — the
    /// key columns an end-to-end prediction cache uses (see
    /// `willump::ServingPlan::with_e2e_cache`).
    pub fn source_columns(&self) -> Vec<String> {
        self.pipeline
            .graph()
            .source_columns()
            .into_iter()
            .map(str::to_string)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_store::LatencyMode;

    #[test]
    fn config_defaults_and_remote() {
        let c = WorkloadConfig::default();
        assert!(c.remote.is_none());
        assert_eq!(c.latency().mode, LatencyMode::Local);
        let r = c.with_remote_tables();
        assert_eq!(r.latency().mode, LatencyMode::Virtual);
        assert_eq!(r.latency().round_trip_nanos, 1_000_000);
    }
}
