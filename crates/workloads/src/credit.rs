//! The Credit benchmark: Home Credit default risk (Kaggle).
//!
//! Predicts a client's default *probability* as a regression target
//! with a GBDT (paper Table 1: remote data lookup, data joins,
//! regression, GBDT). Four IFVs:
//!
//! 1. **application numerics** (cheap, computed from the raw input):
//!    income, credit amount, annuity ratio,
//! 2. **bureau lookup**: external credit-history aggregates,
//! 3. **previous-applications lookup**,
//! 4. **installments lookup**: repayment-behaviour aggregates.

use std::sync::Arc;

use rand::Rng;
use willump::{Pipeline, WillumpError};
use willump_data::rng::{normal, seeded, Zipf};
use willump_data::{Column, Table};
use willump_featurize::StoreJoin;
use willump_graph::{GraphBuilder, Operator};
use willump_models::{GbdtParams, ModelSpec, TreeParams};
use willump_store::{FeatureTable, Key, Store};

use crate::common::{Workload, WorkloadConfig};

const N_CLIENTS: usize = 5_000;

struct Universe {
    bureau: Vec<[f64; 4]>,
    prev_apps: Vec<[f64; 3]>,
    installments: Vec<[f64; 3]>,
}

fn build_universe<R: Rng>(rng: &mut R) -> Universe {
    Universe {
        bureau: (0..N_CLIENTS)
            .map(|_| {
                [
                    normal(rng, 2.0, 1.5).max(0.0),        // past credit count
                    normal(rng, 0.2, 0.2).clamp(0.0, 1.0), // overdue ratio
                    normal(rng, 0.5, 0.3).max(0.0),        // debt ratio
                    normal(rng, 0.0, 1.0),                 // bureau score
                ]
            })
            .collect(),
        prev_apps: (0..N_CLIENTS)
            .map(|_| {
                [
                    normal(rng, 1.5, 1.0).max(0.0),         // previous applications
                    normal(rng, 0.3, 0.25).clamp(0.0, 1.0), // refusal ratio
                    normal(rng, 0.0, 1.0),                  // prev score
                ]
            })
            .collect(),
        installments: (0..N_CLIENTS)
            .map(|_| {
                [
                    normal(rng, 0.1, 0.1).clamp(0.0, 1.0),  // late ratio
                    normal(rng, 0.95, 0.1).clamp(0.0, 1.2), // payment ratio
                    normal(rng, 0.0, 1.0),                  // installment score
                ]
            })
            .collect(),
    }
}

/// The "true" default probability combines application numerics
/// (dominant, cheap) with lookup aggregates (corrections).
fn default_probability(
    income: f64,
    credit: f64,
    annuity_ratio: f64,
    bureau: &[f64; 4],
    prev: &[f64; 3],
    inst: &[f64; 3],
) -> f64 {
    let x = -1.2
        + 1.6 * annuity_ratio
        + 0.5 * (credit / (income + 1.0)).min(3.0)
        + 0.8 * bureau[1]
        + 0.3 * bureau[2]
        - 0.25 * bureau[3]
        + 0.4 * prev[1]
        - 0.15 * prev[2]
        + 1.0 * inst[0]
        - 0.3 * (inst[1] - 1.0);
    1.0 / (1.0 + (-x).exp())
}

fn build_store(u: &Universe, cfg: &WorkloadConfig) -> Result<Store, WillumpError> {
    let err = |e: willump_store::StoreError| WillumpError::Graph(e.to_string());
    let mut bureau = FeatureTable::new(4);
    let mut prev = FeatureTable::new(3);
    let mut inst = FeatureTable::new(3);
    for i in 0..N_CLIENTS {
        bureau
            .insert(Key::Int(i as i64), u.bureau[i].to_vec())
            .map_err(err)?;
        prev.insert(Key::Int(i as i64), u.prev_apps[i].to_vec())
            .map_err(err)?;
        inst.insert(Key::Int(i as i64), u.installments[i].to_vec())
            .map_err(err)?;
    }
    Ok(Store::remote(
        [
            ("bureau".to_string(), bureau),
            ("previous_applications".to_string(), prev),
            ("installments".to_string(), inst),
        ],
        cfg.latency(),
    ))
}

fn make_split<R: Rng>(rng: &mut R, u: &Universe, n: usize, zipf: &Zipf) -> (Table, Vec<f64>) {
    let mut ids = Vec::with_capacity(n);
    let mut incomes = Vec::with_capacity(n);
    let mut credits = Vec::with_capacity(n);
    let mut annuities = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let id = zipf.sample(rng);
        let income = normal(rng, 50.0, 20.0).max(5.0);
        let credit = normal(rng, 100.0, 50.0).max(10.0);
        let annuity_ratio = normal(rng, 0.3, 0.2).clamp(0.01, 1.5);
        let p = default_probability(
            income,
            credit,
            annuity_ratio,
            &u.bureau[id],
            &u.prev_apps[id],
            &u.installments[id],
        );
        ids.push(id as i64);
        incomes.push(income);
        credits.push(credit);
        annuities.push(annuity_ratio);
        targets.push((p + normal(rng, 0.0, 0.02)).clamp(0.0, 1.0));
    }
    let mut t = Table::new();
    t.add_column("client_id", Column::from(ids))
        .expect("fresh table");
    t.add_column("income", Column::from(incomes))
        .expect("fresh table");
    t.add_column("credit_amount", Column::from(credits))
        .expect("fresh table");
    t.add_column("annuity_ratio", Column::from(annuities))
        .expect("fresh table");
    (t, targets)
}

/// Generate the Credit workload.
///
/// # Errors
/// Propagates construction failures (indicating bugs, not user error).
pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, WillumpError> {
    let mut rng = seeded(cfg.seed ^ 0x43524544); // "CRED"
    let universe = build_universe(&mut rng);
    let store = build_store(&universe, cfg)?;
    let zipf = Zipf::new(N_CLIENTS, 0.9);

    let (train, train_y) = make_split(&mut rng, &universe, cfg.n_train, &zipf);
    let (valid, valid_y) = make_split(&mut rng, &universe, cfg.n_valid, &zipf);
    let (test, test_y) = make_split(&mut rng, &universe, cfg.n_test, &zipf);

    let join = |table: &str| -> Result<Operator, WillumpError> {
        Ok(Operator::StoreLookup(Arc::new(
            StoreJoin::new(store.clone(), table).map_err(|e| WillumpError::Graph(e.to_string()))?,
        )))
    };

    let mut b = GraphBuilder::new();
    let client = b.source("client_id");
    let income = b.source("income");
    let credit = b.source("credit_amount");
    let annuity = b.source("annuity_ratio");
    let inc_f = b.add("income_feature", Operator::NumericColumn, [income])?;
    let cred_f = b.add("credit_feature", Operator::NumericColumn, [credit])?;
    let ann_f = b.add("annuity_feature", Operator::NumericColumn, [annuity])?;
    let bureau = b.add("bureau_lookup", join("bureau")?, [client])?;
    let prev = b.add("prev_apps_lookup", join("previous_applications")?, [client])?;
    let inst = b.add("installments_lookup", join("installments")?, [client])?;
    let graph =
        Arc::new(b.finish_with_concat("features", [inc_f, cred_f, ann_f, bureau, prev, inst])?);

    let pipeline = Pipeline::new(
        graph,
        ModelSpec::GbdtRegressor(GbdtParams {
            n_trees: 80,
            learning_rate: 0.12,
            tree: TreeParams {
                max_depth: 5,
                min_samples_leaf: 5,
                ..TreeParams::default()
            },
        }),
    );

    Ok(Workload {
        name: "credit",
        pipeline,
        train,
        train_y,
        valid,
        valid_y,
        test,
        test_y,
        store: Some(store),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_graph::{EngineMode, Executor};
    use willump_models::metrics;

    #[test]
    fn generates_and_trains_with_low_error() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let feats = exec.features_batch(&w.train, None).unwrap();
        let model = w.pipeline.spec().fit(&feats, &w.train_y, 1).unwrap();
        let test_feats = exec.features_batch(&w.test, None).unwrap();
        let m = metrics::mse(&model.predict_scores(&test_feats), &w.test_y);
        // Targets are probabilities; variance is ~0.04, so MSE far
        // below that means real signal was learned.
        assert!(m < 0.02, "test mse {m}");
    }

    #[test]
    fn six_ifvs_three_lookups() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        assert_eq!(exec.analysis().generators.len(), 6);
        let lookups = exec
            .graph()
            .nodes()
            .iter()
            .filter(|n| n.op.is_lookup())
            .count();
        assert_eq!(lookups, 3);
    }

    #[test]
    fn targets_are_probabilities() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        assert!(w.train_y.iter().all(|p| (0.0..=1.0).contains(p)));
        let mean = w.train_y.iter().sum::<f64>() / w.train_y.len() as f64;
        assert!(mean > 0.1 && mean < 0.9, "mean target {mean}");
    }
}
