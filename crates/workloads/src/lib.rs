//! # willump-workloads
//!
//! The six benchmark workloads of the Willump paper (Table 1),
//! rebuilt as seeded synthetic generators with matched statistical
//! structure (see DESIGN.md's substitution table):
//!
//! | Workload  | Feature operators                        | Task           | Model  |
//! |-----------|------------------------------------------|----------------|--------|
//! | Product   | string stats, n-grams, TF-IDF            | classification | linear |
//! | Music     | remote lookups, joins                    | classification | GBDT   |
//! | Toxic     | string stats, n-grams, TF-IDF            | classification | linear |
//! | Credit    | remote lookups, joins                    | regression     | GBDT   |
//! | Price     | feature encoding, string proc., TF-IDF   | regression     | MLP    |
//! | Tracking  | remote lookups, joins                    | classification | GBDT   |
//!
//! Plus a seventh, *stateful streaming* workload beyond Table 1:
//!
//! | Workload    | Feature operators                      | Task           | Model  |
//! |-------------|----------------------------------------|----------------|--------|
//! | Clickstream | remote lookups + live event folds      | classification | GBDT   |
//!
//! Clickstream pairs the serving pipeline with a
//! [`clickstream::ClickstreamFolder`] that folds arriving click
//! events back into the feature store's tables while serving reads
//! them — the fraud-detection shape where entity state updates
//! continuously under concurrent write load.
//!
//! Each generator controls the statistics that Willump's
//! optimizations exploit: the easy/hard input mix (cascades), the
//! skew of feature-computation cost across IFVs (efficient-IFV
//! selection), Zipfian entity popularity (feature-level caching), and
//! score concentration (top-K filtering).

#![warn(missing_docs)]

pub mod clickstream;
mod common;
pub mod credit;
pub mod music;
pub mod price;
pub mod product;
pub mod toxic;
pub mod tracking;

pub use common::{Workload, WorkloadConfig};

/// The benchmark workloads by name, matching the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// CIKM AnalytiCup 2017 Lazada product-title quality (linear).
    Product,
    /// WSDM Cup 2018 KKBox music recommendation (GBDT).
    Music,
    /// Kaggle Jigsaw toxic-comment classification (linear).
    Toxic,
    /// Kaggle Home Credit default risk (GBDT regression).
    Credit,
    /// Kaggle Mercari price suggestion (MLP regression).
    Price,
    /// Kaggle TalkingData ad-tracking fraud detection (GBDT).
    Tracking,
    /// Stateful streaming clickstream fraud detection: live event
    /// folds into the feature store while serving (GBDT).
    Clickstream,
}

impl WorkloadKind {
    /// All workloads: the six Table 1 benchmarks in paper order, then
    /// the streaming Clickstream workload.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Product,
        WorkloadKind::Music,
        WorkloadKind::Toxic,
        WorkloadKind::Credit,
        WorkloadKind::Price,
        WorkloadKind::Tracking,
        WorkloadKind::Clickstream,
    ];

    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Product => "product",
            WorkloadKind::Music => "music",
            WorkloadKind::Toxic => "toxic",
            WorkloadKind::Credit => "credit",
            WorkloadKind::Price => "price",
            WorkloadKind::Tracking => "tracking",
            WorkloadKind::Clickstream => "clickstream",
        }
    }

    /// Whether the workload is binary classification.
    pub fn is_classification(self) -> bool {
        matches!(
            self,
            WorkloadKind::Product
                | WorkloadKind::Music
                | WorkloadKind::Toxic
                | WorkloadKind::Tracking
                | WorkloadKind::Clickstream
        )
    }

    /// Whether the workload queries external data tables.
    pub fn uses_store(self) -> bool {
        matches!(
            self,
            WorkloadKind::Music
                | WorkloadKind::Credit
                | WorkloadKind::Tracking
                | WorkloadKind::Clickstream
        )
    }

    /// Generate the workload with the given configuration.
    ///
    /// # Errors
    /// Propagates generator failures (these indicate bugs rather than
    /// user error).
    pub fn generate(self, cfg: &WorkloadConfig) -> Result<Workload, willump::WillumpError> {
        match self {
            WorkloadKind::Product => product::generate(cfg),
            WorkloadKind::Music => music::generate(cfg),
            WorkloadKind::Toxic => toxic::generate(cfg),
            WorkloadKind::Credit => credit::generate(cfg),
            WorkloadKind::Price => price::generate(cfg),
            WorkloadKind::Tracking => tracking::generate(cfg),
            WorkloadKind::Clickstream => clickstream::generate(cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_metadata() {
        assert_eq!(WorkloadKind::ALL.len(), 7);
        assert!(WorkloadKind::Music.uses_store());
        assert!(!WorkloadKind::Toxic.uses_store());
        assert!(WorkloadKind::Product.is_classification());
        assert!(!WorkloadKind::Price.is_classification());
        assert_eq!(WorkloadKind::Tracking.name(), "tracking");
        assert_eq!(WorkloadKind::Clickstream.name(), "clickstream");
        assert!(WorkloadKind::Clickstream.uses_store());
        assert!(WorkloadKind::Clickstream.is_classification());
    }
}
