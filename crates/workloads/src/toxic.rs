//! The Toxic benchmark: Jigsaw toxic-comment classification (Kaggle).
//!
//! Classifies synthetic talk-page comments as toxic or not with a
//! linear model. Mirrors the paper's motivating example (§1): "we can
//! use the presence of curse words to quickly classify some data
//! inputs as toxic, but we may need to compute more expensive TF-IDF
//! and word embedding features to classify others."
//!
//! IFVs, cheapest to most expensive:
//!
//! 1. **string stats**: shouting (caps/exclamations) correlates with
//!    easy toxic comments,
//! 2. **word TF-IDF**: overt synthetic curse tokens,
//! 3. **char n-gram TF-IDF**: obfuscated insults (`v3nom`-style
//!    leet variants) that only character n-grams generalize over.

use std::sync::Arc;

use rand::Rng;
use willump::{Pipeline, WillumpError};
use willump_data::rng::seeded;
use willump_data::text::SyntheticVocab;
use willump_data::{Column, Table};
use willump_featurize::stringstats::string_stats_batch;
use willump_featurize::{Analyzer, StandardScaler, TfIdfVectorizer, VectorizerConfig};
use willump_graph::{GraphBuilder, Operator};
use willump_models::{LogisticParams, ModelSpec};

use crate::common::{Workload, WorkloadConfig};

/// Overt synthetic curse tokens (easy toxic signal).
const CURSES: [&str; 4] = ["blargh", "snarfle", "grubbish", "zoquack"];
/// Obfuscated-insult stem; hard toxic comments embed it with random
/// decorations so only char n-grams catch it.
const OBFUSCATED_STEM: &str = "v3nom";

fn make_comment<R: Rng>(rng: &mut R, vocab: &SyntheticVocab, toxic: bool) -> String {
    if !toxic {
        let doc_len = rng.gen_range(6..20);
        vocab.document(rng, doc_len, None, 0.0)
    } else {
        let style: f64 = rng.gen();
        if style < 0.45 {
            // Easy: shouty, curse-laden.
            let curse = CURSES[rng.gen_range(0..CURSES.len())];
            let doc_len = rng.gen_range(4..9);
            let mut t = vocab.document(rng, doc_len, Some(curse), 0.4);
            if !t.contains(curse) {
                t.push(' ');
                t.push_str(curse);
            }
            t.push_str(" !!!");
            t.make_ascii_uppercase();
            t
        } else if style < 0.75 {
            // Medium: calm text with a couple of curse tokens.
            let doc_len = rng.gen_range(8..14);
            let mut t = vocab.document(rng, doc_len, None, 0.0);
            for _ in 0..2 {
                let curse = CURSES[rng.gen_range(0..CURSES.len())];
                t.push(' ');
                t.push_str(curse);
            }
            t
        } else {
            // Hard: obfuscated insults embedded in unique tokens.
            let doc_len = rng.gen_range(8..14);
            let mut t = vocab.document(rng, doc_len, None, 0.0);
            for _ in 0..2 {
                let deco = format!(
                    "{}{}{}",
                    "x".repeat(rng.gen_range(0..3)),
                    OBFUSCATED_STEM,
                    rng.gen_range(0..100_000)
                );
                t.push(' ');
                t.push_str(&deco);
            }
            t
        }
    }
}

fn make_split<R: Rng>(rng: &mut R, vocab: &SyntheticVocab, n: usize) -> (Vec<String>, Vec<f64>) {
    let mut docs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        // ~25 % toxic: imbalanced like the Jigsaw data, but learnable
        // at our sample sizes.
        let toxic = rng.gen_bool(0.25);
        docs.push(make_comment(rng, vocab, toxic));
        labels.push(f64::from(toxic));
    }
    (docs, labels)
}

fn to_table(docs: Vec<String>) -> Result<Table, WillumpError> {
    let mut t = Table::new();
    t.add_column("comment", Column::from(docs))?;
    Ok(t)
}

/// Generate the Toxic workload.
///
/// # Errors
/// Propagates construction failures (indicating bugs, not user error).
pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, WillumpError> {
    let mut rng = seeded(cfg.seed ^ 0x544F5849); // "TOXI"
    let vocab = SyntheticVocab::new(3_000);

    let (train_docs, train_y) = make_split(&mut rng, &vocab, cfg.n_train);
    let (valid_docs, valid_y) = make_split(&mut rng, &vocab, cfg.n_valid);
    let (test_docs, test_y) = make_split(&mut rng, &vocab, cfg.n_test);

    let mut word_tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Word,
        ngram_lo: 1,
        ngram_hi: 1,
        min_df: 3,
        max_features: Some(5_000),
        ..VectorizerConfig::default()
    })
    .map_err(|e| WillumpError::Graph(e.to_string()))?;
    word_tfidf.fit(&train_docs);
    let mut char_tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Char,
        ngram_lo: 3,
        ngram_hi: 5,
        min_df: 5,
        max_features: Some(30_000),
        sublinear_tf: true,
        ..VectorizerConfig::default()
    })
    .map_err(|e| WillumpError::Graph(e.to_string()))?;
    char_tfidf.fit(&train_docs);

    // Standardize the raw string statistics (as the sklearn pipelines
    // the benchmark derives from do before a linear model); this also
    // keeps linear prediction importances on comparable scales across
    // IFVs.
    let mut scaler = StandardScaler::new();
    scaler.fit(&string_stats_batch(&train_docs));

    let mut b = GraphBuilder::new();
    let comment = b.source("comment");
    let raw_stats = b.add("comment_stats", Operator::StringStats, [comment])?;
    let stats = b.add(
        "comment_stats_scaled",
        Operator::Scale(Arc::new(scaler)),
        [raw_stats],
    )?;
    let words = b.add(
        "word_tfidf",
        Operator::TfIdf(Arc::new(word_tfidf)),
        [comment],
    )?;
    let chars = b.add(
        "char_tfidf",
        Operator::TfIdf(Arc::new(char_tfidf)),
        [comment],
    )?;
    let graph = Arc::new(b.finish_with_concat("features", [stats, words, chars])?);

    let pipeline = Pipeline::new(
        graph,
        ModelSpec::Logistic(LogisticParams {
            epochs: 80,
            learning_rate: 1.5,
            decay: 0.002,
            ..LogisticParams::default()
        }),
    );

    Ok(Workload {
        name: "toxic",
        pipeline,
        train: to_table(train_docs)?,
        train_y,
        valid: to_table(valid_docs)?,
        valid_y,
        test: to_table(test_docs)?,
        test_y,
        store: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_graph::{EngineMode, Executor};
    use willump_models::metrics;

    #[test]
    fn generates_and_trains_accurately() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let feats = exec.features_batch(&w.train, None).unwrap();
        let model = w.pipeline.spec().fit(&feats, &w.train_y, 1).unwrap();
        let test_feats = exec.features_batch(&w.test, None).unwrap();
        let acc = metrics::accuracy(&model.predict_scores(&test_feats), &w.test_y);
        // The small test config trains on only 500 rows; the default
        // config reaches well past this (checked in integration tests).
        assert!(acc > 0.88, "test accuracy {acc}");
    }

    #[test]
    fn class_balance_is_imbalanced() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let pos = w.train_y.iter().sum::<f64>() / w.train_y.len() as f64;
        assert!(pos > 0.1 && pos < 0.4, "positive rate {pos}");
    }

    #[test]
    fn char_tfidf_is_most_expensive() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let costs = willump_graph::cost::measure_costs(&exec, &w.train).unwrap();
        let c = &costs.per_generator;
        assert!(c[2] > c[0], "costs {c:?}");
        assert!(c[2] > c[1], "costs {c:?}");
    }
}
