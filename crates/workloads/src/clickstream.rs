//! The Clickstream workload: streaming fraud detection over a live
//! feature store.
//!
//! The six Table 1 workloads serve *static* feature tables. Real
//! fraud pipelines (the paper's Tracking setting in production) fold
//! each arriving click back into the entity state the next prediction
//! reads: per-user click counts and recency update continuously while
//! serving traffic queries the same tables. This workload reproduces
//! that stateful-streaming shape:
//!
//! - **Serving side**: a GBDT classifier over two remote lookups
//!   (per-user and per-page feature rows) plus a cheap time feature —
//!   the same lookup/join/classify structure as Tracking, served
//!   through a `ServingPlan` like the other workloads.
//! - **Ingestion side**: a [`ClickstreamFolder`] consumes
//!   [`ClickEvent`]s and folds each into the store's `click_users`
//!   row through [`willump_store::Store::update_row`] —
//!   read-modify-write under the table lock, so concurrent folders
//!   never lose clicks — while tracking the hot-entity working set in
//!   a shared [`LruCache`] (Zipf-skewed users, so the cache hit rate
//!   measures the skew the paper's caching optimizations exploit).
//!
//! `table11` drives both sides at once open-loop and watches the
//! runtime through the `willump-serve` monitor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::Rng;
use willump::{Pipeline, WillumpError};
use willump_data::rng::{normal, seeded, Zipf};
use willump_data::{Column, Table};
use willump_featurize::StoreJoin;
use willump_graph::{GraphBuilder, Operator};
use willump_models::{GbdtParams, ModelSpec, TreeParams};
use willump_store::{FeatureTable, Key, LruCache, Store, StoreError};

use crate::common::{Workload, WorkloadConfig};

const N_USERS: usize = 1_500;
const N_PAGES: usize = 300;

/// `click_users` rows: `[fraud_propensity, clicks, recency]`.
const USER_DIM: usize = 3;
/// `click_pages` rows: `[page_risk, popularity]`.
const PAGE_DIM: usize = 2;

struct Universe {
    user_fraud: Vec<f64>,
    page_risk: Vec<f64>,
}

fn build_universe<R: Rng>(rng: &mut R) -> Universe {
    Universe {
        user_fraud: (0..N_USERS).map(|_| normal(rng, 0.0, 1.2)).collect(),
        page_risk: (0..N_PAGES).map(|_| normal(rng, 0.0, 0.8)).collect(),
    }
}

fn fraud_logit(u: &Universe, user: usize, page: usize, hour: f64) -> f64 {
    -0.5 + 1.8 * u.user_fraud[user] + 1.1 * u.page_risk[page] + 0.3 * ((hour - 12.0) / 12.0)
}

fn build_store(u: &Universe, cfg: &WorkloadConfig) -> Result<Store, WillumpError> {
    let err = |e: StoreError| WillumpError::Graph(e.to_string());
    let mut users = FeatureTable::new(USER_DIM);
    let mut pages = FeatureTable::new(PAGE_DIM);
    for i in 0..N_USERS {
        users
            .insert(
                Key::Int(i as i64),
                vec![u.user_fraud[i], (i % 17) as f64, (i % 24) as f64 / 24.0],
            )
            .map_err(err)?;
    }
    for i in 0..N_PAGES {
        pages
            .insert(
                Key::Int(i as i64),
                vec![u.page_risk[i], (i % 11) as f64 / 11.0],
            )
            .map_err(err)?;
    }
    Ok(Store::remote(
        [
            ("click_users".to_string(), users),
            ("click_pages".to_string(), pages),
        ],
        cfg.latency(),
    ))
}

fn make_split<R: Rng>(rng: &mut R, u: &Universe, n: usize) -> (Table, Vec<f64>) {
    let user_zipf = Zipf::new(N_USERS, 1.2);
    let page_zipf = Zipf::new(N_PAGES, 1.1);
    let mut users = Vec::with_capacity(n);
    let mut pages = Vec::with_capacity(n);
    let mut hours = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let user = user_zipf.sample(rng);
        let page = page_zipf.sample(rng);
        let hour = rng.gen_range(0..24) as f64;
        let logit = fraud_logit(u, user, page, hour) + normal(rng, 0.0, 0.25);
        users.push(user as i64);
        pages.push(page as i64);
        hours.push(hour);
        labels.push(f64::from(logit > 0.0));
    }
    let mut t = Table::new();
    t.add_column("user", Column::from(users))
        .expect("fresh table");
    t.add_column("page", Column::from(pages))
        .expect("fresh table");
    t.add_column("hour", Column::from(hours))
        .expect("fresh table");
    (t, labels)
}

/// Generate the Clickstream workload.
///
/// # Errors
/// Propagates construction failures (indicating bugs, not user error).
pub fn generate(cfg: &WorkloadConfig) -> Result<Workload, WillumpError> {
    let mut rng = seeded(cfg.seed ^ 0x434C_4943); // "CLIC"
    let universe = build_universe(&mut rng);
    let store = build_store(&universe, cfg)?;

    let (train, train_y) = make_split(&mut rng, &universe, cfg.n_train);
    let (valid, valid_y) = make_split(&mut rng, &universe, cfg.n_valid);
    let (test, test_y) = make_split(&mut rng, &universe, cfg.n_test);

    let join = |table: &str| -> Result<Operator, WillumpError> {
        Ok(Operator::StoreLookup(Arc::new(
            StoreJoin::new(store.clone(), table).map_err(|e| WillumpError::Graph(e.to_string()))?,
        )))
    };

    let mut b = GraphBuilder::new();
    let user = b.source("user");
    let page = b.source("page");
    let hour = b.source("hour");
    let user_f = b.add("user_lookup", join("click_users")?, [user])?;
    let page_f = b.add("page_lookup", join("click_pages")?, [page])?;
    let hour_f = b.add("hour_feature", Operator::NumericColumn, [hour])?;
    let graph = Arc::new(b.finish_with_concat("features", [user_f, page_f, hour_f])?);

    let pipeline = Pipeline::new(
        graph,
        ModelSpec::GbdtClassifier(GbdtParams {
            n_trees: 60,
            learning_rate: 0.15,
            tree: TreeParams {
                max_depth: 5,
                min_samples_leaf: 5,
                ..TreeParams::default()
            },
        }),
    );

    Ok(Workload {
        name: "clickstream",
        pipeline,
        train,
        train_y,
        valid,
        valid_y,
        test,
        test_y,
        store: Some(store),
    })
}

// ---- streaming ingestion -------------------------------------------

/// One arriving click to fold into the feature store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClickEvent {
    /// User entity id (a `click_users` key).
    pub user: i64,
    /// Page entity id (a `click_pages` key).
    pub page: i64,
    /// Hour of day in `[0, 24)`.
    pub hour: f64,
}

/// A seeded Zipf-skewed stream of `n` click events (the same user
/// popularity skew as the workload's query splits, so hot users fold
/// often).
#[must_use]
pub fn event_stream(seed: u64, n: usize) -> Vec<ClickEvent> {
    let mut rng = seeded(seed ^ 0x4556_4E54); // "EVNT"
    let user_zipf = Zipf::new(N_USERS, 1.2);
    let page_zipf = Zipf::new(N_PAGES, 1.1);
    (0..n)
        .map(|_| ClickEvent {
            user: user_zipf.sample(&mut rng) as i64,
            page: page_zipf.sample(&mut rng) as i64,
            hour: rng.gen_range(0..24) as f64,
        })
        .collect()
}

/// Folds [`ClickEvent`]s into the workload's `click_users` table
/// while serving reads it: each fold is a read-modify-write under the
/// store's table lock (`clicks += 1`, recency := hour/24), so
/// concurrent folders never lose clicks, plus an update of a shared
/// hot-entity [`LruCache`] whose hit rate measures user skew.
///
/// Cloning is cheap (shared state): spawn one clone per ingestion
/// thread.
#[derive(Debug, Clone)]
pub struct ClickstreamFolder {
    store: Store,
    hot: Arc<Mutex<LruCache<Key, Vec<f64>>>>,
    folded: Arc<AtomicU64>,
}

impl ClickstreamFolder {
    /// A folder writing into `store` (which must hold the workload's
    /// `click_users` table), tracking at most `hot_capacity` hot
    /// users.
    #[must_use]
    pub fn new(store: Store, hot_capacity: usize) -> ClickstreamFolder {
        ClickstreamFolder {
            store,
            hot: Arc::new(Mutex::new(LruCache::with_capacity(hot_capacity))),
            folded: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Fold one event: increment the user's click count, refresh
    /// recency, and record the user in the hot cache. Returns the row
    /// as written.
    ///
    /// # Errors
    /// Propagates store errors (unknown table, injected transient
    /// faults); a failed fold leaves the row untouched.
    pub fn fold(&self, event: &ClickEvent) -> Result<Vec<f64>, StoreError> {
        let key = Key::Int(event.user);
        let written = self
            .store
            .update_row("click_users", &key, |cur| match cur {
                Some(row) => vec![row[0], row[1] + 1.0, event.hour / 24.0],
                // A brand-new user starts with neutral fraud propensity.
                None => vec![0.0, 1.0, event.hour / 24.0],
            })?;
        let mut hot = self.hot.lock();
        hot.get(&key); // count a hit/miss for skew telemetry
        hot.put(key, written.clone());
        self.folded.fetch_add(1, Ordering::Relaxed);
        Ok(written)
    }

    /// Number of events successfully folded.
    #[must_use]
    pub fn folded(&self) -> u64 {
        self.folded.load(Ordering::Relaxed)
    }

    /// Hot-cache (hits, misses) — high hit rates mean a skewed user
    /// stream.
    #[must_use]
    pub fn hot_stats(&self) -> (u64, u64) {
        let hot = self.hot.lock();
        (hot.hits(), hot.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_graph::{EngineMode, Executor};
    use willump_models::metrics;

    #[test]
    fn generates_and_trains_accurately() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        let feats = exec.features_batch(&w.train, None).unwrap();
        let model = w.pipeline.spec().fit(&feats, &w.train_y, 1).unwrap();
        let test_feats = exec.features_batch(&w.test, None).unwrap();
        let acc = metrics::accuracy(&model.predict_scores(&test_feats), &w.test_y);
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn six_ifvs_two_lookups() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).unwrap();
        assert_eq!(exec.analysis().generators.len(), 3);
        let lookups = exec
            .graph()
            .nodes()
            .iter()
            .filter(|n| n.op.is_lookup())
            .count();
        assert_eq!(lookups, 2);
    }

    #[test]
    fn fold_applies_event_and_counts() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let store = w.store.clone().unwrap();
        let before = store.get_batch("click_users", &[Key::Int(7)]).unwrap()[0].clone();
        let writes_before = store.stats().keys_written();
        let folder = ClickstreamFolder::new(store.clone(), 64);
        let event = ClickEvent {
            user: 7,
            page: 3,
            hour: 18.0,
        };
        let written = folder.fold(&event).unwrap();
        assert_eq!(written[0], before[0], "fraud propensity unchanged");
        assert_eq!(written[1], before[1] + 1.0, "one more click");
        assert!((written[2] - 18.0 / 24.0).abs() < 1e-12, "recency updated");
        // The write is visible to the serving read path.
        let after = store.get_batch("click_users", &[Key::Int(7)]).unwrap();
        assert_eq!(&*after[0], written.as_slice());
        assert_eq!(store.stats().keys_written(), writes_before + 1);
        assert_eq!(folder.folded(), 1);
    }

    #[test]
    fn concurrent_folds_never_lose_clicks() {
        let w = generate(&WorkloadConfig::small()).unwrap();
        let store = w.store.clone().unwrap();
        let user = 5i64;
        let before = store.get_batch("click_users", &[Key::Int(user)]).unwrap()[0][1];
        let folder = ClickstreamFolder::new(store.clone(), 64);
        let per_thread = 200usize;
        std::thread::scope(|s| {
            for t in 0..4 {
                let folder = folder.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        folder
                            .fold(&ClickEvent {
                                user,
                                page: ((t * per_thread + i) % N_PAGES) as i64,
                                hour: (i % 24) as f64,
                            })
                            .expect("fold succeeds");
                    }
                });
            }
        });
        let after = store.get_batch("click_users", &[Key::Int(user)]).unwrap()[0][1];
        assert_eq!(after, before + 800.0, "no click lost under contention");
        assert_eq!(folder.folded(), 800);
    }

    #[test]
    fn event_stream_is_skewed_and_seeded() {
        let a = event_stream(9, 2_000);
        let b = event_stream(9, 2_000);
        assert_eq!(a, b, "seeded stream is reproducible");
        let mut counts = std::collections::HashMap::new();
        for e in &a {
            *counts.entry(e.user).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max as f64 > a.len() as f64 * 0.02, "max user count {max}");
        // Skew shows up as hot-cache hits when folding the stream.
        let w = generate(&WorkloadConfig::small()).unwrap();
        let folder = ClickstreamFolder::new(w.store.clone().unwrap(), 128);
        for e in a.iter().take(500) {
            folder.fold(e).unwrap();
        }
        let (hits, misses) = folder.hot_stats();
        assert!(
            hits > misses / 4,
            "skewed stream should re-touch hot users: {hits} hits / {misses} misses"
        );
    }
}
