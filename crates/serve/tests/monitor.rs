//! Integration tests for the live ops surface (`StatsHub`): sample
//! coherence under concurrent load (property-based), deterministic
//! sampler scheduling through an injectable `ManualClock`, derived
//! event detection (topology, breakers, shed episodes), and THE soak
//! test — a full cluster lifecycle (kill → prober re-admission →
//! live drain under load → coordinator migration) reconstructed
//! purely from the hub's history and event feed, with no direct
//! runtime inspection in any assertion.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use willump::ManualClock;
use willump_data::{Table, Value};
use willump_serve::{
    AdmissionPolicy, BreakerState, ClusterConfig, ClusterCoordinator, InProcessWorker,
    MonitorConfig, MonitorEvent, MonitorSample, RemoteRuntimeNode, RemoteWorker, Request, Servable,
    ServeError, ServerConfig, ServingRuntime, StatsHub, TimedEvent, TransportStats, WireRow,
    WorkerTransport,
};

/// Deterministic predictor shared with the cluster.rs suite.
struct Affine;
impl Servable for Affine {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs.into_iter().map(|x| 3.0 * x - 1.0).collect())
    }
}

/// A predictor with a fixed service time, for admission shedding.
struct SlowAffine(Duration);
impl Servable for SlowAffine {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        std::thread::sleep(self.0);
        Affine.predict_table(table)
    }
}

fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
    xs.iter()
        .map(|&x| vec![("x".to_string(), Value::Float(x))])
        .collect()
}

/// A child runtime serving `Affine` under `name` on a loopback port.
fn spawn_node(name: &str, shards: usize) -> RemoteRuntimeNode {
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint(name, Arc::new(Affine)).shards(shards);
    RemoteRuntimeNode::bind("127.0.0.1:0", b.build().expect("child builds")).expect("node binds")
}

/// Rebind a node at the exact address a previous incarnation used
/// (retrying through the OS releasing the port).
fn respawn_node_at(addr: &str, name: &str, shards: usize) -> RemoteRuntimeNode {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(2).build());
        b.endpoint(name, Arc::new(Affine)).shards(shards);
        match RemoteRuntimeNode::bind(addr, b.build().expect("child builds")) {
            Ok(node) => return node,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not rebind {addr} within 10s: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// A key routed to shard `want` out of `domain` under key-hash
/// routing.
fn key_for_shard(want: usize, domain: usize) -> String {
    (0..10_000)
        .map(|i| format!("key-{i}"))
        .find(|k| willump_serve::shard_for_key(k, domain) == want)
        .expect("some key hashes to the wanted shard")
}

/// A transport whose forwards block while `gate` reads true — it
/// pins a request in flight for as long as the test wants, making the
/// draining window deterministic instead of a race against how fast
/// the backend answers.
#[derive(Debug)]
struct GatedTransport {
    inner: InProcessWorker,
    gate: Arc<AtomicBool>,
    /// Forwards that have *entered* (whether or not they completed) —
    /// lets the test know a request is pinned behind the gate.
    entered: Arc<std::sync::atomic::AtomicU64>,
}

impl WorkerTransport for GatedTransport {
    fn forward(&self, frame: &str) -> Result<String, ServeError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        while self.gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.inner.forward(frame)
    }

    fn describe(&self) -> String {
        "gated-in-process".to_string()
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

/// The cumulative (strictly additive) counter fields of a sample, in
/// a fixed order; high-water marks are excluded (they ratchet, but a
/// delta carries the later value rather than a difference, so they do
/// not telescope).
fn additive_counters(s: &MonitorSample) -> [u64; 16] {
    [
        s.requests,
        s.rows,
        s.batches,
        s.decode_errors,
        s.route_errors,
        s.coalesced_rows,
        s.remote_forwards,
        s.remote_bytes_sent,
        s.remote_bytes_received,
        s.transport_errors,
        s.failovers,
        s.degraded,
        s.shed,
        s.hot_keys,
        s.probes_sent,
        s.probes_ok,
    ]
}

/// The high-water-mark fields (monotone, non-telescoping).
fn watermark_counters(s: &MonitorSample) -> [u64; 2] {
    [s.max_batch_rows, s.remote_max_in_flight]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE sample-coherence property: while 4 client threads hammer a
    /// 2-local + 1-remote endpoint and a sampler thread races them
    /// with `sample_now`, every counter in consecutive hub samples is
    /// monotonically non-decreasing, sequence numbers are gapless,
    /// and the per-interval deltas telescope exactly: the first
    /// sample plus the sum of all deltas equals the final snapshot.
    #[test]
    fn samples_are_monotone_and_deltas_telescope(per_thread in 3usize..16) {
        let mut backend_builder = ServingRuntime::builder();
        backend_builder.config(ServerConfig::builder().workers(1).build());
        backend_builder.endpoint("affine", Arc::new(Affine)).shards(1);
        let backend = backend_builder.build().expect("backend builds");

        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(2).build());
        b.endpoint("affine", Arc::new(Affine))
            .shards(2)
            .shard_transport(Arc::new(InProcessWorker::new(&backend)));
        let runtime = b.build().expect("runtime builds");

        let hub = StatsHub::new(4_096);
        let _ = hub.sample_now(&runtime);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let sampler_hub = hub.clone();
            let sampler_runtime = &runtime;
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let _ = sampler_hub.sample_now(sampler_runtime);
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            let clients: Vec<_> = (0..4u64)
                .map(|worker| {
                    let client = runtime.client();
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            let x = i as f64;
                            let scores = client
                                .predict_keyed(
                                    "affine",
                                    &format!("w{worker}-k{i}"),
                                    wire_rows(&[x]),
                                )
                                .expect("serving succeeds");
                            assert_eq!(scores, vec![3.0 * x - 1.0]);
                        }
                    })
                })
                .collect();
            for c in clients {
                c.join().expect("client thread completes");
            }
            // Only now may the sampler stop — it must have raced the
            // load, and the scope would deadlock on it otherwise.
            done.store(true, Ordering::Relaxed);
        });
        let last = hub.sample_now(&runtime);

        // Every offered request is accounted for in the final sample,
        // at both the server and the endpoint level.
        prop_assert_eq!(last.requests, 4 * per_thread as u64);
        let ep = last.endpoint("affine", 1).expect("endpoint sampled");
        prop_assert_eq!(ep.stats.requests, 4 * per_thread as u64);

        let samples = hub.samples();
        prop_assert!(samples.len() >= 2);
        for pair in samples.windows(2) {
            // Gapless, strictly increasing sequence; monotone clock.
            prop_assert_eq!(pair[1].seq, pair[0].seq + 1);
            prop_assert!(pair[1].at_nanos >= pair[0].at_nanos);
            // Every counter is monotonically non-decreasing.
            let (a, b) = (additive_counters(&pair[0]), additive_counters(&pair[1]));
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                prop_assert!(y >= x, "additive counter {i} regressed: {x} -> {y}");
            }
            let (a, b) = (watermark_counters(&pair[0]), watermark_counters(&pair[1]));
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                prop_assert!(y >= x, "watermark {i} regressed: {x} -> {y}");
            }
            let (pa, pb) = (
                pair[0].endpoint("affine", 1).expect("sampled"),
                pair[1].endpoint("affine", 1).expect("sampled"),
            );
            prop_assert!(pb.stats.requests >= pa.stats.requests);
            prop_assert!(pb.stats.rows >= pa.stats.rows);
        }

        // Telescoping: first + sum(deltas) == last, field for field.
        let first = &samples[0];
        let deltas = hub.deltas();
        prop_assert_eq!(deltas.len(), samples.len() - 1);
        let mut acc = additive_counters(first);
        let mut ep_requests = first.endpoint("affine", 1).expect("sampled").stats.requests;
        let mut elapsed = 0u64;
        for d in &deltas {
            for (a, x) in acc.iter_mut().zip(additive_counters(d)) {
                *a += x;
            }
            ep_requests += d.endpoint("affine", 1).expect("sampled").stats.requests;
            elapsed += d.at_nanos;
        }
        let final_sample = samples.last().expect("non-empty");
        prop_assert_eq!(acc, additive_counters(final_sample));
        prop_assert_eq!(
            ep_requests,
            final_sample.endpoint("affine", 1).expect("sampled").stats.requests
        );
        prop_assert_eq!(elapsed, final_sample.at_nanos - first.at_nanos);
    }
}

/// The background sampler ticks exactly when its injected
/// `ManualClock` says so: no samples while simulated time stands
/// still (however long the CI host stalls), one sample per advanced
/// interval, timestamps from the manual clock verbatim.
#[test]
fn background_sampler_is_driven_by_the_injected_clock() {
    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine)).shards(1);
    let runtime = b.build().expect("runtime builds");

    let clock = Arc::new(ManualClock::new());
    let interval = Duration::from_millis(50);
    let handle = runtime.start_monitor(MonitorConfig {
        interval,
        history: 32,
        clock: Arc::clone(&clock) as Arc<dyn willump::Clock>,
    });
    let hub = handle.hub().clone();

    let wait_for_len = |n: usize| {
        let deadline = Instant::now() + Duration::from_secs(5);
        while hub.samples().len() < n {
            assert!(
                Instant::now() < deadline,
                "sampler produced {} samples, wanted {n}",
                hub.samples().len()
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    };

    // The sampler takes its first sample immediately, at t = 0.
    wait_for_len(1);
    // Simulated time stands still: no further samples, no matter how
    // much real time passes.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(hub.samples().len(), 1, "sampler ticked without the clock");

    clock.advance(u64::try_from(interval.as_nanos()).expect("fits"));
    wait_for_len(2);
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(hub.samples().len(), 2);

    clock.advance(u64::try_from(interval.as_nanos()).expect("fits"));
    wait_for_len(3);

    let hub = handle.stop();
    let samples = hub.samples();
    assert_eq!(
        samples.iter().map(|s| s.at_nanos).collect::<Vec<_>>(),
        vec![0, 50_000_000, 100_000_000],
        "timestamps must come from the manual clock verbatim"
    );
    assert_eq!(
        samples.iter().map(|s| s.seq).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    // The hub (and its history) outlives the sampler.
    assert_eq!(hub.latest().expect("sampled").seq, 2);
}

/// First sight of an endpoint baselines its topology silently; after
/// that, add and remove surface as events carrying the stable slot
/// id, and the ring bounds both histories without breaking sequence
/// numbers or the `events_since` cursor.
#[test]
fn topology_events_and_bounded_rings() {
    let mut backend_builder = ServingRuntime::builder();
    backend_builder
        .endpoint("affine", Arc::new(Affine))
        .shards(1);
    let backend = backend_builder.build().expect("backend builds");

    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine))
        .shards(1)
        .shard_transport(Arc::new(InProcessWorker::new(&backend)));
    let runtime = b.build().expect("runtime builds");

    let hub = StatsHub::new(3);
    assert_eq!(hub.history(), 3);
    // Steady state is not an event: the pre-existing remote slot is
    // baselined silently.
    let first = hub.sample_now(&runtime);
    assert_eq!(
        first.endpoint("affine", 1).expect("sampled").shards.len(),
        1
    );
    assert!(hub.events().is_empty(), "{:?}", hub.events());

    // Add → ShardAdded, remove → ShardRemoved, same stable slot id.
    let shard = runtime
        .add_remote_shard("affine", 1, Arc::new(InProcessWorker::new(&backend)))
        .expect("attach");
    let sample = hub.sample_now(&runtime);
    let added_slot = sample
        .endpoint("affine", 1)
        .expect("sampled")
        .shards
        .iter()
        .find(|s| s.shard == shard)
        .expect("new slot sampled")
        .slot_id;
    runtime.remove_shard("affine", 1, shard).expect("detach");
    let _ = hub.sample_now(&runtime);

    let events = hub.events();
    assert!(
        events.iter().any(|e| matches!(
            &e.event,
            MonitorEvent::ShardAdded { endpoint, slot_id, .. }
                if endpoint == "affine" && *slot_id == added_slot
        )),
        "{events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            &e.event,
            MonitorEvent::ShardRemoved { endpoint, slot_id, .. }
                if endpoint == "affine" && *slot_id == added_slot
        )),
        "{events:?}"
    );
    let added_seq = events
        .iter()
        .find(|e| matches!(&e.event, MonitorEvent::ShardAdded { .. }))
        .expect("added event")
        .seq;
    assert_eq!(
        hub.events_since(added_seq + 1).len(),
        events.len() - added_seq as usize - 1
    );

    // Churn add/remove well past both ring bounds: the sample ring
    // keeps the newest `history`, the event ring `history * 4`, and
    // sequence numbers stay gapless.
    for _ in 0..8 {
        let shard = runtime
            .add_remote_shard("affine", 1, Arc::new(InProcessWorker::new(&backend)))
            .expect("attach");
        let _ = hub.sample_now(&runtime);
        runtime.remove_shard("affine", 1, shard).expect("detach");
        let _ = hub.sample_now(&runtime);
    }
    let samples = hub.samples();
    assert_eq!(samples.len(), 3);
    assert!(samples.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    assert_eq!(hub.latest().expect("sampled").seq, 18);
    assert_eq!(hub.deltas().len(), 2);
    let events = hub.events();
    assert_eq!(events.len(), 3 * 4, "event ring must bound at history x 4");
    assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
}

/// Shed episodes are derived from the endpoint's shed counter alone:
/// a still → moving edge starts one, a full still interval ends it,
/// and the episode's shed total matches the counter delta exactly.
#[test]
fn shed_episode_events_bracket_the_overload() {
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(1).build());
    b.admission(AdmissionPolicy::with_slo_p99(Duration::from_micros(10)).min_samples(4));
    b.endpoint("slow", Arc::new(SlowAffine(Duration::from_millis(3))));
    let runtime = b.build().expect("runtime builds");
    let client = runtime.client();
    let hub = StatsHub::new(64);
    let _ = hub.sample_now(&runtime);

    // Warm the latency estimator below min_samples: all admitted.
    for i in 0..4 {
        client
            .predict_endpoint("slow", wire_rows(&[i as f64]))
            .expect("warm-up admitted");
    }
    let _ = hub.sample_now(&runtime);
    assert!(hub.events().is_empty(), "no shed yet: {:?}", hub.events());

    // With observed p99 ~3ms against a 10µs SLO, every further
    // request sheds deterministically.
    let mut shed_sent = 0u64;
    for i in 0..3 {
        let resp = client
            .call(Request {
                endpoint: Some("slow".to_string()),
                ..Request::new(100 + i, wire_rows(&[1.0]))
            })
            .expect("shed responses still answer");
        assert!(resp.overloaded, "expected shed, got {resp:?}");
        shed_sent += 1;
    }
    let _ = hub.sample_now(&runtime);
    assert!(
        hub.events().iter().any(|e| matches!(
            &e.event,
            MonitorEvent::ShedStarted { endpoint, version } if endpoint == "slow" && *version == 1
        )),
        "{:?}",
        hub.events()
    );

    // More sheds inside the same episode: no second ShedStarted.
    for i in 0..2 {
        let resp = client
            .call(Request {
                endpoint: Some("slow".to_string()),
                ..Request::new(200 + i, wire_rows(&[1.0]))
            })
            .expect("shed responses still answer");
        assert!(resp.overloaded);
        shed_sent += 1;
    }
    let _ = hub.sample_now(&runtime);
    let started = hub
        .events()
        .iter()
        .filter(|e| matches!(&e.event, MonitorEvent::ShedStarted { .. }))
        .count();
    assert_eq!(started, 1, "one episode, one start: {:?}", hub.events());

    // A full still interval ends the episode, reporting its total.
    let _ = hub.sample_now(&runtime);
    let events = hub.events();
    let end = events
        .iter()
        .find_map(|e| match &e.event {
            MonitorEvent::ShedEnded {
                endpoint,
                version,
                shed,
            } if endpoint == "slow" && *version == 1 => Some(*shed),
            _ => None,
        })
        .expect("episode must end after a still interval");
    assert_eq!(end, shed_sent);
    // Reconstructable from samples too: the final sample's shed
    // counter carries the same total.
    assert_eq!(hub.latest().expect("sampled").shed, shed_sent);
}

/// THE soak test: a full cluster lifecycle — node death, breaker
/// opening, prober re-admission, live drain under load, coordinator
/// migration — each phase surfacing as the correct `MonitorEvent`
/// sequence, reconstructed purely from `StatsHub` history and events.
/// Not one assertion reads the runtime's own stats.
#[test]
fn soak_full_lifecycle_is_reconstructable_from_the_hub_alone() {
    let mut node = spawn_node("affine", 2);
    let addr_a = node.local_addr().to_string();

    // Long-cooldown breakers: only the prober may re-admit.
    let long = Duration::from_secs(600);
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint("affine", Arc::new(Affine))
        .shards(2)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr_a)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long),
        ))
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr_a)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long),
        ));
    let runtime = b.build().expect("runtime builds");
    let client = runtime.client();
    let cluster = runtime.start_cluster(ClusterConfig {
        probe_interval: Duration::from_millis(10),
        ..ClusterConfig::default()
    });
    let monitor = runtime.start_monitor(MonitorConfig {
        interval: Duration::from_millis(5),
        history: 4_096,
        ..MonitorConfig::default()
    });
    let hub = monitor.hub().clone();

    let wait_for_event = |what: &str, pred: &dyn Fn(&TimedEvent) -> bool| -> u64 {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            if let Some(e) = hub.events().iter().find(|e| pred(e)) {
                return e.seq;
            }
            assert!(
                Instant::now() < deadline,
                "no `{what}` event within 15s; feed: {:?}",
                hub.events()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    // ---- phase 1: steady state ------------------------------------
    let remote_key = key_for_shard(2, 4);
    for i in 0..4 {
        client
            .predict_keyed("affine", &remote_key, wire_rows(&[i as f64]))
            .expect("steady state serves");
    }
    let phase1 = hub.sample_now(&runtime);
    assert_eq!(phase1.failovers, 0, "no failovers in steady state");
    assert!(phase1.remote_forwards >= 1, "remote shard served");

    // ---- phase 2: node death → breakers open ----------------------
    node.shutdown();
    for i in 0..3 {
        client
            .predict_keyed("affine", &remote_key, wire_rows(&[i as f64]))
            .expect("fail-over keeps serving");
    }
    let opened_seq = wait_for_event("breaker-opened", &|e| {
        matches!(
            &e.event,
            MonitorEvent::BreakerTransition { endpoint, from, to, .. }
                if endpoint == "affine" && *from == BreakerState::Closed && *to != BreakerState::Closed
        )
    });
    let phase2 = hub.sample_now(&runtime);
    assert!(
        phase2.failovers >= phase1.failovers + 3,
        "the death phase must show up as failovers in the samples: {} -> {}",
        phase1.failovers,
        phase2.failovers
    );

    // ---- phase 3: recovery → prober re-admission ------------------
    let node2 = respawn_node_at(&addr_a, "affine", 2);
    let closed_seq = wait_for_event("breaker-closed", &|e| {
        e.seq > opened_seq
            && matches!(
                &e.event,
                MonitorEvent::BreakerTransition { endpoint, to, .. }
                    if endpoint == "affine" && *to == BreakerState::Closed
            )
    });
    let phase3 = hub.sample_now(&runtime);
    assert!(
        phase3.probes_ok > phase2.probes_ok,
        "re-admission must show as successful probes in the samples"
    );

    // The prober has done its job; stop it so the gated transport
    // below cannot stall a probe sweep.
    cluster.stop();

    // ---- phase 4: live drain under load ---------------------------
    let mut backend_builder = ServingRuntime::builder();
    backend_builder
        .endpoint("affine", Arc::new(Affine))
        .shards(1);
    let backend = backend_builder.build().expect("backend builds");
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let gated_shard = runtime
        .add_remote_shard(
            "affine",
            1,
            Arc::new(GatedTransport {
                inner: InProcessWorker::new(&backend),
                gate: Arc::clone(&gate),
                entered: Arc::clone(&entered),
            }),
        )
        .expect("gated shard attaches");
    assert_eq!(gated_shard, 4);
    let added_sample = hub.sample_now(&runtime);
    let gated_slot = added_sample
        .endpoint("affine", 1)
        .expect("sampled")
        .shards
        .iter()
        .find(|s| s.description == "gated-in-process")
        .expect("gated slot sampled")
        .slot_id;
    let added_seq = wait_for_event("gated-shard-added", &|e| {
        matches!(
            &e.event,
            MonitorEvent::ShardAdded { slot_id, .. } if *slot_id == gated_slot
        )
    });

    // Load runs throughout the drain; the gate pins one request in
    // flight on the draining slot so the draining window is real.
    let gated_key = key_for_shard(gated_shard, 5);
    let local_key = (0..10_000)
        .map(|i| format!("key-{i}"))
        .find(|k| willump_serve::shard_for_key(k, 5) < 2 && willump_serve::shard_for_key(k, 4) < 2)
        .expect("some key stays local across both domains");
    gate.store(true, Ordering::SeqCst);
    let stop_load = AtomicBool::new(false);
    // Failures inside the scope must release the gate *before* the
    // scope joins its threads, or a failed assertion would hang the
    // test on the still-pinned request — so poll without panicking,
    // record the failure, always release, and panic after the joins.
    let mut failure: Option<String> = None;
    std::thread::scope(|scope| {
        let pinned_client = runtime.client();
        let pinned_key = gated_key.clone();
        let pinned = scope.spawn(move || {
            pinned_client
                .predict_keyed("affine", &pinned_key, wire_rows(&[7.0]))
                .expect("the gated request completes after release")
        });
        let load_client = runtime.client();
        let load_key = &local_key;
        let stop_ref = &stop_load;
        let load = scope.spawn(move || {
            let mut served = 0u64;
            while !stop_ref.load(Ordering::Relaxed) {
                load_client
                    .predict_keyed("affine", load_key, wire_rows(&[1.0]))
                    .expect("no request may fail during a drain");
                served += 1;
            }
            served
        });
        // Wait until the pinned request is actually held behind the
        // gate before draining (transport counters only move on
        // completion, so the gate counts entries itself).
        let deadline = Instant::now() + Duration::from_secs(10);
        while entered.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if entered.load(Ordering::SeqCst) == 0 {
            failure = Some("pinned request never went in flight".to_string());
        }
        let drainer = if failure.is_none() {
            let drain_runtime = &runtime;
            Some(scope.spawn(move || {
                drain_runtime
                    .drain_shard("affine", 1, gated_shard, Duration::from_secs(30))
                    .expect("drain completes");
            }))
        } else {
            None
        };
        if failure.is_none() {
            // The gate holds the slot draining; the monitor must
            // observe the window before we release it.
            let deadline = Instant::now() + Duration::from_secs(15);
            let seen = |hub: &StatsHub| {
                hub.events().iter().any(|e| {
                    matches!(
                        &e.event,
                        MonitorEvent::ShardDraining { slot_id, .. } if *slot_id == gated_slot
                    )
                })
            };
            while !seen(&hub) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if !seen(&hub) {
                failure = Some(format!(
                    "draining window never observed; feed: {:?}",
                    hub.events()
                ));
            }
        }
        gate.store(false, Ordering::SeqCst);
        if let Some(drainer) = drainer {
            drainer.join().expect("drainer thread completes");
        }
        let pinned_scores = pinned.join().expect("pinned thread completes");
        if failure.is_none() && pinned_scores != vec![20.0] {
            failure = Some(format!(
                "zero in-flight loss violated: pinned request returned {pinned_scores:?}"
            ));
        }
        stop_load.store(true, Ordering::Relaxed);
        let served = load.join().expect("load thread completes");
        if failure.is_none() && served == 0 {
            failure = Some("background load never served during the drain".to_string());
        }
    });
    if let Some(failure) = failure {
        panic!("{failure}");
    }
    let drained_seq = wait_for_event("gated-shard-draining", &|e| {
        matches!(
            &e.event,
            MonitorEvent::ShardDraining { slot_id, .. } if *slot_id == gated_slot
        )
    });
    let removed_seq = wait_for_event("gated-shard-removed", &|e| {
        matches!(
            &e.event,
            MonitorEvent::ShardRemoved { slot_id, .. } if *slot_id == gated_slot
        )
    });

    // ---- phase 5: kill for good → coordinator migration -----------
    let node_b = spawn_node("affine", 2);
    let addr_b = node_b.local_addr().to_string();
    drop(node2);
    let dead_key = key_for_shard(2, 4);
    for i in 0..3 {
        client
            .predict_keyed("affine", &dead_key, wire_rows(&[i as f64]))
            .expect("fail-over keeps serving");
    }
    let mut coordinator = ClusterCoordinator::new();
    coordinator
        .register_node(&addr_a)
        .register_node(&addr_b)
        .with_monitor(hub.clone())
        .drain_timeout(Duration::from_secs(2));
    coordinator
        .rebalance(&runtime)
        .expect("imbalance must trigger a migration");
    let migration_seq = wait_for_event("migration", &|e| {
        matches!(
            &e.event,
            MonitorEvent::Migration(m) if m.endpoint == "affine" && m.to == addr_b
        )
    });

    // ---- the reconstruction: the whole story, in order, from the
    // ---- event feed alone -----------------------------------------
    assert!(
        opened_seq < closed_seq
            && closed_seq < added_seq
            && added_seq < drained_seq
            && drained_seq < removed_seq
            && removed_seq < migration_seq,
        "lifecycle out of order: open {opened_seq} < re-admit {closed_seq} < \
         add {added_seq} < drain {drained_seq} < remove {removed_seq} < \
         migrate {migration_seq}"
    );
    drop(monitor);
    drop(node_b);
}
