//! Integration tests for cross-process sharding: shard-forwarding
//! frame round-trips (property-based), local-vs-remote prediction
//! equivalence over real TCP, kill-the-node fail-over, the
//! forwarding-loop guard, and the remote plan-counters feed for the
//! escalation-aware scheduler.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

use willump_data::{Table, Value};
use willump_serve::{
    decode_request, decode_response, encode_request, encode_response, is_overloaded_wire,
    EndpointCounters, InProcessWorker, RemoteRuntimeNode, RemoteWorker, Request, Response,
    Servable, ServeError, ServerConfig, ServingRuntime, TransportStats, WireRow, WorkerTransport,
};

/// A deterministic predictor with a visible formula, so local and
/// remote shards can be proven to answer identically.
struct Affine;
impl Servable for Affine {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs.into_iter().map(|x| 3.0 * x - 1.0).collect())
    }
}

fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
    xs.iter()
        .map(|&x| vec![("x".to_string(), Value::Float(x))])
        .collect()
}

/// A child runtime serving `Affine` under `name`, exposed on a free
/// loopback port.
fn spawn_node(name: &str, shards: usize) -> RemoteRuntimeNode {
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint(name, Arc::new(Affine)).shards(shards);
    RemoteRuntimeNode::bind("127.0.0.1:0", b.build().expect("child builds")).expect("node binds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Shard-forwarding frames — the wire form a parent router sends a
    /// remote node, with the `forwarded` loop guard and resolved
    /// endpoint/version — round-trip losslessly, and stripping the
    /// new fields textually (an old router's frame) still decodes
    /// with the guard off.
    #[test]
    fn forwarding_frame_round_trip_is_lossless(
        id in 1u64..u64::MAX,
        xs in prop::collection::vec(-1e9f64..1e9, 1..5),
        endpoint in ".{1,12}",
        version in 0u32..u32::MAX,
        key in (any::<bool>(), ".{0,12}"),
        forwarded in any::<bool>(),
    ) {
        let req = Request {
            endpoint: Some(endpoint),
            version: Some(version),
            key: key.0.then_some(key.1),
            forwarded,
            ..Request::new(id, wire_rows(&xs))
        };
        let wire = encode_request(&req).expect("encodable");
        let back = decode_request(&wire).expect("decodable");
        prop_assert_eq!(&back, &req);

        // An old frame without the new fields decodes with the guard
        // off and no control op.
        let legacy = wire
            .replace(",\"forwarded\":false", "")
            .replace(",\"forwarded\":true", "")
            .replace(",\"control\":null", "");
        let back = decode_request(&legacy).expect("legacy frame decodes");
        prop_assert!(!back.forwarded);
        prop_assert_eq!(back.control, None);
    }

    /// Counters control responses round-trip losslessly for arbitrary
    /// endpoint reports.
    #[test]
    fn counters_response_round_trip_is_lossless(
        id in 0u64..u64::MAX,
        reports in prop::collection::vec(
            (".{0,12}", 0u32..64, (any::<u64>(), any::<u64>()), (any::<u64>(), any::<u64>())),
            0..4,
        ),
    ) {
        let counters = reports
            .into_iter()
            .map(|(endpoint, version, (rows, gate_resolved), (escalated, filter_dropped))| {
                EndpointCounters {
                    endpoint,
                    version,
                    counters: willump::PlanCountersSnapshot {
                        rows,
                        gate_resolved,
                        escalated,
                        filter_dropped,
                    },
                }
            })
            .collect();
        let resp = Response {
            id,
            scores: Vec::new(),
            error: None,
            endpoint: None,
            version: None,
            counters: Some(counters),
            degraded: false,
            overloaded: false,
        };
        let wire = encode_response(&resp).expect("encodable");
        prop_assert_eq!(decode_response(&wire).expect("decodable"), resp);
    }
}

/// THE acceptance test for cross-process sharding: an endpoint with 2
/// local + 2 TCP-remote shards returns predictions identical to a
/// 4-local endpoint, for keyed and unkeyed traffic, while the remote
/// shards really serve (child-side request counters move and the
/// parent records transport latency).
#[test]
fn two_local_two_remote_matches_four_local() {
    let node = spawn_node("affine", 2);
    let addr = node.local_addr().to_string();

    let mut all_local = ServingRuntime::builder();
    all_local.config(ServerConfig::builder().workers(2).build());
    all_local.endpoint("affine", Arc::new(Affine)).shards(4);
    let all_local = all_local.build().expect("4-local builds");

    let mut mixed = ServingRuntime::builder();
    mixed.config(ServerConfig::builder().workers(2).build());
    mixed
        .endpoint("affine", Arc::new(Affine))
        .shards(2)
        .shard_remote(&addr)
        .shard_remote(&addr);
    let mixed = mixed.build().expect("mixed builds");

    let local_client = all_local.client();
    let mixed_client = mixed.client();
    // Keyed traffic (sticky shards, some keys land remote) and
    // unkeyed traffic (round-robin over all four shards).
    for i in 0..24 {
        let rows = wire_rows(&[i as f64, i as f64 * 0.5 - 3.0]);
        let expected = local_client
            .predict_keyed("affine", &format!("user-{i}"), rows.clone())
            .expect("4-local serves");
        let got = mixed_client
            .predict_keyed("affine", &format!("user-{i}"), rows)
            .expect("2+2 serves");
        assert_eq!(got, expected, "keyed request {i} diverged");
    }
    for i in 0..16 {
        let rows = wire_rows(&[-(i as f64)]);
        let expected = local_client
            .predict_endpoint("affine", rows.clone())
            .unwrap();
        let got = mixed_client.predict_endpoint("affine", rows).unwrap();
        assert_eq!(got, expected, "unkeyed request {i} diverged");
    }

    // The remote shards actually served: the child saw traffic, the
    // parent counted remote forwards and per-shard transport latency.
    let ep = mixed.endpoint("affine", 1).unwrap();
    assert_eq!(ep.local_shards(), 2);
    assert_eq!(ep.remote_shards(), 2);
    let per_shard = ep.stats().shard_requests();
    assert_eq!(per_shard.len(), 4);
    assert_eq!(per_shard.iter().sum::<u64>(), 40);
    assert!(
        per_shard[2] + per_shard[3] > 0,
        "remote shards never routed: {per_shard:?}"
    );
    assert!(node.runtime().stats().requests() > 0, "child never served");
    assert_eq!(
        mixed.stats().remote_forwards(),
        per_shard[2] + per_shard[3],
        "every remote-routed request was forwarded"
    );
    let nanos = ep.stats().shard_transport_nanos();
    assert_eq!(nanos[0], 0, "local shards record no transport latency");
    assert!(
        nanos[2] + nanos[3] > 0,
        "remote forwards must record latency"
    );
    assert_eq!(mixed.stats().transport_errors(), 0);
    // Transport-level stats agree.
    let tstats = ep.transport_stats();
    assert_eq!(tstats.len(), 2);
    assert_eq!(
        tstats.iter().map(|t| t.forwards).sum::<u64>(),
        per_shard[2] + per_shard[3]
    );
}

/// Kill-the-node fail-over: requests keyed to a dead remote shard are
/// re-routed to a surviving local shard, the failure is counted, and
/// service never degrades to an error.
#[test]
fn dead_remote_shard_fails_over_to_local() {
    let mut node = spawn_node("affine", 1);
    let addr = node.local_addr().to_string();

    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine))
        .shards(1)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr).with_timeout(Duration::from_secs(2)),
        ));
    let runtime = b.build().expect("runtime builds");
    let client = runtime.client();

    // Find a key that routes to the remote shard (index 1 of 2).
    let remote_key = (0..1000)
        .map(|i| format!("key-{i}"))
        .find(|k| willump_serve::shard_for_key(k, 2) == 1)
        .expect("some key hashes to shard 1");

    // Remote shard serves while the node lives.
    assert_eq!(
        client
            .predict_keyed("affine", &remote_key, wire_rows(&[2.0]))
            .expect("remote shard serves"),
        vec![5.0]
    );
    assert_eq!(runtime.stats().remote_forwards(), 1);
    assert_eq!(runtime.stats().failovers(), 0);

    node.shutdown();

    // Same key, dead node: the request must still be answered — by
    // the surviving local shard — and the failure counted.
    for i in 0..3 {
        assert_eq!(
            client
                .predict_keyed("affine", &remote_key, wire_rows(&[i as f64]))
                .expect("fail-over must keep serving"),
            vec![3.0 * i as f64 - 1.0]
        );
    }
    assert!(runtime.stats().transport_errors() >= 3);
    assert!(runtime.stats().failovers() >= 3);
    let ep = runtime.endpoint("affine", 1).unwrap();
    assert!(ep.stats().failovers() >= 3);
    assert!(ep.stats().transport_errors() >= 3);
}

/// An all-remote endpoint (0 local shards) serves through its
/// transports; when every transport is dead the client gets a clean
/// predictor error, not a hang.
#[test]
fn all_remote_endpoint_serves_and_fails_cleanly() {
    let mut node = spawn_node("affine", 2);
    let addr = node.local_addr().to_string();

    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine))
        .shards(0)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr).with_timeout(Duration::from_secs(2)),
        ))
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr).with_timeout(Duration::from_secs(2)),
        ));
    let runtime = b.build().expect("runtime builds");
    let ep = runtime.endpoint("affine", 1).unwrap();
    assert_eq!(ep.local_shards(), 0);
    assert_eq!(ep.shards(), 2);

    let client = runtime.client();
    assert_eq!(
        client
            .predict_endpoint("affine", wire_rows(&[4.0]))
            .expect("all-remote endpoint serves"),
        vec![11.0]
    );

    node.shutdown();
    match client.predict_endpoint("affine", wire_rows(&[1.0])) {
        Err(ServeError::Predictor(msg)) => {
            assert!(
                msg.contains("every remote shard"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("expected total-failure error, got {other:?}"),
    }
    // Both transports were tried before giving up.
    assert!(runtime.stats().transport_errors() >= 2);
}

/// The forwarding-loop guard: a frame already marked `forwarded` must
/// never leave the receiving runtime. On a node with local shards it
/// is served locally; on an all-remote endpoint it is a route error
/// rather than a second hop.
#[test]
fn forwarded_frames_never_forward_again() {
    let node = spawn_node("affine", 1);
    let addr = node.local_addr().to_string();

    // An all-remote endpoint: plain frames forward, forwarded frames
    // must not.
    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine))
        .shards(0)
        .shard_remote(&addr);
    let runtime = b.build().expect("runtime builds");
    let client = runtime.client();

    let forwarded = Request {
        endpoint: Some("affine".to_string()),
        version: Some(1),
        forwarded: true,
        ..Request::new(41, wire_rows(&[1.0]))
    };
    let wire = client
        .call_raw(encode_request(&forwarded).unwrap())
        .expect("admission answers");
    let resp = decode_response(&wire).unwrap();
    assert_eq!(resp.id, 41);
    let err = resp.error.expect("forwarded frame must not hop again");
    assert!(err.contains("no local shards"), "unexpected error: {err}");
    assert_eq!(runtime.stats().remote_forwards(), 0);
    assert_eq!(runtime.stats().route_errors(), 1);
    // The child never saw the frame.
    assert_eq!(node.runtime().stats().requests(), 0);
}

/// The local-queue transport: `InProcessWorker` puts another
/// runtime's worker queues behind the same shard/transport machinery,
/// with identical predictions and working stats.
#[test]
fn in_process_transport_behaves_like_a_remote_shard() {
    let mut backend = ServingRuntime::builder();
    backend.endpoint("affine", Arc::new(Affine)).shards(2);
    let backend = backend.build().expect("backend builds");

    let mut front = ServingRuntime::builder();
    front
        .endpoint("affine", Arc::new(Affine))
        .shards(1)
        .shard_transport(Arc::new(InProcessWorker::new(&backend)));
    let front = front.build().expect("front builds");
    let client = front.client();

    for i in 0..10 {
        assert_eq!(
            client
                .predict_endpoint("affine", wire_rows(&[i as f64]))
                .unwrap(),
            vec![3.0 * i as f64 - 1.0]
        );
    }
    // Round-robin over 1 local + 1 transport shard: half the traffic
    // crossed into the backend runtime.
    assert_eq!(backend.stats().requests(), 5);
    assert_eq!(front.stats().remote_forwards(), 5);
}

/// Remote plan counters feed the parent: a child whose cascade plan
/// escalates every row reports its `PlanCountersSnapshot` through a
/// counters control frame, and after `refresh_remote_counters` the
/// parent endpoint's escalation rate reflects traffic that ran in
/// the child runtime.
#[test]
fn remote_counters_reach_the_parent_scheduler() {
    use willump::ServingPlan;
    use willump_data::Column;
    use willump_graph::{EngineMode, Executor, GraphBuilder, Operator};
    use willump_models::{LogisticParams, ModelSpec};

    // A tiny two-feature cascade fixture (FG0 is the efficient
    // subset); threshold 1.0 escalates every row, threshold 0.0 none.
    let build_cascade = |threshold: f64| -> (ServingPlan, Table) {
        let mut gb = GraphBuilder::new();
        let a = gb.source("a");
        let c = gb.source("b");
        let f0 = gb.add("f0", Operator::NumericColumn, [a]).unwrap();
        let f1 = gb.add("f1", Operator::NumericColumn, [c]).unwrap();
        let graph = Arc::new(gb.finish_with_concat("cat", [f0, f1]).unwrap());
        let exec = Executor::new(graph, EngineMode::Compiled).unwrap();

        let mut t = Table::new();
        let avals: Vec<f64> = (0..60)
            .map(|i| if i % 2 == 0 { -2.0 } else { 2.0 })
            .collect();
        let bvals: Vec<f64> = (0..60).map(|i| i as f64 * 0.01).collect();
        let y: Vec<f64> = (0..60).map(|i| (i % 2) as f64).collect();
        t.add_column("a", Column::from(avals)).unwrap();
        t.add_column("b", Column::from(bvals)).unwrap();

        let full_feats = exec.features_batch(&t, None).unwrap();
        let full = Arc::new(
            ModelSpec::Logistic(LogisticParams::default())
                .fit(&full_feats, &y, 1)
                .unwrap(),
        );
        let eff_feats = exec.features_batch(&t, Some(&[0])).unwrap();
        let small = Arc::new(
            ModelSpec::Logistic(LogisticParams::default())
                .fit(&eff_feats, &y, 1)
                .unwrap(),
        );
        let plan = ServingPlan::cascade(exec, small, full, threshold, vec![0]).unwrap();
        (plan, t)
    };

    // Child: an always-escalating cascade, exposed over TCP.
    let (child_plan, table) = build_cascade(1.0);
    let mut child = ServingRuntime::builder();
    child.plan("m", child_plan);
    let node =
        RemoteRuntimeNode::bind("127.0.0.1:0", child.build().expect("child builds")).unwrap();
    let addr = node.local_addr().to_string();

    // Parent: a never-escalating local shard plus the child as TWO
    // remote shards (same node — its node-wide counters must merge
    // once, not once per shard).
    let (parent_plan, _) = build_cascade(0.0);
    let mut parent = ServingRuntime::builder();
    parent
        .plan("m", parent_plan)
        .shards(1)
        .shard_remote(&addr)
        .shard_remote(&addr);
    let parent = parent.build().expect("parent builds");
    let client = parent.client();

    // Unkeyed traffic round-robins over both shards, so roughly half
    // the rows escalate — but only inside the child process's plan.
    let rows: Vec<WireRow> = (0..table.n_rows())
        .map(|r| willump_serve::table_row_to_wire(&table, r).unwrap())
        .collect();
    for chunk in rows.chunks(6) {
        client.predict_endpoint("m", chunk.to_vec()).unwrap();
    }

    let ep = parent.endpoint("m", 1).unwrap();
    let local_only = ep.merged_counters();
    assert_eq!(
        local_only.escalated, 0,
        "parent's local plan never escalates"
    );

    // A direct probe through the transport sees the child's counters…
    let probe = RemoteWorker::new(&addr);
    let snap = probe.probe_counters("m", 1).expect("probe answers");
    assert!(snap.rows > 0, "child plan ran rows");
    assert_eq!(snap.escalated, snap.rows, "child escalates everything");

    // …and refreshing folds them into the parent's scheduler view.
    // Both remote shards answer, but they are ONE node: its counters
    // must merge once, not once per shard.
    assert_eq!(parent.refresh_remote_counters(), 2);
    let merged = ep.merged_counters();
    assert_eq!(
        merged.escalated, snap.escalated,
        "same-node shards must not double-count"
    );
    assert!(
        ep.escalation_rate() > 0.3,
        "remote escalations must raise the merged rate, got {}",
        ep.escalation_rate()
    );

    // Unknown endpoints are a clean probe error.
    assert!(probe.probe_counters("nonesuch", 1).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Shed responses — the `Overloaded` wire form admission control
    /// emits — round-trip the wire encoder losslessly for arbitrary
    /// endpoint names, and a legacy frame for the same request never
    /// reads as shed.
    #[test]
    fn shed_responses_round_trip_the_wire(
        id in 0u64..u64::MAX,
        endpoint in "[a-z0-9./ -]{0,16}",
        version in 0u32..u32::MAX,
    ) {
        let resp = Response::shed(id, &endpoint, version);
        let wire = encode_response(&resp).expect("shed response encodes");
        prop_assert!(is_overloaded_wire(&wire));
        let back = decode_response(&wire).expect("shed response decodes");
        prop_assert!(back.overloaded);
        prop_assert!(!back.degraded);
        prop_assert!(back.scores.is_empty());
        prop_assert_eq!(&back, &resp);
        // A legacy frame (no admission-era fields at all) for the same
        // id decodes with the markers defaulted off.
        let legacy = format!("{{\"id\":{id},\"scores\":[1.5],\"error\":null}}");
        let old = decode_response(&legacy).expect("legacy frame decodes");
        prop_assert!(!old.overloaded);
        prop_assert!(!old.degraded);
        prop_assert!(!is_overloaded_wire(&legacy));
    }
}

/// A transport standing in for an overloaded remote node: every
/// forwarded frame comes back as an admission-control shed response.
#[derive(Default)]
struct SheddingTransport {
    forwards: std::sync::atomic::AtomicU64,
}
impl WorkerTransport for SheddingTransport {
    fn forward(&self, frame: &str) -> Result<String, ServeError> {
        self.forwards
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let req = decode_request(frame)?;
        encode_response(&Response::shed(req.id, "affine", 1))
    }
    fn describe(&self) -> String {
        "always-shedding".to_string()
    }
    fn stats(&self) -> TransportStats {
        TransportStats {
            forwards: self.forwards.load(std::sync::atomic::Ordering::Relaxed),
            ..TransportStats::default()
        }
    }
}

/// A remote node's shed responses relay to the caller verbatim but
/// are *excluded* from `shard_transport_nanos` — a shed round trip
/// measures the remote's admission gate, not its service latency, so
/// counting it would drag the per-shard latency signal toward zero
/// exactly when the remote is overloaded (mirrors the counters-probe
/// exclusion).
#[test]
fn remote_shed_responses_skip_transport_latency_accounting() {
    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine))
        .shards(1)
        .shard_transport(Arc::new(SheddingTransport::default()));
    let runtime = b.build().expect("runtime builds");
    let client = runtime.client();

    // A key that routes to the transport shard (index 1 of 2).
    let remote_key = (0..1000)
        .map(|i| format!("key-{i}"))
        .find(|k| willump_serve::shard_for_key(k, 2) == 1)
        .expect("some key hashes to shard 1");

    let resp = client
        .call(Request {
            endpoint: Some("affine".to_string()),
            key: Some(remote_key.clone()),
            ..Request::new(11, wire_rows(&[4.0]))
        })
        .expect("shed response still decodes");
    assert!(resp.overloaded, "remote shed must relay: {resp:?}");
    assert!(resp.scores.is_empty());

    let ep = runtime.endpoint("affine", 1).unwrap();
    assert_eq!(runtime.stats().remote_forwards(), 1);
    assert_eq!(
        ep.stats().shard_transport_nanos()[1],
        0,
        "shed round trips must not count as transport latency"
    );

    // A local request on the same endpoint still serves normally.
    let local_key = (0..1000)
        .map(|i| format!("key-{i}"))
        .find(|k| willump_serve::shard_for_key(k, 2) == 0)
        .expect("some key hashes to shard 0");
    assert_eq!(
        client
            .predict_keyed("affine", &local_key, wire_rows(&[2.0]))
            .unwrap(),
        vec![5.0]
    );
}

// ---- wire2 binary <-> legacy JSON equivalence ----------------------

use willump_serve::wire2::{
    decode_request_payload, decode_response_payload, encode_request_payload,
    encode_response_payload,
};
use willump_serve::ControlRequest;

/// A strategy over wire rows exercising every `Value` variant.
fn arb_rows() -> impl Strategy<Value = Vec<WireRow>> {
    let value = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        ".{0,8}".prop_map(|s| Value::str(s.as_str())),
    ];
    prop::collection::vec(
        prop::collection::vec((".{1,6}", value), 0..4).prop_map(|cols| cols.into_iter().collect()),
        0..3,
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        1u64..u64::MAX,
        arb_rows(),
        prop::option::of(".{0,12}"),
        prop::option::of(0u32..u32::MAX),
        prop::option::of(".{0,12}"),
        any::<bool>(),
        prop::option::of(prop_oneof![
            Just(ControlRequest::Counters),
            Just(ControlRequest::Join),
            Just(ControlRequest::Drain),
            Just(ControlRequest::Leave),
        ]),
    )
        .prop_map(
            |(id, rows, endpoint, version, key, forwarded, control)| Request {
                id,
                rows,
                endpoint,
                version,
                key,
                forwarded,
                control,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    let counters = prop::collection::vec(
        (
            ".{0,10}",
            0u32..64,
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |(endpoint, version, (rows, gate_resolved, escalated, filter_dropped))| {
                    EndpointCounters {
                        endpoint,
                        version,
                        counters: willump::PlanCountersSnapshot {
                            rows,
                            gate_resolved,
                            escalated,
                            filter_dropped,
                        },
                    }
                },
            ),
        0..3,
    );
    (
        0u64..u64::MAX,
        prop::collection::vec(-1e12f64..1e12, 0..4),
        prop::option::of(".{0,16}"),
        prop::option::of(".{0,12}"),
        prop::option::of(0u32..u32::MAX),
        prop::option::of(counters),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(id, scores, error, endpoint, version, counters, degraded, overloaded)| Response {
                id,
                scores,
                error,
                endpoint,
                version,
                counters,
                degraded,
                overloaded,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every request expressible on the legacy JSON wire round-trips
    /// the binary v2 codec to the identical struct: the two encodings
    /// are interchangeable views of the same `Request`.
    #[test]
    fn binary_and_json_request_encodings_are_equivalent(req in arb_request()) {
        let json = encode_request(&req).expect("json encodes");
        let via_json = decode_request(&json).expect("json decodes");
        let bin = encode_request_payload(&req);
        let via_bin = decode_request_payload(&bin).expect("binary decodes");
        prop_assert_eq!(&via_json, &req);
        prop_assert_eq!(&via_bin, &via_json);
    }

    /// Every response — including shed, degraded, error, and counters
    /// frames — round-trips the binary v2 codec to exactly what the
    /// legacy JSON codec produces.
    #[test]
    fn binary_and_json_response_encodings_are_equivalent(resp in arb_response()) {
        let json = encode_response(&resp).expect("json encodes");
        let via_json = decode_response(&json).expect("json decodes");
        let bin = encode_response_payload(&resp);
        let via_bin = decode_response_payload(&bin).expect("binary decodes");
        prop_assert_eq!(&via_json, &resp);
        prop_assert_eq!(&via_bin, &via_json);
    }

    /// Shed responses specifically survive the binary codec with the
    /// overloaded marker intact (the admission gate depends on it).
    #[test]
    fn shed_responses_round_trip_the_binary_codec(
        id in 0u64..u64::MAX,
        endpoint in "[a-z0-9./ -]{0,16}",
        version in 0u32..u32::MAX,
    ) {
        let resp = Response::shed(id, &endpoint, version);
        let bin = encode_response_payload(&resp);
        let back = decode_response_payload(&bin).expect("decodes");
        prop_assert!(back.overloaded);
        prop_assert_eq!(back, resp);
    }
}

/// Mixed versions over real TCP, driven through the full runtime
/// path: a parent pinned to the legacy JSON protocol
/// (`with_legacy_json`) interoperates with a v2 node, and a v2 parent
/// transparently falls back when its peer only speaks newline JSON.
#[test]
fn mixed_protocol_versions_interoperate_over_tcp() {
    // Legacy-pinned client -> v2 node.
    let node = spawn_node("affine", 1);
    let addr = node.local_addr().to_string();
    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine))
        .shards(0)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr)
                .with_legacy_json()
                .with_timeout(Duration::from_secs(5)),
        ));
    let runtime = b.build().expect("parent builds");
    assert_eq!(
        runtime
            .client()
            .predict_endpoint("affine", wire_rows(&[2.0]))
            .expect("legacy client serves through a v2 node"),
        vec![5.0]
    );

    // v2 client -> legacy node (a raw newline-JSON server).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
    let legacy_addr = listener.local_addr().expect("addr").to_string();
    let legacy = std::thread::spawn(move || {
        use std::io::{BufRead, BufReader, Write};
        let (stream, _) = listener.accept().expect("accepts");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let mut writer = stream;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return;
            }
            let trimmed = line.trim_end();
            let reply = match decode_request(trimmed) {
                Ok(req) => {
                    let scores = req
                        .rows
                        .iter()
                        .map(|row| match &row[0].1 {
                            Value::Float(x) => 3.0 * x - 1.0,
                            _ => f64::NAN,
                        })
                        .collect();
                    Response {
                        scores,
                        error: None,
                        ..Response::failure(req.id, "")
                    }
                }
                // The v2 preamble is not JSON: a legacy node answers
                // it with an in-band error line, which is exactly the
                // signal the v2 client falls back on.
                Err(e) => Response::failure(0, e.to_string()),
            };
            let wire = encode_response(&reply).expect("encodes");
            if writer.write_all(wire.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
                return;
            }
        }
    });
    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine))
        .shards(0)
        .shard_transport(Arc::new(
            RemoteWorker::new(&legacy_addr).with_timeout(Duration::from_secs(5)),
        ));
    let runtime = b.build().expect("parent builds");
    assert_eq!(
        runtime
            .client()
            .predict_endpoint("affine", wire_rows(&[4.0]))
            .expect("v2 client falls back to a legacy node"),
        vec![11.0]
    );
    drop(runtime);
    legacy.join().expect("legacy node thread exits");
}
