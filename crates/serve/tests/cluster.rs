//! Integration tests for the cluster control plane: automatic
//! re-admission of a killed-then-recovered node by the health prober,
//! live topology mutation (add/drain/remove) with zero in-flight
//! loss, node-level drain/join control frames, and the
//! statistics-driven coordinator's one-migration-per-cycle rule.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use willump_data::{Table, Value};
use willump_serve::{
    decode_request, encode_request, BreakerState, ClusterConfig, ClusterCoordinator,
    ControlRequest, InProcessWorker, RemoteRuntimeNode, RemoteWorker, Request, Servable,
    ServeError, ServerConfig, ServingRuntime, WireRow,
};

/// Deterministic predictor shared with the remote.rs suite: local and
/// remote shards provably answer identically.
struct Affine;
impl Servable for Affine {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs.into_iter().map(|x| 3.0 * x - 1.0).collect())
    }
}

fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
    xs.iter()
        .map(|&x| vec![("x".to_string(), Value::Float(x))])
        .collect()
}

/// A child runtime serving `Affine` under `name` on a loopback port.
fn spawn_node(name: &str, shards: usize) -> RemoteRuntimeNode {
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint(name, Arc::new(Affine)).shards(shards);
    RemoteRuntimeNode::bind("127.0.0.1:0", b.build().expect("child builds")).expect("node binds")
}

/// Rebind a node at the exact address a previous incarnation used
/// (retrying through the OS releasing the port).
fn respawn_node_at(addr: &str, name: &str, shards: usize) -> RemoteRuntimeNode {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(2).build());
        b.endpoint(name, Arc::new(Affine)).shards(shards);
        match RemoteRuntimeNode::bind(addr, b.build().expect("child builds")) {
            Ok(node) => return node,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not rebind {addr} within 10s: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// A key routed to shard `want` out of `domain` under key-hash
/// routing.
fn key_for_shard(want: usize, domain: usize) -> String {
    (0..10_000)
        .map(|i| format!("key-{i}"))
        .find(|k| willump_serve::shard_for_key(k, domain) == want)
        .expect("some key hashes to the wanted shard")
}

/// THE tentpole acceptance test: a runtime with 2 local + 2 remote
/// shards survives kill → recover of the remote node with **automatic
/// re-admission** — no restart, no manual call. The breaker cooldown
/// is set to 10 minutes, so time-based half-opening cannot re-admit
/// the node inside this test: only the cluster prober can, by
/// exercising `forward_probe` and closing the breaker on success.
#[test]
fn killed_node_is_re_admitted_by_the_prober() {
    let mut node = spawn_node("affine", 2);
    let addr = node.local_addr().to_string();

    let long = Duration::from_secs(600);
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint("affine", Arc::new(Affine))
        .shards(2)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long),
        ))
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long),
        ));
    let runtime = b.build().expect("runtime builds");
    let ep = runtime.endpoint("affine", 1).expect("endpoint exists");
    assert_eq!(ep.shards(), 4);
    let cluster = runtime.start_cluster(ClusterConfig {
        probe_interval: Duration::from_millis(10),
        ..ClusterConfig::default()
    });
    let client = runtime.client();

    // Remote shards serve while the node lives.
    let remote_key = key_for_shard(2, 4);
    assert_eq!(
        client
            .predict_keyed("affine", &remote_key, wire_rows(&[2.0]))
            .expect("remote shard serves"),
        vec![5.0]
    );
    assert!(runtime.stats().remote_forwards() >= 1);

    // Kill the node. Keyed requests fail over to local shards and the
    // breakers open (threshold 2, and each failed request tries both
    // slots).
    node.shutdown();
    for i in 0..3 {
        assert_eq!(
            client
                .predict_keyed("affine", &remote_key, wire_rows(&[i as f64]))
                .expect("fail-over keeps serving"),
            vec![3.0 * i as f64 - 1.0]
        );
    }
    assert!(runtime.stats().failovers() >= 3);
    assert!(
        ep.transport_breaker_states()
            .iter()
            .all(|s| *s != BreakerState::Closed),
        "breakers must leave Closed after repeated failures: {:?}",
        ep.transport_breaker_states()
    );

    // Recover the node at the same address. The prober must re-admit
    // it: breakers close with no restart and no manual call.
    let node2 = respawn_node_at(&addr, "affine", 2);
    let deadline = Instant::now() + Duration::from_secs(10);
    while ep
        .transport_breaker_states()
        .iter()
        .any(|s| *s != BreakerState::Closed)
    {
        assert!(
            Instant::now() < deadline,
            "prober did not re-admit the recovered node within 10s \
             (states {:?}, probes sent {})",
            ep.transport_breaker_states(),
            runtime.stats().probes_sent()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Re-admitted for real: the same key serves remotely again.
    let forwards_before = runtime.stats().remote_forwards();
    assert_eq!(
        client
            .predict_keyed("affine", &remote_key, wire_rows(&[4.0]))
            .expect("re-admitted shard serves"),
        vec![11.0]
    );
    assert!(runtime.stats().remote_forwards() > forwards_before);

    // Probe traffic is visible at every stats level and never counted
    // as forwards.
    assert!(runtime.stats().probes_sent() >= 1);
    assert!(runtime.stats().probes_ok() >= 1);
    assert!(ep.stats().probes_sent() >= 1);
    assert!(ep.stats().probes_ok() >= 1);
    let transport_probes: u64 = ep.transport_stats().iter().map(|t| t.probes_sent).sum();
    let transport_probes_ok: u64 = ep.transport_stats().iter().map(|t| t.probes_ok).sum();
    assert!(transport_probes >= 1);
    assert!(transport_probes_ok >= 1);
    assert_eq!(
        runtime.summed_endpoint_stats().probes_sent,
        runtime.stats().probes_sent()
    );

    cluster.stop();
    drop(node2);
}

/// Drain-under-load: while concurrent clients hammer a 2-local +
/// 2-remote endpoint, one remote shard is drained mid-stream. Not a
/// single request may fail — in-flight forwards complete on their own
/// slot handles, new requests re-map over the shrunk key-hash domain
/// — and the shard then rejoins live.
#[test]
fn drain_under_load_drops_nothing_then_rejoins() {
    let node = spawn_node("affine", 2);
    let addr = node.local_addr().to_string();

    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint("affine", Arc::new(Affine))
        .shards(2)
        .shard_remote(&addr)
        .shard_remote(&addr);
    let runtime = b.build().expect("runtime builds");
    let ep = runtime.endpoint("affine", 1).expect("endpoint exists");
    assert_eq!(ep.shards(), 4);

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..4u64 {
            let client = runtime.client();
            let stop = &stop;
            let served = &served;
            scope.spawn(move || {
                let mut i = worker;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("key-{i}");
                    let x = i as f64;
                    let scores = client
                        .predict_keyed("affine", &key, wire_rows(&[x]))
                        .expect("no request may fail during a drain");
                    assert_eq!(scores, vec![3.0 * x - 1.0]);
                    served.fetch_add(1, Ordering::Relaxed);
                    i += 4;
                }
            });
        }

        // Let load build, then drain remote shard 3 mid-stream.
        while served.load(Ordering::Relaxed) < 200 {
            std::thread::sleep(Duration::from_millis(1));
        }
        runtime
            .drain_shard("affine", 1, 3, Duration::from_secs(10))
            .expect("drain completes");
        assert_eq!(ep.shards(), 3);

        // Keep serving on the shrunk domain, then rejoin the shard.
        let mark = served.load(Ordering::Relaxed);
        while served.load(Ordering::Relaxed) < mark + 200 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let shard = runtime
            .add_remote_shard("affine", 1, Arc::new(RemoteWorker::new(&addr)))
            .expect("rejoin succeeds");
        assert_eq!(shard, 3);
        assert_eq!(ep.shards(), 4);

        let mark = served.load(Ordering::Relaxed);
        while served.load(Ordering::Relaxed) < mark + 200 {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // The rejoined slot starts with fresh per-shard counters and the
    // stats view tracks the live topology.
    assert_eq!(ep.stats().shard_requests().len(), 4);
    assert!(served.load(Ordering::Relaxed) >= 600);
    assert_eq!(runtime.stats().decode_errors(), 0);
    assert_eq!(runtime.stats().route_errors(), 0);
}

/// Live topology over in-process transports: `add_remote_shard`
/// extends the key-hash domain with the next request, draining a
/// local shard is refused, and out-of-range shards error cleanly.
#[test]
fn add_drain_remove_validate_shard_indices() {
    let mut backend_builder = ServingRuntime::builder();
    backend_builder.endpoint("m", Arc::new(Affine)).shards(1);
    let backend = backend_builder.build().expect("backend builds");

    let mut b = ServingRuntime::builder();
    b.endpoint("m", Arc::new(Affine)).shards(1);
    let runtime = b.build().expect("runtime builds");
    let ep = runtime.endpoint("m", 1).expect("endpoint exists");
    assert_eq!(ep.shards(), 1);

    let shard = runtime
        .add_remote_shard("m", 1, Arc::new(InProcessWorker::new(&backend)))
        .expect("attach in-process shard");
    assert_eq!(shard, 1);
    assert_eq!(ep.shards(), 2);
    assert_eq!(ep.stats().shard_requests().len(), 2);

    // The new slot serves: a key hashed to shard 1 forwards.
    let client = runtime.client();
    let key = key_for_shard(1, 2);
    assert_eq!(
        client
            .predict_keyed("m", &key, wire_rows(&[3.0]))
            .expect("remote slot serves"),
        vec![8.0]
    );
    assert_eq!(ep.stats().shard_requests()[1], 1);

    // Local shards cannot be drained or removed; bogus indices and
    // endpoints error cleanly.
    assert!(matches!(
        runtime.drain_shard("m", 1, 0, Duration::from_secs(1)),
        Err(ServeError::BadRequest { .. })
    ));
    assert!(matches!(
        runtime.remove_shard("m", 1, 9),
        Err(ServeError::BadRequest { .. })
    ));
    assert!(matches!(
        runtime.add_remote_shard("nope", 1, Arc::new(InProcessWorker::new(&backend))),
        Err(ServeError::BadRequest { .. })
    ));

    runtime.remove_shard("m", 1, 1).expect("remove detaches");
    assert_eq!(ep.shards(), 1);
    // All traffic re-maps onto the surviving local shard.
    assert_eq!(
        client
            .predict_keyed("m", &key, wire_rows(&[1.0]))
            .expect("local shard serves after removal"),
        vec![2.0]
    );
}

/// Drain / Join control frames flip node-level admission: a draining
/// node refuses new predictions with the Overloaded marker (so a
/// parent relays rather than fail-over-storms), keeps answering
/// control frames, and resumes on Join.
#[test]
fn drain_and_join_control_frames_flip_node_admission() {
    let mut b = ServingRuntime::builder();
    b.endpoint("affine", Arc::new(Affine)).shards(1);
    let runtime = b.build().expect("runtime builds");
    let client = runtime.client();

    assert!(!runtime.is_draining());
    let ack = client
        .call_request(Request::control_frame(7, ControlRequest::Drain))
        .expect("drain frame answered");
    assert_eq!(ack.id, 7);
    assert_eq!(ack.error, None);
    assert!(runtime.is_draining());

    // New predictions are refused with the Overloaded marker...
    let refused = client
        .call_request(Request {
            endpoint: Some("affine".to_string()),
            ..Request::new(8, wire_rows(&[1.0]))
        })
        .expect("draining node still answers");
    assert!(refused.overloaded);
    assert!(refused
        .error
        .expect("refusal names the cause")
        .contains("draining"));

    // ...while control frames still work (a parent can keep polling
    // counters during the wind-down).
    let counters = client
        .call_request(Request::control_frame(9, ControlRequest::Counters))
        .expect("counters probe answered while draining");
    assert!(counters.counters.is_some());

    // Join re-admits.
    let ack = client
        .call_request(Request::control_frame(10, ControlRequest::Join))
        .expect("join frame answered");
    assert_eq!(ack.error, None);
    assert!(!runtime.is_draining());
    assert_eq!(
        client
            .predict_keyed("affine", "k", wire_rows(&[2.0]))
            .expect("node serves again after Join"),
        vec![5.0]
    );

    // Leave behaves as Drain today (permanent-departure intent).
    client
        .call_request(Request::control_frame(11, ControlRequest::Leave))
        .expect("leave frame answered");
    assert!(runtime.is_draining());
}

/// The coordinator migrates **at most one** shard per rebalance
/// cycle: with both remote shards on a dead node and a healthy spare
/// registered, the first cycle moves exactly one shard, the second
/// moves the other.
#[test]
fn coordinator_migrates_at_most_one_shard_per_cycle() {
    let mut node_a = spawn_node("affine", 2);
    let addr_a = node_a.local_addr().to_string();
    let node_b = spawn_node("affine", 2);
    let addr_b = node_b.local_addr().to_string();

    let long = Duration::from_secs(600);
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.endpoint("affine", Arc::new(Affine))
        .shards(2)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr_a)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long),
        ))
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr_a)
                .with_timeout(Duration::from_secs(2))
                .with_breaker(2, long),
        ));
    let runtime = b.build().expect("runtime builds");
    let ep = runtime.endpoint("affine", 1).expect("endpoint exists");
    let client = runtime.client();

    // Kill node A and open its breakers with a few failed forwards.
    node_a.shutdown();
    let remote_key = key_for_shard(2, 4);
    for i in 0..3 {
        client
            .predict_keyed("affine", &remote_key, wire_rows(&[i as f64]))
            .expect("fail-over keeps serving");
    }
    assert!(ep.transport_breaker_states().contains(&BreakerState::Open));

    let mut coordinator = ClusterCoordinator::new();
    coordinator
        .register_node(&addr_a)
        .register_node(&addr_b)
        .drain_timeout(Duration::from_secs(2));

    // Cycle 1: exactly one shard leaves the dead node.
    let migration = coordinator
        .rebalance(&runtime)
        .expect("imbalance must trigger a migration");
    assert_eq!(migration.from, addr_a);
    assert_eq!(migration.to, addr_b);
    assert_eq!(migration.endpoint, "affine");
    let descs = ep.transport_descriptions();
    assert_eq!(descs.iter().filter(|d| d.contains(&addr_a)).count(), 1);
    assert_eq!(descs.iter().filter(|d| d.contains(&addr_b)).count(), 1);

    // Cycle 2: the remaining shard follows.
    coordinator
        .rebalance(&runtime)
        .expect("the dead node still scores hotter");
    let descs = ep.transport_descriptions();
    assert_eq!(descs.iter().filter(|d| d.contains(&addr_a)).count(), 0);
    assert_eq!(descs.iter().filter(|d| d.contains(&addr_b)).count(), 2);

    // Balanced now (node A hosts nothing): no further migration.
    assert_eq!(coordinator.rebalance(&runtime), None);

    // The migrated shards actually serve on node B.
    assert_eq!(
        client
            .predict_keyed("affine", &key_for_shard(2, 4), wire_rows(&[5.0]))
            .expect("migrated shard serves"),
        vec![14.0]
    );
    drop(node_b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every lifecycle control frame survives the JSON wire (the
    /// legacy protocol), and a legacy router's frame with the control
    /// field stripped still decodes with no control op.
    #[test]
    fn control_frames_round_trip_json_and_strip_to_legacy(
        id in 1u64..u64::MAX,
        op in prop_oneof![
            Just(ControlRequest::Counters),
            Just(ControlRequest::Join),
            Just(ControlRequest::Drain),
            Just(ControlRequest::Leave),
        ],
    ) {
        let req = Request::control_frame(id, op);
        let wire = encode_request(&req).expect("encodable");
        let back = decode_request(&wire).expect("decodable");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.control, Some(op));

        // A legacy peer's frame carries no control field at all.
        let stripped = wire
            .replace(&format!(",\"control\":\"{op:?}\""), "")
            .replace(",\"control\":null", "");
        let legacy = decode_request(&stripped).expect("legacy frame decodes");
        prop_assert_eq!(legacy.control, None);

        // An unknown variant from a *newer* peer is a decode error on
        // this build, not a silent misroute.
        let bogus = wire.replace(&format!("\"{op:?}\""), "\"Frobnicate\"");
        prop_assert!(decode_request(&bogus).is_err());
    }
}
