//! Integration tests for the serving layer: wire-protocol round-trip
//! properties and coalesced-vs-sequential serving equivalence.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

use willump_data::{Table, Value};
use willump_serve::{
    decode_request, decode_response, encode_request, encode_response, ClipperServer, Request,
    Response, Servable, ServerConfig, WireRow,
};

/// Build a request whose rows exercise every wire-representable value
/// shape: strings (arbitrary printable content), finite floats, ints,
/// and bools.
fn build_request(id: u64, cells: Vec<(String, f64, i64, bool)>) -> Request {
    let rows = cells
        .into_iter()
        .map(|(s, f, i, b)| {
            vec![
                ("text".to_string(), Value::from(s.as_str())),
                ("score".to_string(), Value::Float(f)),
                ("count".to_string(), Value::Int(i)),
                ("flag".to_string(), Value::Bool(b)),
            ]
        })
        .collect();
    Request { id, rows }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Request wire round-trip is lossless for arbitrary strings,
    /// finite floats, ints, and bools.
    #[test]
    fn request_wire_round_trip_is_lossless(
        id in 1u64..u64::MAX,
        cells in prop::collection::vec(
            (".{0,24}", -1e12f64..1e12, any::<i64>(), any::<bool>()),
            1..6,
        ),
    ) {
        let req = build_request(id, cells);
        let wire = encode_request(&req).expect("encodable");
        let back = decode_request(&wire).expect("decodable");
        prop_assert_eq!(req, back);
    }

    /// Response wire round-trip is lossless for arbitrary scores and
    /// error strings (including quotes/backslashes the seed's
    /// hand-built fallback JSON used to mangle).
    #[test]
    fn response_wire_round_trip_is_lossless(
        id in 0u64..u64::MAX,
        scores in prop::collection::vec(-1e12f64..1e12, 0..8),
        error in ".{0,48}",
        has_error in any::<bool>(),
    ) {
        let resp = Response {
            id,
            scores,
            error: if has_error { Some(error) } else { None },
        };
        let wire = encode_response(&resp).expect("encodable");
        let back = decode_response(&wire).expect("decodable");
        prop_assert_eq!(resp, back);
    }
}

/// A predictor with a visible formula, so expected scores can be
/// computed independently of the serving path.
struct AffineSummer;
impl Servable for AffineSummer {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        let ys = table
            .column("y")
            .ok_or_else(|| "missing y".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| 3.0 * x - 0.5 * y + 1.0)
            .collect())
    }
}

fn wire_row(x: f64, y: f64) -> WireRow {
    vec![
        ("x".to_string(), Value::Float(x)),
        ("y".to_string(), Value::Float(y)),
    ]
}

/// Coalesced multi-request batches must score identically to
/// sequential single-request serving: pile concurrent requests behind
/// a slow first call so they merge, then compare every score against
/// the sequential answer bit-for-bit.
#[test]
fn coalesced_batches_equal_sequential_serving() {
    struct Slowed<S>(S, Duration);
    impl<S: Servable> Servable for Slowed<S> {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            std::thread::sleep(self.1);
            self.0.predict_table(table)
        }
    }

    // Sequential reference: one request at a time, coalescing moot.
    let sequential = ClipperServer::start(Arc::new(AffineSummer), ServerConfig::default());
    let seq_client = sequential.client();
    let inputs: Vec<Vec<(f64, f64)>> = (0..12)
        .map(|t| {
            (0..=(t % 3))
                .map(|r| (t as f64 + r as f64 * 0.25, 2.0 - t as f64 * 0.5))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<f64>> = inputs
        .iter()
        .map(|req| {
            seq_client
                .predict(req.iter().map(|&(x, y)| wire_row(x, y)).collect())
                .expect("sequential serving succeeds")
        })
        .collect();

    // Concurrent: same requests, forced to pile up and coalesce.
    let server = ClipperServer::start(
        Arc::new(Slowed(AffineSummer, Duration::from_millis(400))),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let results: Vec<Vec<f64>> = std::thread::scope(|s| {
        let blocker = server.client();
        let warm = s.spawn(move || blocker.predict(vec![wire_row(0.0, 0.0)]));
        // Generous margin: the 12 clients only need to enqueue while
        // the blocker holds a worker for 400ms.
        std::thread::sleep(Duration::from_millis(100));
        let handles: Vec<_> = inputs
            .iter()
            .map(|req| {
                let client = server.client();
                s.spawn(move || {
                    client
                        .predict(req.iter().map(|&(x, y)| wire_row(x, y)).collect())
                        .expect("concurrent serving succeeds")
                })
            })
            .collect();
        warm.join().unwrap().unwrap();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(results, expected);
    // The pile-up really did merge requests into model-level batches.
    assert!(
        server.stats().coalesced_rows() > 0,
        "no coalescing happened: {:?}",
        server.stats()
    );
}

/// Shutting down under load: every admitted request is answered, and
/// late requests fail cleanly with `Disconnected` instead of hanging.
#[test]
fn shutdown_under_load_answers_admitted_requests() {
    let mut server = ClipperServer::start(
        Arc::new(AffineSummer),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    );
    let clients: Vec<_> = (0..6).map(|_| server.client()).collect();
    std::thread::scope(|s| {
        for (t, client) in clients.iter().enumerate() {
            s.spawn(move || {
                for i in 0..10 {
                    let x = (t * 10 + i) as f64;
                    match client.predict(vec![wire_row(x, 1.0)]) {
                        Ok(scores) => assert_eq!(scores, vec![3.0 * x - 0.5 + 1.0]),
                        // Acceptable once the gate has closed — but it
                        // must be an error, never a hang.
                        Err(willump_serve::ServeError::Disconnected) => {}
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(5));
        server.shutdown();
    });
    assert!(matches!(
        clients[0].predict(vec![wire_row(1.0, 1.0)]),
        Err(willump_serve::ServeError::Disconnected)
    ));
}
