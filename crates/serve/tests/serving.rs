//! Integration tests for the serving layer: wire-protocol round-trip
//! properties and coalesced-vs-sequential serving equivalence.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

use willump_data::{Table, Value};
use willump_serve::{
    decode_request, decode_response, encode_request, encode_response, ClipperServer, Request,
    Response, Servable, ServerConfig, WireRow,
};

/// Build a request whose rows exercise every wire-representable value
/// shape: strings (arbitrary printable content), finite floats, ints,
/// and bools.
fn build_request(id: u64, cells: Vec<(String, f64, i64, bool)>) -> Request {
    let rows = cells
        .into_iter()
        .map(|(s, f, i, b)| {
            vec![
                ("text".to_string(), Value::from(s.as_str())),
                ("score".to_string(), Value::Float(f)),
                ("count".to_string(), Value::Int(i)),
                ("flag".to_string(), Value::Bool(b)),
            ]
        })
        .collect();
    Request { id, rows }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Request wire round-trip is lossless for arbitrary strings,
    /// finite floats, ints, and bools.
    #[test]
    fn request_wire_round_trip_is_lossless(
        id in 1u64..u64::MAX,
        cells in prop::collection::vec(
            (".{0,24}", -1e12f64..1e12, any::<i64>(), any::<bool>()),
            1..6,
        ),
    ) {
        let req = build_request(id, cells);
        let wire = encode_request(&req).expect("encodable");
        let back = decode_request(&wire).expect("decodable");
        prop_assert_eq!(req, back);
    }

    /// Response wire round-trip is lossless for arbitrary scores and
    /// error strings (including quotes/backslashes the seed's
    /// hand-built fallback JSON used to mangle).
    #[test]
    fn response_wire_round_trip_is_lossless(
        id in 0u64..u64::MAX,
        scores in prop::collection::vec(-1e12f64..1e12, 0..8),
        error in ".{0,48}",
        has_error in any::<bool>(),
    ) {
        let resp = Response {
            id,
            scores,
            error: if has_error { Some(error) } else { None },
        };
        let wire = encode_response(&resp).expect("encodable");
        let back = decode_response(&wire).expect("decodable");
        prop_assert_eq!(resp, back);
    }
}

/// A predictor with a visible formula, so expected scores can be
/// computed independently of the serving path.
struct AffineSummer;
impl Servable for AffineSummer {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        let ys = table
            .column("y")
            .ok_or_else(|| "missing y".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| 3.0 * x - 0.5 * y + 1.0)
            .collect())
    }
}

fn wire_row(x: f64, y: f64) -> WireRow {
    vec![
        ("x".to_string(), Value::Float(x)),
        ("y".to_string(), Value::Float(y)),
    ]
}

/// Coalesced multi-request batches must score identically to
/// sequential single-request serving: pile concurrent requests behind
/// a slow first call so they merge, then compare every score against
/// the sequential answer bit-for-bit.
#[test]
fn coalesced_batches_equal_sequential_serving() {
    struct Slowed<S>(S, Duration);
    impl<S: Servable> Servable for Slowed<S> {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            std::thread::sleep(self.1);
            self.0.predict_table(table)
        }
    }

    // Sequential reference: one request at a time, coalescing moot.
    let sequential = ClipperServer::start(Arc::new(AffineSummer), ServerConfig::default());
    let seq_client = sequential.client();
    let inputs: Vec<Vec<(f64, f64)>> = (0..12)
        .map(|t| {
            (0..=(t % 3))
                .map(|r| (t as f64 + r as f64 * 0.25, 2.0 - t as f64 * 0.5))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<f64>> = inputs
        .iter()
        .map(|req| {
            seq_client
                .predict(req.iter().map(|&(x, y)| wire_row(x, y)).collect())
                .expect("sequential serving succeeds")
        })
        .collect();

    // Concurrent: same requests, forced to pile up and coalesce.
    let server = ClipperServer::start(
        Arc::new(Slowed(AffineSummer, Duration::from_millis(400))),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let results: Vec<Vec<f64>> = std::thread::scope(|s| {
        let blocker = server.client();
        let warm = s.spawn(move || blocker.predict(vec![wire_row(0.0, 0.0)]));
        // Generous margin: the 12 clients only need to enqueue while
        // the blocker holds a worker for 400ms.
        std::thread::sleep(Duration::from_millis(100));
        let handles: Vec<_> = inputs
            .iter()
            .map(|req| {
                let client = server.client();
                s.spawn(move || {
                    client
                        .predict(req.iter().map(|&(x, y)| wire_row(x, y)).collect())
                        .expect("concurrent serving succeeds")
                })
            })
            .collect();
        warm.join().unwrap().unwrap();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(results, expected);
    // The pile-up really did merge requests into model-level batches.
    assert!(
        server.stats().coalesced_rows() > 0,
        "no coalescing happened: {:?}",
        server.stats()
    );
}

/// A composed serving plan — cascade confidence gate + end-to-end
/// cache + top-K filter in ONE plan — served through the Clipper-like
/// server as a single `Servable`. This is the composition the
/// pre-plan wrapper structs could not express: scores round-trip the
/// JSON boundary, repeats hit the shared cache, and the batch answer
/// matches a direct local run bit-for-bit.
#[test]
fn composed_plan_serves_through_clipper_server() {
    use willump::{ServingPlan, TopKConfig};
    use willump_data::Column;
    use willump_graph::{EngineMode, Executor, GraphBuilder, Operator};
    use willump_models::{LogisticParams, ModelSpec};
    use willump_serve::table_row_to_wire;

    // Two numeric feature generators; FG0 carries the easy signal.
    let mut b = GraphBuilder::new();
    let a = b.source("a");
    let c = b.source("b");
    let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
    let f1 = b.add("f1", Operator::NumericColumn, [c]).unwrap();
    let graph = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
    let exec = Executor::new(graph, EngineMode::Compiled).unwrap();

    // Every row gets a unique (a, b) pair, so the end-to-end cache
    // keys are one-per-row (duplicate keys would be legitimate but
    // make per-row repeat expectations ambiguous).
    let mut avals = Vec::new();
    let mut bvals = Vec::new();
    let mut labels = Vec::new();
    for i in 0..200 {
        let y = (i % 2) as f64;
        let jitter = i as f64 * 1e-4;
        if i % 3 != 0 {
            avals.push(if y > 0.5 { 3.0 + jitter } else { -3.0 - jitter });
            bvals.push(jitter);
        } else {
            avals.push(jitter * 0.1);
            bvals.push(if y > 0.5 { 2.0 + jitter } else { -2.0 - jitter });
        }
        labels.push(y);
    }
    let mut t = Table::new();
    t.add_column("a", Column::from(avals)).unwrap();
    t.add_column("b", Column::from(bvals)).unwrap();

    let full_feats = exec.features_batch(&t, None).unwrap();
    let full = Arc::new(
        ModelSpec::Logistic(LogisticParams::default())
            .fit(&full_feats, &labels, 1)
            .unwrap(),
    );
    let eff_feats = exec.features_batch(&t, Some(&[0])).unwrap();
    let small = Arc::new(
        ModelSpec::Logistic(LogisticParams::default())
            .fit(&eff_feats, &labels, 1)
            .unwrap(),
    );

    // Cascade + e2e cache + top-K: one composed plan.
    let plan = ServingPlan::top_k_filter(exec, small, full, 10, TopKConfig::default(), vec![0])
        .unwrap()
        .with_confidence_gate(0.9)
        .unwrap()
        .with_e2e_cache(vec!["a".to_string(), "b".to_string()], None)
        .unwrap();

    // Local reference run, then serve the same batch through the
    // server (the plan clone shares the cache, so clear it first to
    // make the served run's hit pattern match the local one's).
    let local = plan.predict_batch(&t).unwrap();
    plan.clear_cache();

    let served_plan = plan.clone();
    let server = ClipperServer::start(
        Arc::new(served_plan),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let rows: Vec<WireRow> = (0..t.n_rows())
        .map(|r| table_row_to_wire(&t, r).unwrap())
        .collect();
    let scores = client.predict(rows.clone()).unwrap();
    assert_eq!(scores, local);

    // The composed plan resolved rows through every mechanism.
    assert!(plan.counters().filter_dropped() > 0, "filter never ran");
    assert!(plan.counters().escalated() > 0, "nothing escalated");

    // Rows the filter kept were cached with their final (gate or full)
    // scores; filter-dropped rows were deliberately NOT cached (their
    // filter score is "not in the top K", not an answer). Warm the
    // remainder with a local run through the shared cache, then a
    // repeat request through the server must be answered entirely
    // from cache and match that warmed run exactly.
    let hits_before_warm = plan.cache_hits();
    let warmed = plan.predict_batch(&t).unwrap();
    assert!(
        plan.cache_hits() > hits_before_warm,
        "warm run should hit the kept candidates' cached scores"
    );
    let hits_before_repeat = plan.cache_hits();
    let again = client.predict(rows).unwrap();
    assert_eq!(again, warmed);
    assert!(
        plan.cache_hits() >= hits_before_repeat + t.n_rows() as u64,
        "repeat batch should hit the e2e cache for every row"
    );
    assert_eq!(server.stats().requests(), 2);
}

/// Bandit-routed selection across whole serving plans: two lowered
/// full-model plans behind a `ModelSelector`, served as one
/// `Servable`.
#[test]
fn model_selector_routes_across_plans() {
    use willump::ServingPlan;
    use willump_data::Column;
    use willump_graph::{EngineMode, Executor, GraphBuilder, Operator};
    use willump_models::{LogisticParams, ModelSpec};
    use willump_serve::{table_row_to_wire, ModelSelector, SelectionPolicy};

    let mut b = GraphBuilder::new();
    let a = b.source("a");
    let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
    let graph = Arc::new(b.finish_with_concat("cat", [f0]).unwrap());
    let exec = Executor::new(graph, EngineMode::Compiled).unwrap();

    let mut t = Table::new();
    let avals: Vec<f64> = (0..80)
        .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
        .collect();
    let y: Vec<f64> = (0..80).map(|i| (i % 2) as f64).collect();
    let y_flip: Vec<f64> = y.iter().map(|v| 1.0 - v).collect();
    t.add_column("a", Column::from(avals)).unwrap();

    let feats = exec.features_batch(&t, None).unwrap();
    let good = Arc::new(
        ModelSpec::Logistic(LogisticParams::default())
            .fit(&feats, &y, 1)
            .unwrap(),
    );
    let bad = Arc::new(
        ModelSpec::Logistic(LogisticParams::default())
            .fit(&feats, &y_flip, 1)
            .unwrap(),
    );
    let selector = ModelSelector::from_plans(
        vec![
            (
                "good".to_string(),
                ServingPlan::full_model_plan(exec.clone(), good),
            ),
            ("bad".to_string(), ServingPlan::full_model_plan(exec, bad)),
        ],
        SelectionPolicy::Ucb1,
        7,
    )
    .unwrap();
    assert_eq!(selector.n_models(), 2);

    let server = ClipperServer::start(Arc::new(selector), ServerConfig::default());
    let client = server.client();
    let rows: Vec<WireRow> = (0..4).map(|r| table_row_to_wire(&t, r).unwrap()).collect();
    for _ in 0..3 {
        let scores = client.predict(rows.clone()).unwrap();
        assert_eq!(scores.len(), 4);
    }
    assert_eq!(server.stats().requests(), 3);
}

/// Shutting down under load: every admitted request is answered, and
/// late requests fail cleanly with `Disconnected` instead of hanging.
#[test]
fn shutdown_under_load_answers_admitted_requests() {
    let mut server = ClipperServer::start(
        Arc::new(AffineSummer),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    );
    let clients: Vec<_> = (0..6).map(|_| server.client()).collect();
    std::thread::scope(|s| {
        for (t, client) in clients.iter().enumerate() {
            s.spawn(move || {
                for i in 0..10 {
                    let x = (t * 10 + i) as f64;
                    match client.predict(vec![wire_row(x, 1.0)]) {
                        Ok(scores) => assert_eq!(scores, vec![3.0 * x - 0.5 + 1.0]),
                        // Acceptable once the gate has closed — but it
                        // must be an error, never a hang.
                        Err(willump_serve::ServeError::Disconnected) => {}
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(5));
        server.shutdown();
    });
    assert!(matches!(
        clients[0].predict(vec![wire_row(1.0, 1.0)]),
        Err(willump_serve::ServeError::Disconnected)
    ));
}
