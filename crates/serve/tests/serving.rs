//! Integration tests for the serving layer: wire-protocol round-trip
//! properties (including the multi-endpoint addressing fields),
//! coalesced-vs-sequential serving equivalence, and the
//! `ServingRuntime`'s routing, sharding, and scheduling behavior.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

use willump_data::{Table, Value};
use willump_serve::{
    decode_request, decode_response, encode_request, encode_response, ClipperServer,
    EndpointStatsSnapshot, Request, Response, Servable, ServerConfig, ServingRuntime, WireRow,
};

/// Build a request whose rows exercise every wire-representable value
/// shape: strings (arbitrary printable content), finite floats, ints,
/// and bools.
fn build_request(id: u64, cells: Vec<(String, f64, i64, bool)>) -> Request {
    let rows = cells
        .into_iter()
        .map(|(s, f, i, b)| {
            vec![
                ("text".to_string(), Value::from(s.as_str())),
                ("score".to_string(), Value::Float(f)),
                ("count".to_string(), Value::Int(i)),
                ("flag".to_string(), Value::Bool(b)),
            ]
        })
        .collect();
    Request::new(id, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Request wire round-trip is lossless for arbitrary strings,
    /// finite floats, ints, and bools — with or without the endpoint
    /// addressing fields (endpoint name, version pin, routing key).
    #[test]
    fn request_wire_round_trip_is_lossless(
        id in 1u64..u64::MAX,
        cells in prop::collection::vec(
            (".{0,24}", -1e12f64..1e12, any::<i64>(), any::<bool>()),
            1..6,
        ),
        endpoint in (any::<bool>(), ".{0,16}"),
        version in (any::<bool>(), 0u32..u32::MAX),
        key in (any::<bool>(), ".{0,16}"),
    ) {
        let mut req = build_request(id, cells);
        req.endpoint = endpoint.0.then_some(endpoint.1);
        req.version = version.0.then_some(version.1);
        req.key = key.0.then_some(key.1);
        let wire = encode_request(&req).expect("encodable");
        let back = decode_request(&wire).expect("decodable");
        prop_assert_eq!(req, back);
    }

    /// Response wire round-trip is lossless for arbitrary scores and
    /// error strings (including quotes/backslashes the seed's
    /// hand-built fallback JSON used to mangle), with or without the
    /// endpoint/version echo.
    #[test]
    fn response_wire_round_trip_is_lossless(
        id in 0u64..u64::MAX,
        scores in prop::collection::vec(-1e12f64..1e12, 0..8),
        error in (any::<bool>(), ".{0,48}"),
        endpoint in (any::<bool>(), ".{0,16}"),
        version in (any::<bool>(), 0u32..u32::MAX),
        degraded in any::<bool>(),
        overloaded in any::<bool>(),
    ) {
        let resp = Response {
            id,
            scores,
            error: error.0.then_some(error.1),
            endpoint: endpoint.0.then_some(endpoint.1),
            version: version.0.then_some(version.1),
            counters: None,
            degraded,
            overloaded,
        };
        let wire = encode_response(&resp).expect("encodable");
        let back = decode_response(&wire).expect("decodable");
        prop_assert_eq!(resp, back);
    }

    /// Every encoded addressed request, re-encoded after stripping the
    /// addressing fields the way a legacy client would have sent it,
    /// still decodes — and the stripped frame routes exactly like
    /// `Request::new` (all addressing fields `None`).
    #[test]
    fn legacy_frames_always_decode(
        id in 1u64..u64::MAX,
        cells in prop::collection::vec(
            (".{0,12}", -1e6f64..1e6, any::<i64>(), any::<bool>()),
            1..4,
        ),
    ) {
        let req = build_request(id, cells);
        // The modern encoder emits endpoint/version/key (as null); a
        // legacy frame omits the fields entirely. Rebuild the legacy
        // wire form by dropping them textually.
        let legacy = encode_request(&req)
            .expect("encodable")
            .replace(",\"endpoint\":null", "")
            .replace(",\"version\":null", "")
            .replace(",\"key\":null", "");
        let back = decode_request(&legacy).expect("legacy frame decodes");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.endpoint, None);
        prop_assert_eq!(back.version, None);
        prop_assert_eq!(back.key, None);
    }
}

/// A predictor with a visible formula, so expected scores can be
/// computed independently of the serving path.
struct AffineSummer;
impl Servable for AffineSummer {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        let ys = table
            .column("y")
            .ok_or_else(|| "missing y".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| 3.0 * x - 0.5 * y + 1.0)
            .collect())
    }
}

fn wire_row(x: f64, y: f64) -> WireRow {
    vec![
        ("x".to_string(), Value::Float(x)),
        ("y".to_string(), Value::Float(y)),
    ]
}

/// Coalesced multi-request batches must score identically to
/// sequential single-request serving: pile concurrent requests behind
/// a slow first call so they merge, then compare every score against
/// the sequential answer bit-for-bit.
#[test]
fn coalesced_batches_equal_sequential_serving() {
    struct Slowed<S>(S, Duration);
    impl<S: Servable> Servable for Slowed<S> {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            std::thread::sleep(self.1);
            self.0.predict_table(table)
        }
    }

    // Sequential reference: one request at a time, coalescing moot.
    let sequential = ClipperServer::start(Arc::new(AffineSummer), ServerConfig::default());
    let seq_client = sequential.client();
    let inputs: Vec<Vec<(f64, f64)>> = (0..12)
        .map(|t| {
            (0..=(t % 3))
                .map(|r| (t as f64 + r as f64 * 0.25, 2.0 - t as f64 * 0.5))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<f64>> = inputs
        .iter()
        .map(|req| {
            seq_client
                .predict(req.iter().map(|&(x, y)| wire_row(x, y)).collect())
                .expect("sequential serving succeeds")
        })
        .collect();

    // Concurrent: same requests, forced to pile up and coalesce. A
    // single worker guarantees the pile-up lands on one queue.
    let server = ClipperServer::start(
        Arc::new(Slowed(AffineSummer, Duration::from_millis(400))),
        ServerConfig::default(),
    );
    let results: Vec<Vec<f64>> = std::thread::scope(|s| {
        let blocker = server.client();
        let warm = s.spawn(move || blocker.predict(vec![wire_row(0.0, 0.0)]));
        // Generous margin: the 12 clients only need to enqueue while
        // the blocker holds the worker for 400ms.
        std::thread::sleep(Duration::from_millis(100));
        let handles: Vec<_> = inputs
            .iter()
            .map(|req| {
                let client = server.client();
                s.spawn(move || {
                    client
                        .predict(req.iter().map(|&(x, y)| wire_row(x, y)).collect())
                        .expect("concurrent serving succeeds")
                })
            })
            .collect();
        warm.join().unwrap().unwrap();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(results, expected);
    // The pile-up really did merge requests into model-level batches.
    assert!(
        server.stats().coalesced_rows() > 0,
        "no coalescing happened: {:?}",
        server.stats()
    );
}

/// Synthetic two-feature-generator workload shared by the plan-serving
/// tests: FG0 carries the easy signal, FG1 is needed for hard rows.
mod plan_fixture {
    use std::sync::Arc;
    use willump::ServingPlan;
    use willump_data::{Column, Table};
    use willump_graph::{EngineMode, Executor, GraphBuilder, Operator};
    use willump_models::{LogisticParams, ModelSpec, TrainedModel};

    pub fn executor() -> Executor {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        let f1 = b.add("f1", Operator::NumericColumn, [c]).unwrap();
        let graph = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
        Executor::new(graph, EngineMode::Compiled).unwrap()
    }

    pub fn table(n: usize) -> (Table, Vec<f64>) {
        let mut avals = Vec::new();
        let mut bvals = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = (i % 2) as f64;
            let jitter = i as f64 * 1e-4;
            if i % 3 != 0 {
                avals.push(if y > 0.5 { 3.0 + jitter } else { -3.0 - jitter });
                bvals.push(jitter);
            } else {
                avals.push(jitter * 0.1);
                bvals.push(if y > 0.5 { 2.0 + jitter } else { -2.0 - jitter });
            }
            labels.push(y);
        }
        let mut t = Table::new();
        t.add_column("a", Column::from(avals)).unwrap();
        t.add_column("b", Column::from(bvals)).unwrap();
        (t, labels)
    }

    pub fn models(exec: &Executor, t: &Table, y: &[f64]) -> (Arc<TrainedModel>, Arc<TrainedModel>) {
        let full_feats = exec.features_batch(t, None).unwrap();
        let full = Arc::new(
            ModelSpec::Logistic(LogisticParams::default())
                .fit(&full_feats, y, 1)
                .unwrap(),
        );
        let eff_feats = exec.features_batch(t, Some(&[0])).unwrap();
        let small = Arc::new(
            ModelSpec::Logistic(LogisticParams::default())
                .fit(&eff_feats, y, 1)
                .unwrap(),
        );
        (small, full)
    }

    /// A cascade plan with the given confidence threshold.
    pub fn cascade(threshold: f64) -> (ServingPlan, Table) {
        let exec = executor();
        let (t, y) = table(120);
        let (small, full) = models(&exec, &t, &y);
        let plan = ServingPlan::cascade(exec, small, full, threshold, vec![0]).unwrap();
        (plan, t)
    }
}

/// THE acceptance test for the multi-endpoint redesign: one
/// `ServingRuntime` serves a cascade plan and a top-K plan as two
/// named endpoints with two shards each, behind one client — and for
/// each, the legacy `ClipperServer` shim (wrapping a clone of the
/// same plan) returns bit-identical predictions.
#[test]
fn runtime_serves_two_endpoints_identically_to_clipper_shims() {
    use willump::{ServingPlan, TopKConfig};

    let exec = plan_fixture::executor();
    let (t, y) = plan_fixture::table(200);
    let (small, full) = plan_fixture::models(&exec, &t, &y);

    let cascade =
        ServingPlan::cascade(exec.clone(), small.clone(), full.clone(), 0.9, vec![0]).unwrap();
    let topk =
        ServingPlan::top_k_filter(exec, small, full, 10, TopKConfig::default(), vec![0]).unwrap();

    // One runtime, two named endpoints, two shards each.
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(2).build());
    b.plan("cascade", cascade.clone()).shards(2);
    b.plan("topk", topk.clone()).shards(2);
    let runtime = b.build().expect("runtime builds");
    assert_eq!(runtime.endpoints().len(), 2);
    assert!(runtime.endpoints().iter().all(|e| e.shards() == 2));

    // Legacy shims over clones of the same plans.
    let shim_cascade = ClipperServer::start(Arc::new(cascade), ServerConfig::default());
    let shim_topk = ClipperServer::start(Arc::new(topk), ServerConfig::default());

    let client = runtime.client();
    let rows: Vec<WireRow> = (0..t.n_rows())
        .map(|r| willump_serve::table_row_to_wire(&t, r).unwrap())
        .collect();

    let rt_cascade = client
        .predict_endpoint("cascade", rows.clone())
        .expect("runtime cascade serves");
    let rt_topk = client
        .predict_endpoint("topk", rows.clone())
        .expect("runtime topk serves");
    let shim_cascade_scores = shim_cascade.client().predict(rows.clone()).unwrap();
    let shim_topk_scores = shim_topk.client().predict(rows).unwrap();

    assert_eq!(rt_cascade, shim_cascade_scores);
    assert_eq!(rt_topk, shim_topk_scores);

    // Both endpoints really served through the one runtime.
    assert_eq!(runtime.stats().requests(), 2);
    assert_eq!(
        runtime.endpoint("cascade", 1).unwrap().stats().requests(),
        1
    );
    assert_eq!(runtime.endpoint("topk", 1).unwrap().stats().requests(), 1);
}

/// The statistics-aware scheduler: an endpoint whose `PlanCounters`
/// show heavy escalation is moved onto the dedicated worker tail,
/// disjoint from the light endpoint's workers.
#[test]
fn escalation_heavy_endpoint_gets_dedicated_workers() {
    use willump_serve::SchedulerPolicy;

    // Threshold 1.0: the gate `max(s, 1-s) > 1` never fires, so every
    // row escalates (rate 1.0). Threshold 0.0: every row resolves at
    // the gate (rate 0.0).
    let (heavy_plan, heavy_t) = plan_fixture::cascade(1.0);
    let (light_plan, light_t) = plan_fixture::cascade(0.0);

    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(4).build());
    b.scheduler(SchedulerPolicy::EscalationAware {
        threshold: 0.5,
        dedicated_workers: 2,
    });
    b.rebalance_every(0); // manual rebalance only, for determinism
    b.plan("heavy", heavy_plan.clone()).shards(2);
    b.plan("light", light_plan.clone()).shards(2);
    let runtime = b.build().unwrap();

    // Before any statistics: nobody is heavy, shards spread over the
    // whole pool.
    let initial: Vec<usize> = runtime
        .endpoints()
        .iter()
        .flat_map(|e| e.assignment())
        .collect();
    assert_eq!(initial, vec![0, 1, 2, 3]);

    // Drive traffic so the shared counters fill (plan clones share
    // their `PlanCounters`, so running the local clones is equivalent
    // to serving through the runtime).
    heavy_plan.predict_batch(&heavy_t).unwrap();
    light_plan.predict_batch(&light_t).unwrap();
    let heavy_ep = runtime.endpoint("heavy", 1).unwrap();
    let light_ep = runtime.endpoint("light", 1).unwrap();
    assert!(heavy_ep.escalation_rate() > 0.99, "all rows escalate");
    assert!(light_ep.escalation_rate() < 0.01, "no rows escalate");

    runtime.rebalance();

    // Heavy shards now live on the dedicated tail {2, 3}; light
    // shards on the shared head {0, 1}; the sets are disjoint.
    let heavy_workers = heavy_ep.assignment();
    let light_workers = light_ep.assignment();
    assert!(
        heavy_workers.iter().all(|&w| w >= 2),
        "heavy endpoint must use the dedicated tail, got {heavy_workers:?}"
    );
    assert!(
        light_workers.iter().all(|&w| w < 2),
        "light endpoint must stay on the shared head, got {light_workers:?}"
    );

    // Serving still works after the rebalance, on both endpoints.
    let client = runtime.client();
    let rows: Vec<WireRow> = (0..4)
        .map(|r| willump_serve::table_row_to_wire(&heavy_t, r).unwrap())
        .collect();
    assert_eq!(
        client
            .predict_endpoint("heavy", rows.clone())
            .unwrap()
            .len(),
        4
    );
    assert_eq!(client.predict_endpoint("light", rows).unwrap().len(), 4);
}

/// Per-endpoint counters must sum to the global counters under
/// concurrent clients hitting different endpoints.
#[test]
fn endpoint_stats_sum_to_global_stats_under_concurrency() {
    struct Scale(f64);
    impl Servable for Scale {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            let xs = table
                .column("x")
                .ok_or("missing x")?
                .to_f64_vec()
                .map_err(|e| e.to_string())?;
            Ok(xs.into_iter().map(|x| x * self.0).collect())
        }
    }
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(3).build());
    b.endpoint("double", Arc::new(Scale(2.0))).shards(3);
    b.endpoint("triple", Arc::new(Scale(3.0))).shards(2);
    let runtime = b.build().unwrap();

    std::thread::scope(|s| {
        for t in 0..6 {
            let client = runtime.client();
            s.spawn(move || {
                let (name, factor) = if t % 2 == 0 {
                    ("double", 2.0)
                } else {
                    ("triple", 3.0)
                };
                for i in 0..20 {
                    let x = (t * 20 + i) as f64;
                    let rows = vec![vec![("x".to_string(), Value::Float(x))]];
                    let scores = client
                        .predict_keyed(name, &format!("k{t}-{i}"), rows)
                        .unwrap();
                    assert_eq!(scores, vec![factor * x]);
                }
            });
        }
    });

    let global = runtime.stats();
    assert_eq!(global.requests(), 120);
    assert_eq!(global.rows(), 120);
    let per_endpoint: Vec<_> = runtime.endpoints();
    let req_sum: u64 = per_endpoint.iter().map(|e| e.stats().requests()).sum();
    let row_sum: u64 = per_endpoint.iter().map(|e| e.stats().rows()).sum();
    assert_eq!(req_sum, global.requests());
    assert_eq!(row_sum, global.rows());
    // Shard counters sum to their endpoint's request counter.
    for e in &per_endpoint {
        assert_eq!(
            e.stats().shard_requests().iter().sum::<u64>(),
            e.stats().requests(),
            "endpoint {}",
            e.name()
        );
    }
    // Worker iteration counters stay consistent too.
    assert_eq!(
        global.worker_batches().iter().sum::<u64>(),
        global.batches()
    );

    // The one-call aggregate view reconciles with both the global
    // counters and a hand-rolled per-endpoint merge.
    let summed = runtime.summed_endpoint_stats();
    assert_eq!(summed.requests, global.requests());
    assert_eq!(summed.rows, global.rows());
    assert_eq!(summed.shard_requests, global.requests());
    assert_eq!(summed.shed, 0);
    let by_hand = per_endpoint
        .iter()
        .map(|e| e.stats().snapshot())
        .fold(EndpointStatsSnapshot::default(), |acc, s| acc.merged(s));
    assert_eq!(summed, by_hand);
    assert_eq!(
        summed.max_batch_rows,
        per_endpoint
            .iter()
            .map(|e| e.stats().max_batch_rows())
            .max()
            .unwrap_or(0),
        "max_batch_rows merges as a high-water mark, not a sum"
    );
}

/// Same routing key, same shard — across many concurrent requests —
/// while distinct keys spread over multiple shards.
#[test]
fn shard_routing_is_sticky_per_key() {
    struct Echo;
    impl Servable for Echo {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            Ok(vec![1.0; table.n_rows()])
        }
    }
    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(4).build());
    b.endpoint("e", Arc::new(Echo)).shards(4);
    let runtime = b.build().unwrap();

    std::thread::scope(|s| {
        for _ in 0..4 {
            let client = runtime.client();
            s.spawn(move || {
                for i in 0..10 {
                    let rows = vec![vec![("x".to_string(), Value::Float(i as f64))]];
                    client.predict_keyed("e", "sticky-key", rows).unwrap();
                }
            });
        }
    });
    let ep = runtime.endpoint("e", 1).unwrap();
    let per_shard = ep.stats().shard_requests();
    assert_eq!(per_shard.iter().sum::<u64>(), 40);
    assert_eq!(
        per_shard.iter().filter(|&&c| c > 0).count(),
        1,
        "one key must stick to one shard: {per_shard:?}"
    );

    // Distinct keys spread: 64 keys over 4 shards hit more than one.
    let client = runtime.client();
    for i in 0..64 {
        let rows = vec![vec![("x".to_string(), Value::Float(i as f64))]];
        client
            .predict_keyed("e", &format!("key-{i}"), rows)
            .unwrap();
    }
    let per_shard = ep.stats().shard_requests();
    assert!(
        per_shard.iter().filter(|&&c| c > 0).count() > 1,
        "distinct keys should spread: {per_shard:?}"
    );
}

/// A composed serving plan — cascade confidence gate + end-to-end
/// cache + top-K filter in ONE plan — served through the legacy shim
/// as a single `Servable`. This is the composition the pre-plan
/// wrapper structs could not express: scores round-trip the JSON
/// boundary, repeats hit the shared cache, and the batch answer
/// matches a direct local run bit-for-bit.
#[test]
fn composed_plan_serves_through_clipper_server() {
    use willump::{ServingPlan, TopKConfig};
    use willump_serve::table_row_to_wire;

    let exec = plan_fixture::executor();
    // Every row gets a unique (a, b) pair, so the end-to-end cache
    // keys are one-per-row (duplicate keys would be legitimate but
    // make per-row repeat expectations ambiguous).
    let (t, y) = plan_fixture::table(200);
    let (small, full) = plan_fixture::models(&exec, &t, &y);

    // Cascade + e2e cache + top-K: one composed plan.
    let plan = ServingPlan::top_k_filter(exec, small, full, 10, TopKConfig::default(), vec![0])
        .unwrap()
        .with_confidence_gate(0.9)
        .unwrap()
        .with_e2e_cache(vec!["a".to_string(), "b".to_string()], None)
        .unwrap();

    // Local reference run, then serve the same batch through the
    // server (the plan clone shares the cache, so clear it first to
    // make the served run's hit pattern match the local one's).
    let local = plan.predict_batch(&t).unwrap();
    plan.clear_cache();

    let served_plan = plan.clone();
    let server = ClipperServer::start(
        Arc::new(served_plan),
        ServerConfig::builder().workers(2).build(),
    );
    let client = server.client();
    let rows: Vec<WireRow> = (0..t.n_rows())
        .map(|r| table_row_to_wire(&t, r).unwrap())
        .collect();
    let scores = client.predict(rows.clone()).unwrap();
    assert_eq!(scores, local);

    // The composed plan resolved rows through every mechanism.
    assert!(plan.counters().filter_dropped() > 0, "filter never ran");
    assert!(plan.counters().escalated() > 0, "nothing escalated");

    // Rows the filter kept were cached with their final (gate or full)
    // scores; filter-dropped rows were deliberately NOT cached (their
    // filter score is "not in the top K", not an answer). Warm the
    // remainder with a local run through the shared cache, then a
    // repeat request through the server must be answered entirely
    // from cache and match that warmed run exactly.
    let hits_before_warm = plan.cache_hits();
    let warmed = plan.predict_batch(&t).unwrap();
    assert!(
        plan.cache_hits() > hits_before_warm,
        "warm run should hit the kept candidates' cached scores"
    );
    let hits_before_repeat = plan.cache_hits();
    let again = client.predict(rows).unwrap();
    assert_eq!(again, warmed);
    assert!(
        plan.cache_hits() >= hits_before_repeat + t.n_rows() as u64,
        "repeat batch should hit the e2e cache for every row"
    );
    assert_eq!(server.stats().requests(), 2);
}

/// Bandit-routed selection across whole serving plans: two lowered
/// full-model plans behind a `ModelSelector`, served as one
/// `Servable`.
#[test]
fn model_selector_routes_across_plans() {
    use willump::ServingPlan;
    use willump_data::Column;
    use willump_graph::{EngineMode, Executor, GraphBuilder, Operator};
    use willump_models::{LogisticParams, ModelSpec};
    use willump_serve::{table_row_to_wire, ModelSelector, SelectionPolicy};

    let mut b = GraphBuilder::new();
    let a = b.source("a");
    let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
    let graph = Arc::new(b.finish_with_concat("cat", [f0]).unwrap());
    let exec = Executor::new(graph, EngineMode::Compiled).unwrap();

    let mut t = Table::new();
    let avals: Vec<f64> = (0..80)
        .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
        .collect();
    let y: Vec<f64> = (0..80).map(|i| (i % 2) as f64).collect();
    let y_flip: Vec<f64> = y.iter().map(|v| 1.0 - v).collect();
    t.add_column("a", Column::from(avals)).unwrap();

    let feats = exec.features_batch(&t, None).unwrap();
    let good = Arc::new(
        ModelSpec::Logistic(LogisticParams::default())
            .fit(&feats, &y, 1)
            .unwrap(),
    );
    let bad = Arc::new(
        ModelSpec::Logistic(LogisticParams::default())
            .fit(&feats, &y_flip, 1)
            .unwrap(),
    );
    let selector = ModelSelector::from_plans(
        vec![
            (
                "good".to_string(),
                ServingPlan::full_model_plan(exec.clone(), good),
            ),
            ("bad".to_string(), ServingPlan::full_model_plan(exec, bad)),
        ],
        SelectionPolicy::Ucb1,
        7,
    )
    .unwrap();
    assert_eq!(selector.n_models(), 2);

    let server = ClipperServer::start(Arc::new(selector), ServerConfig::default());
    let client = server.client();
    let rows: Vec<WireRow> = (0..4).map(|r| table_row_to_wire(&t, r).unwrap()).collect();
    for _ in 0..3 {
        let scores = client.predict(rows.clone()).unwrap();
        assert_eq!(scores.len(), 4);
    }
    assert_eq!(server.stats().requests(), 3);
}

/// Shutting down under load: every admitted request is answered, and
/// late requests fail cleanly with `Disconnected` instead of hanging.
#[test]
fn shutdown_under_load_answers_admitted_requests() {
    let mut server = ClipperServer::start(
        Arc::new(AffineSummer),
        ServerConfig::builder().workers(3).build(),
    );
    let clients: Vec<_> = (0..6).map(|_| server.client()).collect();
    std::thread::scope(|s| {
        for (t, client) in clients.iter().enumerate() {
            s.spawn(move || {
                for i in 0..10 {
                    let x = (t * 10 + i) as f64;
                    match client.predict(vec![wire_row(x, 1.0)]) {
                        Ok(scores) => assert_eq!(scores, vec![3.0 * x - 0.5 + 1.0]),
                        // Acceptable once the gate has closed — but it
                        // must be an error, never a hang.
                        Err(willump_serve::ServeError::Disconnected) => {}
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(5));
        server.shutdown();
    });
    assert!(matches!(
        clients[0].predict(vec![wire_row(1.0, 1.0)]),
        Err(willump_serve::ServeError::Disconnected)
    ));
}
