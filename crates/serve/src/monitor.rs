//! Live ops surface: the [`StatsHub`] monitor.
//!
//! Every PR so far added counters — [`crate::ServerStats`],
//! [`crate::EndpointStats`], [`crate::TransportStats`], breaker
//! states, plan counters — but reading them meant polling the runtime
//! by hand and diffing snapshots in test code. This module packages
//! that pattern as a first-class subsystem:
//!
//! - A [`StatsHub`] holds a bounded ring of [`MonitorSample`]s — each
//!   a coherent point-in-time flattening of the global
//!   [`ServerStatsSnapshot`](crate::ServerStatsSnapshot), per-endpoint
//!   [`EndpointStatsSnapshot`], and per-remote-shard transport /
//!   breaker state — plus a typed [`MonitorEvent`] feed.
//! - [`ServingRuntime::start_monitor`] spawns a background sampler
//!   that ticks on a fixed interval through an injectable
//!   [`Clock`], so deterministic tests drive it with a
//!   [`willump::ManualClock`] while production uses wall time.
//! - Events are *derived*, not instrumented: the sampler diffs
//!   consecutive topology snapshots (keyed on stable slot ids, which
//!   survive index shifts as slots splice in and out) to detect
//!   breaker transitions, shard add/drain/remove, and SLO shed
//!   episodes. [`ClusterCoordinator::with_monitor`] additionally
//!   publishes applied migrations into the same feed.
//!
//! The history is the ops contract: a cluster lifecycle — node death,
//! breaker opening, prober re-admission, live drain, coordinator
//! migration — must be reconstructable purely from
//! [`StatsHub::samples`] and [`StatsHub::events`], with no direct
//! runtime inspection. The soak test in `tests/monitor.rs` holds the
//! crate to exactly that.
//!
//! [`ClusterCoordinator::with_monitor`]: crate::ClusterCoordinator::with_monitor

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use willump::{Clock, SystemClock};

use crate::cluster::Migration;
use crate::remote::{BreakerState, TransportStats};
use crate::runtime::{EndpointStatsSnapshot, ServingRuntime, Shared};

/// Events are small and drops are costly (a missed `ShardRemoved`
/// breaks lifecycle reconstruction), so the event ring holds this
/// many entries per sample-history slot.
const EVENT_HISTORY_FACTOR: usize = 4;

/// Configuration for [`ServingRuntime::start_monitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Sampling interval (default 100ms).
    pub interval: Duration,
    /// Number of samples the ring buffer retains (default 512).
    pub history: usize,
    /// Time source the sampler waits on (default [`SystemClock`]).
    /// Inject a [`willump::ManualClock`] to drive ticks
    /// deterministically in tests.
    pub clock: Arc<dyn Clock>,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            interval: Duration::from_millis(100),
            history: 512,
            clock: Arc::new(SystemClock::new()),
        }
    }
}

// ---- samples -------------------------------------------------------

/// One coherent monitor observation: the global server counters
/// flattened next to a timestamp and sequence number, plus one
/// [`EndpointSample`] per endpoint.
///
/// All counter fields are cumulative since runtime start;
/// [`delta`](MonitorSample::delta) turns two consecutive samples into
/// a per-interval view with rate helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorSample {
    /// Monotonic sample sequence number (0-based).
    pub seq: u64,
    /// Clock timestamp of the sample in nanoseconds. On a
    /// [`delta`](MonitorSample::delta) this holds the interval length
    /// instead.
    pub at_nanos: u64,
    /// Requests received (including decode/route failures).
    pub requests: u64,
    /// Input rows across decoded and routed requests.
    pub rows: u64,
    /// Worker iterations.
    pub batches: u64,
    /// Requests whose payload failed to decode.
    pub decode_errors: u64,
    /// Requests addressing an unknown endpoint or version.
    pub route_errors: u64,
    /// Rows served through merged multi-request model batches.
    pub coalesced_rows: u64,
    /// Largest single successful `predict_table` batch (high-water
    /// mark; a delta carries the later value, not a difference).
    pub max_batch_rows: u64,
    /// Requests answered by a remote shard.
    pub remote_forwards: u64,
    /// Bytes written to remote-shard transports.
    pub remote_bytes_sent: u64,
    /// Bytes read back from remote-shard transports.
    pub remote_bytes_received: u64,
    /// Peak remote forwards simultaneously in flight (high-water
    /// mark; a delta carries the later value, not a difference).
    pub remote_max_in_flight: u64,
    /// Failed transport forwards.
    pub transport_errors: u64,
    /// Requests re-routed after their shard's transport failed.
    pub failovers: u64,
    /// Requests served by a degraded plan lowering.
    pub degraded: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests whose routing key tested as a heavy hitter.
    pub hot_keys: u64,
    /// Health probes sent by the cluster control plane.
    pub probes_sent: u64,
    /// Health probes the probed node answered.
    pub probes_ok: u64,
    /// Per-endpoint observations, primaries then shadows per group.
    pub endpoints: Vec<EndpointSample>,
}

impl MonitorSample {
    /// The per-interval view between `prev` and `self` (two samples
    /// from the same hub, `prev` earlier): counters become
    /// differences, high-water marks and gauges carry the later
    /// value, `at_nanos` becomes the interval length, and endpoint
    /// stats are differenced per (name, version). Every counter field
    /// MUST be folded here — `xtask lint` rule WL002
    /// (stats-completeness) enforces it.
    #[must_use]
    pub fn delta(&self, prev: &MonitorSample) -> MonitorSample {
        MonitorSample {
            seq: self.seq,
            at_nanos: self.at_nanos.saturating_sub(prev.at_nanos),
            requests: self.requests.saturating_sub(prev.requests),
            rows: self.rows.saturating_sub(prev.rows),
            batches: self.batches.saturating_sub(prev.batches),
            decode_errors: self.decode_errors.saturating_sub(prev.decode_errors),
            route_errors: self.route_errors.saturating_sub(prev.route_errors),
            coalesced_rows: self.coalesced_rows.saturating_sub(prev.coalesced_rows),
            max_batch_rows: self.max_batch_rows,
            remote_forwards: self.remote_forwards.saturating_sub(prev.remote_forwards),
            remote_bytes_sent: self
                .remote_bytes_sent
                .saturating_sub(prev.remote_bytes_sent),
            remote_bytes_received: self
                .remote_bytes_received
                .saturating_sub(prev.remote_bytes_received),
            remote_max_in_flight: self.remote_max_in_flight,
            transport_errors: self.transport_errors.saturating_sub(prev.transport_errors),
            failovers: self.failovers.saturating_sub(prev.failovers),
            degraded: self.degraded.saturating_sub(prev.degraded),
            shed: self.shed.saturating_sub(prev.shed),
            hot_keys: self.hot_keys.saturating_sub(prev.hot_keys),
            probes_sent: self.probes_sent.saturating_sub(prev.probes_sent),
            probes_ok: self.probes_ok.saturating_sub(prev.probes_ok),
            endpoints: self
                .endpoints
                .iter()
                .map(|e| {
                    let before = prev
                        .endpoints
                        .iter()
                        .find(|p| p.name == e.name && p.version == e.version);
                    match before {
                        Some(p) => e.delta(p),
                        None => e.clone(),
                    }
                })
                .collect(),
        }
    }

    /// Interval length in seconds (meaningful on a
    /// [`delta`](MonitorSample::delta)).
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.at_nanos as f64 / 1e9
    }

    /// Request throughput in requests/sec (meaningful on a
    /// [`delta`](MonitorSample::delta); 0 over an empty interval).
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// Fraction of requests shed at admission (0 with no requests).
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.shed as f64 / self.requests as f64
    }

    /// Fraction of requests served degraded (0 with no requests).
    #[must_use]
    pub fn degraded_fraction(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.degraded as f64 / self.requests as f64
    }

    /// The sample of one endpoint by name and version, if present.
    #[must_use]
    pub fn endpoint(&self, name: &str, version: u32) -> Option<&EndpointSample> {
        self.endpoints
            .iter()
            .find(|e| e.name == name && e.version == version)
    }
}

/// One endpoint's slice of a [`MonitorSample`].
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSample {
    /// Endpoint name.
    pub name: String,
    /// Endpoint version.
    pub version: u32,
    /// The endpoint's counters at sample time.
    pub stats: EndpointStatsSnapshot,
    /// Smoothed arrival rate in requests/sec (admission telemetry; 0
    /// without an [`crate::AdmissionPolicy`]).
    pub arrival_rate: f64,
    /// Observed p99 service time of local predictions in nanoseconds
    /// (`None` without telemetry or completed predictions).
    pub service_p99_nanos: Option<u64>,
    /// Per-remote-shard observations, in shard order.
    pub shards: Vec<ShardSample>,
}

impl EndpointSample {
    /// Per-interval view against an earlier sample of the same
    /// endpoint: cumulative counters become differences; gauges
    /// (arrival rate, service p99, shard states) carry the later
    /// value.
    #[must_use]
    pub fn delta(&self, prev: &EndpointSample) -> EndpointSample {
        EndpointSample {
            name: self.name.clone(),
            version: self.version,
            stats: snapshot_delta(self.stats, prev.stats),
            arrival_rate: self.arrival_rate,
            service_p99_nanos: self.service_p99_nanos,
            shards: self.shards.clone(),
        }
    }
}

/// Field-wise difference of two endpoint snapshots (counters
/// subtract, high-water marks carry the later value).
fn snapshot_delta(
    now: EndpointStatsSnapshot,
    prev: EndpointStatsSnapshot,
) -> EndpointStatsSnapshot {
    EndpointStatsSnapshot {
        requests: now.requests.saturating_sub(prev.requests),
        rows: now.rows.saturating_sub(prev.rows),
        coalesced_rows: now.coalesced_rows.saturating_sub(prev.coalesced_rows),
        max_batch_rows: now.max_batch_rows,
        shard_requests: now.shard_requests.saturating_sub(prev.shard_requests),
        shard_transport_nanos: now
            .shard_transport_nanos
            .saturating_sub(prev.shard_transport_nanos),
        remote_bytes_sent: now.remote_bytes_sent.saturating_sub(prev.remote_bytes_sent),
        remote_bytes_received: now
            .remote_bytes_received
            .saturating_sub(prev.remote_bytes_received),
        remote_max_in_flight: now.remote_max_in_flight,
        transport_errors: now.transport_errors.saturating_sub(prev.transport_errors),
        failovers: now.failovers.saturating_sub(prev.failovers),
        degraded: now.degraded.saturating_sub(prev.degraded),
        shed: now.shed.saturating_sub(prev.shed),
        hot_keys: now.hot_keys.saturating_sub(prev.hot_keys),
        probes_sent: now.probes_sent.saturating_sub(prev.probes_sent),
        probes_ok: now.probes_ok.saturating_sub(prev.probes_ok),
    }
}

/// One remote shard's slice of an [`EndpointSample`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSample {
    /// Stable slot id (survives index shifts; see
    /// [`crate::RemoteShardView::slot_id`]).
    pub slot_id: u64,
    /// Global shard index (`local_shards()..`) at sample time.
    pub shard: usize,
    /// Transport description (e.g. `tcp://host:port`).
    pub description: String,
    /// Circuit-breaker state.
    pub breaker: BreakerState,
    /// Whether the slot was draining.
    pub draining: bool,
    /// Transport counters, including probe traffic.
    pub stats: TransportStats,
}

// ---- events --------------------------------------------------------

/// A state change derived by the monitor (or published into it by the
/// cluster coordinator). The sampler emits these by diffing
/// consecutive samples, so an event's resolution is one sampling
/// interval: a breaker that opened and closed entirely between two
/// ticks is invisible, exactly as it would be to a polling operator.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// A remote shard's circuit breaker changed state (e.g. a node
    /// died: `Closed` → `Open`; the prober re-admitted it: `Open` /
    /// `Probing` → `Closed`).
    BreakerTransition {
        /// Endpoint name.
        endpoint: String,
        /// Endpoint version.
        version: u32,
        /// Stable slot id.
        slot_id: u64,
        /// Transport description.
        description: String,
        /// State at the previous sample.
        from: BreakerState,
        /// State at this sample.
        to: BreakerState,
    },
    /// A remote shard joined the endpoint's routing domain.
    ShardAdded {
        /// Endpoint name.
        endpoint: String,
        /// Endpoint version.
        version: u32,
        /// Stable slot id.
        slot_id: u64,
        /// Transport description.
        description: String,
    },
    /// A remote shard started draining (excluded from new routing,
    /// finishing in-flight work).
    ShardDraining {
        /// Endpoint name.
        endpoint: String,
        /// Endpoint version.
        version: u32,
        /// Stable slot id.
        slot_id: u64,
        /// Transport description.
        description: String,
    },
    /// A remote shard was detached.
    ShardRemoved {
        /// Endpoint name.
        endpoint: String,
        /// Endpoint version.
        version: u32,
        /// Stable slot id.
        slot_id: u64,
        /// Transport description.
        description: String,
    },
    /// The cluster coordinator applied a shard migration (published
    /// by [`crate::ClusterCoordinator::with_monitor`]).
    Migration(Migration),
    /// An endpoint began shedding at admission (its shed counter
    /// moved during the last interval after being still).
    ShedStarted {
        /// Endpoint name.
        endpoint: String,
        /// Endpoint version.
        version: u32,
    },
    /// The shed episode ended (a full interval passed with no new
    /// sheds).
    ShedEnded {
        /// Endpoint name.
        endpoint: String,
        /// Endpoint version.
        version: u32,
        /// Requests shed during the episode.
        shed: u64,
    },
}

/// A [`MonitorEvent`] stamped with its sequence number and clock
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Monotonic event sequence number (0-based, shared across all
    /// event kinds).
    pub seq: u64,
    /// Clock timestamp in nanoseconds.
    pub at_nanos: u64,
    /// The event.
    pub event: MonitorEvent,
}

// ---- the hub -------------------------------------------------------

/// Per-slot state the event detector tracks between samples.
#[derive(Debug, Clone)]
struct SlotWatch {
    breaker: BreakerState,
    draining: bool,
    description: String,
}

/// Per-endpoint state the event detector tracks between samples.
#[derive(Debug, Default)]
struct EndpointWatch {
    slots: HashMap<u64, SlotWatch>,
    /// Shed counter at the previous sample.
    last_shed: u64,
    /// Shed counter when the current episode started (`None` when not
    /// in an episode).
    episode_base: Option<u64>,
}

#[derive(Debug, Default)]
struct HubState {
    samples: VecDeque<MonitorSample>,
    events: VecDeque<TimedEvent>,
    next_sample_seq: u64,
    next_event_seq: u64,
    watch: HashMap<(String, u32), EndpointWatch>,
}

#[derive(Debug)]
struct HubInner {
    clock: Arc<dyn Clock>,
    history: usize,
    state: Mutex<HubState>,
}

/// The monitor's shared state: a bounded ring of [`MonitorSample`]s
/// plus a bounded [`TimedEvent`] feed. Cloning is cheap (shared
/// state): the background sampler, the cluster coordinator, and any
/// number of readers hold handles to the same hub.
///
/// Feed it from a background sampler
/// ([`ServingRuntime::start_monitor`]) or manually
/// ([`StatsHub::sample_now`]) — both run the same sampling and
/// event-detection path.
#[derive(Debug, Clone)]
pub struct StatsHub {
    inner: Arc<HubInner>,
}

impl StatsHub {
    /// A hub retaining `history` samples (and
    /// `history * EVENT_HISTORY_FACTOR` events), stamped by a
    /// [`SystemClock`].
    #[must_use]
    pub fn new(history: usize) -> StatsHub {
        StatsHub::with_clock(history, Arc::new(SystemClock::new()))
    }

    /// A hub stamped by the given clock (deterministic tests inject a
    /// [`willump::ManualClock`]).
    #[must_use]
    pub fn with_clock(history: usize, clock: Arc<dyn Clock>) -> StatsHub {
        StatsHub {
            inner: Arc::new(HubInner {
                clock,
                history: history.max(2),
                state: Mutex::new(HubState::default()),
            }),
        }
    }

    /// Number of samples the ring retains.
    #[must_use]
    pub fn history(&self) -> usize {
        self.inner.history
    }

    /// Take one sample of `runtime` right now (the manual analogue of
    /// one background-sampler tick) and return it.
    pub fn sample_now(&self, runtime: &ServingRuntime) -> MonitorSample {
        self.sample_core(&runtime.cluster_core())
    }

    /// The sampling + event-detection path shared by
    /// [`sample_now`](StatsHub::sample_now) and the background
    /// sampler thread.
    pub(crate) fn sample_core(&self, core: &Shared) -> MonitorSample {
        let at_nanos = self.inner.clock.now_nanos();
        let server = core.server_stats().snapshot();
        let mut endpoints = Vec::new();
        for endpoint in core.all_endpoints() {
            let shards = endpoint
                .remote_shard_views()
                .into_iter()
                .map(|v| ShardSample {
                    slot_id: v.slot_id,
                    shard: v.shard,
                    description: v.description,
                    breaker: v.breaker,
                    draining: v.draining,
                    stats: v.stats,
                })
                .collect();
            endpoints.push(EndpointSample {
                name: endpoint.name().to_string(),
                version: endpoint.version(),
                stats: endpoint.stats().snapshot(),
                arrival_rate: endpoint.arrival_rate(),
                service_p99_nanos: endpoint.service_p99_nanos(),
                shards,
            });
        }

        let mut st = self.inner.state.lock();
        let sample = MonitorSample {
            seq: st.next_sample_seq,
            at_nanos,
            requests: server.requests,
            rows: server.rows,
            batches: server.batches,
            decode_errors: server.decode_errors,
            route_errors: server.route_errors,
            coalesced_rows: server.coalesced_rows,
            max_batch_rows: server.max_batch_rows,
            remote_forwards: server.remote_forwards,
            remote_bytes_sent: server.remote_bytes_sent,
            remote_bytes_received: server.remote_bytes_received,
            remote_max_in_flight: server.remote_max_in_flight,
            transport_errors: server.transport_errors,
            failovers: server.failovers,
            degraded: server.degraded,
            shed: server.shed,
            hot_keys: server.hot_keys,
            probes_sent: server.probes_sent,
            probes_ok: server.probes_ok,
            endpoints,
        };
        st.next_sample_seq += 1;
        self.detect_events(&mut st, &sample, at_nanos);
        st.samples.push_back(sample.clone());
        while st.samples.len() > self.inner.history {
            st.samples.pop_front();
        }
        sample
    }

    /// Diff `sample` against the watch state and emit events. The
    /// first sighting of an endpoint establishes its baseline
    /// topology silently (steady state is not an event).
    fn detect_events(&self, st: &mut HubState, sample: &MonitorSample, at_nanos: u64) {
        let mut pending: Vec<MonitorEvent> = Vec::new();
        for e in &sample.endpoints {
            let key = (e.name.clone(), e.version);
            let first_sight = !st.watch.contains_key(&key);
            let watch = st.watch.entry(key).or_default();

            let mut seen: HashMap<u64, SlotWatch> = HashMap::new();
            for shard in &e.shards {
                let now = SlotWatch {
                    breaker: shard.breaker,
                    draining: shard.draining,
                    description: shard.description.clone(),
                };
                match watch.slots.get(&shard.slot_id) {
                    None if !first_sight => pending.push(MonitorEvent::ShardAdded {
                        endpoint: e.name.clone(),
                        version: e.version,
                        slot_id: shard.slot_id,
                        description: shard.description.clone(),
                    }),
                    Some(prev) => {
                        if prev.breaker != shard.breaker {
                            pending.push(MonitorEvent::BreakerTransition {
                                endpoint: e.name.clone(),
                                version: e.version,
                                slot_id: shard.slot_id,
                                description: shard.description.clone(),
                                from: prev.breaker,
                                to: shard.breaker,
                            });
                        }
                        if !prev.draining && shard.draining {
                            pending.push(MonitorEvent::ShardDraining {
                                endpoint: e.name.clone(),
                                version: e.version,
                                slot_id: shard.slot_id,
                                description: shard.description.clone(),
                            });
                        }
                    }
                    None => {}
                }
                seen.insert(shard.slot_id, now);
            }
            for (slot_id, prev) in &watch.slots {
                if !seen.contains_key(slot_id) {
                    pending.push(MonitorEvent::ShardRemoved {
                        endpoint: e.name.clone(),
                        version: e.version,
                        slot_id: *slot_id,
                        description: prev.description.clone(),
                    });
                }
            }
            watch.slots = seen;

            // Shed episodes: started when the counter moves after
            // being still, ended after a full still interval.
            let shed = e.stats.shed;
            if first_sight {
                watch.last_shed = shed;
            } else if shed > watch.last_shed {
                if watch.episode_base.is_none() {
                    watch.episode_base = Some(watch.last_shed);
                    pending.push(MonitorEvent::ShedStarted {
                        endpoint: e.name.clone(),
                        version: e.version,
                    });
                }
            } else if let Some(base) = watch.episode_base.take() {
                pending.push(MonitorEvent::ShedEnded {
                    endpoint: e.name.clone(),
                    version: e.version,
                    shed: shed.saturating_sub(base),
                });
            }
            watch.last_shed = shed;
        }
        for event in pending {
            Self::push_event(&self.inner, st, event, at_nanos);
        }
    }

    /// Publish an externally-detected event (e.g. a coordinator
    /// migration) into the feed, stamped with the hub's clock.
    pub fn record_event(&self, event: MonitorEvent) {
        let at_nanos = self.inner.clock.now_nanos();
        let mut st = self.inner.state.lock();
        Self::push_event(&self.inner, &mut st, event, at_nanos);
    }

    fn push_event(inner: &HubInner, st: &mut HubState, event: MonitorEvent, at_nanos: u64) {
        let seq = st.next_event_seq;
        st.next_event_seq += 1;
        st.events.push_back(TimedEvent {
            seq,
            at_nanos,
            event,
        });
        while st.events.len() > inner.history * EVENT_HISTORY_FACTOR {
            st.events.pop_front();
        }
    }

    /// The retained samples, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<MonitorSample> {
        self.inner.state.lock().samples.iter().cloned().collect()
    }

    /// The most recent sample, if any was taken.
    #[must_use]
    pub fn latest(&self) -> Option<MonitorSample> {
        self.inner.state.lock().samples.back().cloned()
    }

    /// Per-interval views between consecutive retained samples,
    /// oldest first (empty with fewer than two samples).
    #[must_use]
    pub fn deltas(&self) -> Vec<MonitorSample> {
        let samples = self.samples();
        samples
            .windows(2)
            .map(|pair| pair[1].delta(&pair[0]))
            .collect()
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TimedEvent> {
        self.inner.state.lock().events.iter().cloned().collect()
    }

    /// Retained events with sequence number >= `seq` (cursor-style
    /// incremental reads).
    #[must_use]
    pub fn events_since(&self, seq: u64) -> Vec<TimedEvent> {
        self.inner
            .state
            .lock()
            .events
            .iter()
            .filter(|e| e.seq >= seq)
            .cloned()
            .collect()
    }
}

// ---- the background sampler ----------------------------------------

/// Handle to a running background sampler. The hub stays readable
/// through [`hub`](MonitorHandle::hub) while sampling runs; stop the
/// sampler explicitly with [`stop`](MonitorHandle::stop) or
/// implicitly by dropping (either joins the thread — the hub and its
/// history survive, only sampling ends).
#[derive(Debug)]
pub struct MonitorHandle {
    hub: StatsHub,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MonitorHandle {
    /// The hub the sampler writes into.
    #[must_use]
    pub fn hub(&self) -> &StatsHub {
        &self.hub
    }

    /// Signal the sampler to exit and join it. The hub (and its
    /// retained history) remains readable through clones.
    pub fn stop(mut self) -> StatsHub {
        self.halt();
        self.hub.clone()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

impl ServingRuntime {
    /// Start the background monitor: a [`StatsHub`] fed by a sampler
    /// thread that takes one [`MonitorSample`] per
    /// [`MonitorConfig::interval`] tick (scheduled on
    /// [`MonitorConfig::clock`], so tests can drive it with a
    /// [`willump::ManualClock`]). The sampler holds only the
    /// runtime's shared core, so it never blocks shutdown; stop it
    /// via the returned [`MonitorHandle`].
    pub fn start_monitor(&self, config: MonitorConfig) -> MonitorHandle {
        let core = self.cluster_core();
        let hub = StatsHub::with_clock(config.history, Arc::clone(&config.clock));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let sampler_hub = hub.clone();
        let interval = u64::try_from(config.interval.as_nanos()).unwrap_or(u64::MAX);
        let thread = std::thread::spawn(move || {
            let clock = config.clock;
            let mut deadline = clock.now_nanos();
            loop {
                sampler_hub.sample_core(&core);
                // Schedule from the previous deadline, not from
                // "now", so a slow sample doesn't drift the cadence.
                deadline = deadline.saturating_add(interval).max(clock.now_nanos());
                if !clock.wait_until(deadline, &stop_flag) {
                    return;
                }
            }
        });
        MonitorHandle {
            hub,
            stop,
            thread: Some(thread),
        }
    }
}
