//! The Clipper-like server: a shared queue, a pool of worker threads,
//! coalesced adaptive batching, and a JSON serialization boundary.
//!
//! Each worker drains the queue up to [`ServerConfig::max_batch_requests`]
//! envelopes per iteration and — when [`ServerConfig::coalesce`] is on —
//! **merges** the rows of all same-schema requests into a single
//! [`Table`], runs one model-level `predict_table` call, and scatters
//! the scores back to each request's reply channel. Coalescing
//! amortizes per-call fixed overheads across concurrent requests, the
//! effect paper Table 6 measures via batch size.
//!
//! Shutdown is explicit: [`ClipperServer::shutdown`] (also run on
//! drop) closes an admission gate and hands each worker a sentinel, so
//! the server winds down cleanly even while [`ClipperClient`] handles
//! are still alive — clients observe [`ServeError::Disconnected`]
//! afterwards instead of deadlocking the drop.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use willump_data::{Column, DataType, Table};

use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, error_wire, Request,
    Response, WireRow, ERROR_RESPONSE_ID,
};
use crate::ServeError;

/// Anything that can serve batch predictions for raw-input tables.
///
/// Implemented for the baseline and Willump-optimized pipelines so the
/// same server can front either (paper Table 6 compares exactly that).
pub trait Servable: Send + Sync {
    /// Predict scores for a batch of inputs.
    ///
    /// # Errors
    /// Returns a display string on failure (crossing the serving
    /// boundary erases error types, as an RPC would).
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String>;
}

impl Servable for willump::BaselinePipeline {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }
}

impl Servable for willump::OptimizedPipeline {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }
}

/// Any [`willump::ServingPlan`] is servable, so every lowered
/// optimization — and any *composition* of them (cascade + end-to-end
/// cache + top-K filter in one plan) — runs behind the multi-worker
/// coalescing server as a single predictor.
impl Servable for willump::ServingPlan {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum requests coalesced into one worker iteration (adaptive
    /// batching: the queue is drained up to this bound without
    /// waiting). Values below 1 are treated as 1.
    pub max_batch_requests: usize,
    /// Queue capacity before senders block.
    pub queue_capacity: usize,
    /// Number of executor threads pulling from the shared queue.
    /// Values below 1 are treated as 1.
    pub workers: usize,
    /// Merge same-schema requests drained in one iteration into a
    /// single model-level batch (one `predict_table` call), scattering
    /// scores back per request. When off, every request is dispatched
    /// individually (the pre-coalescing behavior, kept for A/B
    /// benchmarking).
    pub coalesce: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch_requests: 16,
            queue_capacity: 1024,
            workers: 1,
            coalesce: true,
        }
    }
}

/// Server-side counters.
#[derive(Debug)]
pub struct ServerStats {
    requests: AtomicU64,
    rows: AtomicU64,
    batches: AtomicU64,
    decode_errors: AtomicU64,
    coalesced_rows: AtomicU64,
    max_batch_rows: AtomicU64,
    worker_batches: Vec<AtomicU64>,
}

impl ServerStats {
    fn new(workers: usize) -> ServerStats {
        ServerStats {
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            coalesced_rows: AtomicU64::new(0),
            max_batch_rows: AtomicU64::new(0),
            worker_batches: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Requests received, including ones that failed to decode.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total input rows across successfully decoded requests.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Worker iterations (each handling >= 1 coalesced requests).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Requests whose payload failed [`decode_request`]; these are
    /// counted in [`requests`](ServerStats::requests) too and are
    /// answered with [`ERROR_RESPONSE_ID`].
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// Rows served through merged model batches spanning more than
    /// one request (0 until concurrency actually coalesces).
    pub fn coalesced_rows(&self) -> u64 {
        self.coalesced_rows.load(Ordering::Relaxed)
    }

    /// Largest number of rows handed to a single successful
    /// `predict_table` call.
    pub fn max_batch_rows(&self) -> u64 {
        self.max_batch_rows.load(Ordering::Relaxed)
    }

    /// Worker-iteration counts, one entry per worker thread.
    pub fn worker_batches(&self) -> Vec<u64> {
        self.worker_batches
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

struct WireEnvelope {
    payload: String,
    reply: Sender<String>,
}

enum Job {
    Request(WireEnvelope),
    Shutdown,
}

/// The admission gate shared by the server and every client: sends
/// happen under the lock, so once `closed` flips no message can slip
/// into the queue after the shutdown sentinels (FIFO order then
/// guarantees every admitted request is answered before the workers
/// exit).
#[derive(Debug)]
struct Gate {
    sender: Sender<Job>,
    closed: bool,
}

/// An in-process Clipper-like model server.
///
/// Requests cross a real serialization boundary (JSON in, JSON out)
/// and are handled by [`ServerConfig::workers`] executor threads that
/// drain the shared queue with adaptive, coalescing batching.
///
/// # Shutdown semantics
///
/// [`shutdown`](ClipperServer::shutdown) (idempotent, also invoked by
/// `Drop`) closes the admission gate, enqueues one sentinel per
/// worker, and joins the workers. Requests admitted before the gate
/// closed are all answered; [`ClipperClient::predict`] calls issued
/// afterwards return [`ServeError::Disconnected`]. Live clients never
/// prevent the server from shutting down.
pub struct ClipperServer {
    gate: Arc<Mutex<Gate>>,
    stats: Arc<ServerStats>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ClipperServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClipperServer")
            .field("stats", &self.stats)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// Build a table from wire rows; all rows must share the first row's
/// schema.
fn rows_to_table(rows: &[WireRow]) -> Result<Table, ServeError> {
    rows_to_table_refs(&rows.iter().collect::<Vec<_>>())
}

/// Like [`rows_to_table`] but over borrowed rows, so coalesced batches
/// can merge rows from several requests without cloning them.
fn rows_to_table_refs(rows: &[&WireRow]) -> Result<Table, ServeError> {
    let Some(first) = rows.first() else {
        return Ok(Table::new());
    };
    let mut table = Table::new();
    for (name, proto) in first.iter() {
        let dt = proto.data_type();
        let mut col = Column::empty(dt).ok_or_else(|| ServeError::BadRequest {
            reason: format!("column `{name}` has null prototype value"),
        })?;
        for row in rows {
            let v = row
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| ServeError::BadRequest {
                    reason: format!("row missing column `{name}`"),
                })?;
            col.push(v).map_err(|e| ServeError::BadRequest {
                reason: format!("column `{name}`: {e}"),
            })?;
        }
        table
            .add_column(name.clone(), col)
            .map_err(|e| ServeError::BadRequest {
                reason: e.to_string(),
            })?;
    }
    Ok(table)
}

/// The (name, type) schema of a request, taken from its first row;
/// requests merge into one model batch only when this matches exactly.
type SchemaKey<'a> = Vec<(&'a str, DataType)>;

fn request_schema(req: &Request) -> SchemaKey<'_> {
    req.rows.first().map_or_else(Vec::new, |row| {
        row.iter()
            .map(|(n, v)| (n.as_str(), v.data_type()))
            .collect()
    })
}

/// Encode and send one response, falling back to the escaping
/// last-resort encoder when the real one fails (e.g. NaN scores).
fn respond(env: &WireEnvelope, resp: &Response) {
    let wire = encode_response(resp)
        .unwrap_or_else(|e| error_wire(resp.id, &format!("response encoding failed: {e}")));
    let _ = env.reply.send(wire);
}

/// Serve one already-decoded request individually (the per-request
/// dispatch path, also the fallback when a coalesced batch fails).
fn handle_one(predictor: &dyn Servable, req: &Request, stats: &ServerStats) -> Response {
    let table = match rows_to_table(&req.rows) {
        Ok(t) => t,
        Err(e) => {
            return Response {
                id: req.id,
                scores: Vec::new(),
                error: Some(e.to_string()),
            }
        }
    };
    match predictor.predict_table(&table) {
        Ok(scores) => {
            stats
                .max_batch_rows
                .fetch_max(req.rows.len() as u64, Ordering::Relaxed);
            Response {
                id: req.id,
                scores,
                error: None,
            }
        }
        Err(e) => Response {
            id: req.id,
            scores: Vec::new(),
            error: Some(e),
        },
    }
}

/// Serve a group of same-schema requests as one merged model batch,
/// scattering scores back per request; falls back to per-request
/// dispatch when the merge or the batched prediction fails, so one bad
/// request cannot poison its groupmates.
fn serve_group(predictor: &dyn Servable, group: &[&(WireEnvelope, Request)], stats: &ServerStats) {
    // A lone request gains nothing from the merge path; dispatch it
    // directly so a failing prediction is not pointlessly retried.
    if let [(env, req)] = group {
        respond(env, &handle_one(predictor, req, stats));
        return;
    }
    let merged: Vec<&WireRow> = group.iter().flat_map(|(_, req)| req.rows.iter()).collect();
    let total = merged.len();
    let batched = rows_to_table_refs(&merged)
        .map_err(|e| e.to_string())
        .and_then(|table| predictor.predict_table(&table))
        .ok()
        .filter(|scores| scores.len() == total);
    match batched {
        Some(scores) => {
            stats
                .max_batch_rows
                .fetch_max(total as u64, Ordering::Relaxed);
            // The early single-request return above guarantees this
            // batch merged >= 2 requests, so all its rows count as
            // coalesced.
            stats
                .coalesced_rows
                .fetch_add(total as u64, Ordering::Relaxed);
            let mut offset = 0;
            for (env, req) in group {
                let n = req.rows.len();
                respond(
                    env,
                    &Response {
                        id: req.id,
                        scores: scores[offset..offset + n].to_vec(),
                        error: None,
                    },
                );
                offset += n;
            }
        }
        None => {
            for (env, req) in group {
                respond(env, &handle_one(predictor, req, stats));
            }
        }
    }
}

/// One worker iteration over a drained batch of envelopes: decode,
/// group by schema, serve each group coalesced (or per-request when
/// coalescing is off).
fn process_batch(
    predictor: &dyn Servable,
    envelopes: Vec<WireEnvelope>,
    stats: &ServerStats,
    coalesce: bool,
) {
    stats
        .requests
        .fetch_add(envelopes.len() as u64, Ordering::Relaxed);
    let mut decoded: Vec<(WireEnvelope, Request)> = Vec::with_capacity(envelopes.len());
    for env in envelopes {
        match decode_request(&env.payload) {
            Ok(req) => {
                stats
                    .rows
                    .fetch_add(req.rows.len() as u64, Ordering::Relaxed);
                decoded.push((env, req));
            }
            Err(e) => {
                stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                respond(
                    &env,
                    &Response {
                        id: ERROR_RESPONSE_ID,
                        scores: Vec::new(),
                        error: Some(e.to_string()),
                    },
                );
            }
        }
    }
    if !coalesce {
        for (env, req) in &decoded {
            respond(env, &handle_one(predictor, req, stats));
        }
        return;
    }
    // Group by schema, preserving arrival order within each group.
    let mut groups: Vec<(SchemaKey<'_>, Vec<&(WireEnvelope, Request)>)> = Vec::new();
    for pair in &decoded {
        let key = request_schema(&pair.1);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(pair),
            None => groups.push((key, vec![pair])),
        }
    }
    for (_, members) in &groups {
        serve_group(predictor, members, stats);
    }
}

impl ClipperServer {
    /// Start a server over the given predictor.
    pub fn start(predictor: Arc<dyn Servable>, config: ServerConfig) -> ClipperServer {
        let n_workers = config.workers.max(1);
        let max_batch = config.max_batch_requests.max(1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(config.queue_capacity.max(1));
        let stats = Arc::new(ServerStats::new(n_workers));
        let mut workers = Vec::with_capacity(n_workers);
        for wi in 0..n_workers {
            let rx = rx.clone();
            let stats = stats.clone();
            let predictor = predictor.clone();
            workers.push(std::thread::spawn(move || {
                loop {
                    let first = match rx.recv() {
                        Ok(Job::Request(env)) => env,
                        // A sentinel (or a fully-dropped channel) ends
                        // this worker; each sentinel is consumed by
                        // exactly one worker.
                        Ok(Job::Shutdown) | Err(_) => return,
                    };
                    // Adaptive batching: drain whatever else is queued,
                    // stopping at a sentinel so sibling workers still
                    // receive theirs.
                    let mut envelopes = vec![first];
                    let mut shutting_down = false;
                    while envelopes.len() < max_batch {
                        match rx.try_recv() {
                            Ok(Job::Request(env)) => envelopes.push(env),
                            Ok(Job::Shutdown) => {
                                shutting_down = true;
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                    stats.worker_batches[wi].fetch_add(1, Ordering::Relaxed);
                    process_batch(&*predictor, envelopes, &stats, config.coalesce);
                    if shutting_down {
                        return;
                    }
                }
            }));
        }
        ClipperServer {
            gate: Arc::new(Mutex::new(Gate {
                sender: tx,
                closed: false,
            })),
            stats,
            workers,
        }
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Number of executor threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// A client handle for this server.
    pub fn client(&self) -> ClipperClient {
        ClipperClient {
            gate: self.gate.clone(),
            next_id: AtomicU64::new(1),
        }
    }

    /// Shut the server down: close the admission gate, signal every
    /// worker, and join them. Idempotent; invoked automatically on
    /// drop. Requests admitted before the call are still answered;
    /// later `predict` calls return [`ServeError::Disconnected`].
    /// Takes the same admission lock clients enqueue under, so it may
    /// briefly wait behind in-flight sends (workers keep draining, so
    /// that wait is bounded by queue drain, not by client lifetime).
    pub fn shutdown(&mut self) {
        {
            let mut gate = self.gate.lock();
            if !gate.closed {
                gate.closed = true;
                for _ in 0..self.workers.len() {
                    // send only fails if every worker already exited,
                    // in which case there is nobody left to signal.
                    let _ = gate.sender.send(Job::Shutdown);
                }
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ClipperServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client for a [`ClipperServer`].
///
/// Clients stay valid across server shutdown: once the server is shut
/// down (or dropped), calls return [`ServeError::Disconnected`]
/// instead of blocking.
#[derive(Debug)]
pub struct ClipperClient {
    gate: Arc<Mutex<Gate>>,
    next_id: AtomicU64,
}

impl ClipperClient {
    /// Predict scores for a batch of raw-input rows through the
    /// serving boundary (serialize request → queue → worker →
    /// serialized response).
    ///
    /// # Errors
    /// Returns [`ServeError`] on codec failures, a shut-down server,
    /// or a predictor error.
    pub fn predict(&self, rows: Vec<WireRow>) -> Result<Vec<f64>, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let payload = encode_request(&Request { id, rows })?;
        let wire = self.call_raw(payload)?;
        let resp = decode_response(&wire)?;
        if let Some(err) = resp.error {
            return Err(ServeError::Predictor(err));
        }
        Ok(resp.scores)
    }

    /// Send a raw wire payload and return the raw wire response,
    /// bypassing client-side encoding (useful for testing the server's
    /// handling of malformed frames).
    ///
    /// Admission happens under a shared lock (the same one
    /// [`ClipperServer::shutdown`] takes), which is what makes the
    /// close/send ordering airtight. The lock is held across the
    /// enqueue, so when the queue is at
    /// [`ServerConfig::queue_capacity`] a blocked sender briefly
    /// stalls other clients' admissions too; size the queue for the
    /// expected burst if that matters.
    ///
    /// # Errors
    /// Returns [`ServeError::Disconnected`] when the server has shut
    /// down.
    pub fn call_raw(&self, payload: String) -> Result<String, ServeError> {
        let (reply_tx, reply_rx) = bounded(1);
        {
            let gate = self.gate.lock();
            if gate.closed {
                return Err(ServeError::Disconnected);
            }
            gate.sender
                .send(Job::Request(WireEnvelope {
                    payload,
                    reply: reply_tx,
                }))
                .map_err(|_| ServeError::Disconnected)?;
        }
        reply_rx.recv().map_err(|_| ServeError::Disconnected)
    }
}

/// Build a wire row from a table row (helper for clients and
/// experiments).
///
/// # Errors
/// Returns [`ServeError::BadRequest`] for out-of-range rows.
pub fn table_row_to_wire(table: &Table, r: usize) -> Result<WireRow, ServeError> {
    let values = table.row(r).map_err(|e| ServeError::BadRequest {
        reason: e.to_string(),
    })?;
    Ok(table
        .column_names()
        .into_iter()
        .map(str::to_string)
        .zip(values)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use willump_data::Value;

    /// A trivial predictor: score = 2 * x.
    struct Doubler;
    impl Servable for Doubler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            let col = table
                .column("x")
                .ok_or_else(|| "missing x".to_string())?
                .to_f64_vec()
                .map_err(|e| e.to_string())?;
            Ok(col.into_iter().map(|v| v * 2.0).collect())
        }
    }

    /// A Doubler that also sleeps, to force requests to pile up behind
    /// the worker so batching tests are deterministic.
    struct SlowDoubler(Duration);
    impl Servable for SlowDoubler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            std::thread::sleep(self.0);
            Doubler.predict_table(table)
        }
    }

    fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
        xs.iter()
            .map(|&x| vec![("x".to_string(), Value::Float(x))])
            .collect()
    }

    #[test]
    fn round_trip_through_server() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let scores = client.predict(wire_rows(&[1.0, 2.5])).unwrap();
        assert_eq!(scores, vec![2.0, 5.0]);
        assert_eq!(server.stats().requests(), 1);
        assert_eq!(server.stats().rows(), 2);
    }

    #[test]
    fn many_requests_from_multiple_clients() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let client = server.client();
                s.spawn(move || {
                    for i in 0..25 {
                        let x = (t * 25 + i) as f64;
                        let scores = client.predict(wire_rows(&[x])).unwrap();
                        assert_eq!(scores, vec![2.0 * x]);
                    }
                });
            }
        });
        assert_eq!(server.stats().requests(), 100);
        // Adaptive batching coalesces at least some iterations under
        // concurrency; batches <= requests always holds.
        assert!(server.stats().batches() <= 100);
    }

    #[test]
    fn multi_worker_round_trip() {
        let server = ClipperServer::start(
            Arc::new(Doubler),
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        );
        assert_eq!(server.n_workers(), 4);
        std::thread::scope(|s| {
            for t in 0..8 {
                let client = server.client();
                s.spawn(move || {
                    for i in 0..20 {
                        let x = (t * 20 + i) as f64;
                        assert_eq!(client.predict(wire_rows(&[x])).unwrap(), vec![2.0 * x]);
                    }
                });
            }
        });
        assert_eq!(server.stats().requests(), 160);
        let per_worker = server.stats().worker_batches();
        assert_eq!(per_worker.len(), 4);
        assert_eq!(per_worker.iter().sum::<u64>(), server.stats().batches());
    }

    #[test]
    fn coalesced_batches_match_sequential_scores() {
        // Pin the single worker down with a slow first request so the
        // other clients' requests pile up and must be coalesced.
        let server = ClipperServer::start(
            Arc::new(SlowDoubler(Duration::from_millis(500))),
            ServerConfig::default(),
        );
        std::thread::scope(|s| {
            let blocker = server.client();
            s.spawn(move || {
                blocker.predict(wire_rows(&[0.0])).unwrap();
            });
            // Generous margin: the blocker holds the worker for 500ms
            // while these clients only need to enqueue (a JSON encode
            // plus a channel send each), so even a heavily loaded
            // machine coalesces them.
            std::thread::sleep(Duration::from_millis(100));
            for t in 1..7 {
                let client = server.client();
                s.spawn(move || {
                    let xs = [t as f64, t as f64 + 0.5];
                    let scores = client.predict(wire_rows(&xs)).unwrap();
                    assert_eq!(scores, vec![2.0 * xs[0], 2.0 * xs[1]]);
                });
            }
        });
        assert_eq!(server.stats().requests(), 7);
        // The six queued requests were merged into (at least one)
        // multi-request model batch.
        assert!(
            server.stats().coalesced_rows() >= 4,
            "expected coalescing, stats: {:?}",
            server.stats()
        );
        assert!(server.stats().max_batch_rows() >= 4);
        assert!(server.stats().batches() < 7);
    }

    #[test]
    fn drop_with_live_client_does_not_deadlock() {
        // Regression: the seed server's Drop joined the worker while
        // cloned client senders kept the channel open, hanging forever.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
            let client = server.client();
            assert_eq!(client.predict(wire_rows(&[1.0])).unwrap(), vec![2.0]);
            drop(server); // client is still alive
            assert!(matches!(
                client.predict(wire_rows(&[2.0])),
                Err(ServeError::Disconnected)
            ));
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server drop deadlocked with a live client");
    }

    #[test]
    fn shutdown_is_explicit_and_idempotent() {
        let mut server = ClipperServer::start(
            Arc::new(Doubler),
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        );
        let client = server.client();
        assert!(client.predict(wire_rows(&[1.0])).is_ok());
        server.shutdown();
        server.shutdown();
        assert!(matches!(
            client.predict(wire_rows(&[1.0])),
            Err(ServeError::Disconnected)
        ));
    }

    #[test]
    fn decode_errors_are_counted_and_answered_with_reserved_id() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let wire = client.call_raw("this is not json".to_string()).unwrap();
        let resp = decode_response(&wire).expect("error response is valid JSON");
        assert_eq!(resp.id, ERROR_RESPONSE_ID);
        assert!(resp.error.is_some());
        // Arrivals are counted even when they fail to decode.
        assert_eq!(server.stats().requests(), 1);
        assert_eq!(server.stats().decode_errors(), 1);
        assert_eq!(server.stats().rows(), 0);
    }

    #[test]
    fn hostile_predictor_error_round_trips() {
        struct Hostile;
        impl Servable for Hostile {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Err("bad \"quotes\" and \\slashes\\\nand newlines".to_string())
            }
        }
        let server = ClipperServer::start(Arc::new(Hostile), ServerConfig::default());
        let client = server.client();
        match client.predict(wire_rows(&[1.0])) {
            Err(ServeError::Predictor(msg)) => {
                assert_eq!(msg, "bad \"quotes\" and \\slashes\\\nand newlines");
            }
            other => panic!("expected predictor error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_scores_produce_valid_error_wire() {
        struct NanPredictor;
        impl Servable for NanPredictor {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Ok(vec![f64::NAN])
            }
        }
        let server = ClipperServer::start(Arc::new(NanPredictor), ServerConfig::default());
        let client = server.client();
        // encode_response cannot represent NaN; the fallback must
        // still be well-formed JSON the client can decode.
        match client.predict(wire_rows(&[1.0])) {
            Err(ServeError::Predictor(msg)) => {
                assert!(msg.contains("encoding failed"), "got: {msg}");
            }
            other => panic!("expected encoding-failure error, got {other:?}"),
        }
    }

    #[test]
    fn mixed_schema_batches_fall_back_per_request() {
        // Pile up requests with two different schemas behind a slow
        // worker; each group must still be answered correctly.
        struct SlowSummer;
        impl Servable for SlowSummer {
            fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
                std::thread::sleep(Duration::from_millis(300));
                let names = table.column_names();
                let first = names.first().ok_or("empty table")?.to_string();
                table
                    .column(&first)
                    .ok_or("missing column")?
                    .to_f64_vec()
                    .map_err(|e| e.to_string())
            }
        }
        let server = ClipperServer::start(Arc::new(SlowSummer), ServerConfig::default());
        std::thread::scope(|s| {
            let blocker = server.client();
            s.spawn(move || {
                blocker.predict(wire_rows(&[0.0])).unwrap();
            });
            std::thread::sleep(Duration::from_millis(60));
            for t in 0..4 {
                let client = server.client();
                s.spawn(move || {
                    let name = if t % 2 == 0 { "x" } else { "y" };
                    let rows = vec![vec![(name.to_string(), Value::Float(t as f64))]];
                    assert_eq!(client.predict(rows).unwrap(), vec![t as f64]);
                });
            }
        });
        assert_eq!(server.stats().requests(), 5);
    }

    #[test]
    fn predictor_error_propagates() {
        struct Failing;
        impl Servable for Failing {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Err("nope".to_string())
            }
        }
        let server = ClipperServer::start(Arc::new(Failing), ServerConfig::default());
        let client = server.client();
        assert!(matches!(
            client.predict(wire_rows(&[1.0])),
            Err(ServeError::Predictor(_))
        ));
    }

    #[test]
    fn failing_single_request_predicts_only_once() {
        // A lone request must not pay the coalesced-path fallback: a
        // failing prediction runs exactly once, not merge-then-retry.
        struct CountingFailer(std::sync::atomic::AtomicU64);
        impl Servable for CountingFailer {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Err("nope".to_string())
            }
        }
        let predictor = Arc::new(CountingFailer(AtomicU64::new(0)));
        let server = ClipperServer::start(predictor.clone(), ServerConfig::default());
        let client = server.client();
        assert!(client.predict(wire_rows(&[1.0])).is_err());
        assert_eq!(predictor.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn inconsistent_rows_rejected() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let rows = vec![
            vec![("x".to_string(), Value::Float(1.0))],
            vec![("y".to_string(), Value::Float(2.0))],
        ];
        assert!(client.predict(rows).is_err());
    }

    #[test]
    fn table_conversion_helpers() {
        let mut t = Table::new();
        t.add_column("x", Column::from(vec![1.0f64, 2.0])).unwrap();
        t.add_column("s", Column::from(vec!["a", "b"])).unwrap();
        let wire = table_row_to_wire(&t, 1).unwrap();
        assert_eq!(wire[0], ("x".to_string(), Value::Float(2.0)));
        assert_eq!(wire[1], ("s".to_string(), Value::from("b")));
        let back = rows_to_table(&[wire.clone(), wire]).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.value(0, "s"), Some(Value::from("b")));
        assert!(table_row_to_wire(&t, 9).is_err());
    }

    #[test]
    fn empty_request_is_fine() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        // Zero rows: zero scores (Doubler sees an empty table with no
        // columns and errors on missing x — acceptable too; accept
        // either a clean empty result or a predictor error).
        match client.predict(Vec::new()) {
            Ok(scores) => assert!(scores.is_empty()),
            Err(ServeError::Predictor(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
