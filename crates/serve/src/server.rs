//! The Clipper-like server: a queue, a worker, adaptive batching, and
//! a JSON serialization boundary.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use willump_data::{Column, Table};

use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response, WireRow,
};
use crate::ServeError;

/// Anything that can serve batch predictions for raw-input tables.
///
/// Implemented for the baseline and Willump-optimized pipelines so the
/// same server can front either (paper Table 6 compares exactly that).
pub trait Servable: Send + Sync {
    /// Predict scores for a batch of inputs.
    ///
    /// # Errors
    /// Returns a display string on failure (crossing the serving
    /// boundary erases error types, as an RPC would).
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String>;
}

impl Servable for willump::BaselinePipeline {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }
}

impl Servable for willump::OptimizedPipeline {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum requests coalesced into one worker iteration (adaptive
    /// batching: the queue is drained up to this bound without
    /// waiting).
    pub max_batch_requests: usize,
    /// Queue capacity before senders block.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch_requests: 16,
            queue_capacity: 1024,
        }
    }
}

/// Server-side counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    requests: AtomicU64,
    rows: AtomicU64,
    batches: AtomicU64,
}

impl ServerStats {
    /// Requests served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total input rows predicted.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Worker iterations (each handling >= 1 coalesced requests).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }
}

struct WireEnvelope {
    payload: String,
    reply: Sender<String>,
}

/// An in-process Clipper-like model server.
///
/// Requests cross a real serialization boundary (JSON in, JSON out)
/// and are handled by a dedicated worker thread that drains the queue
/// with adaptive batching.
pub struct ClipperServer {
    sender: Sender<WireEnvelope>,
    stats: Arc<ServerStats>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ClipperServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClipperServer")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Build a table from wire rows; all rows must share the first row's
/// schema.
fn rows_to_table(rows: &[WireRow]) -> Result<Table, ServeError> {
    let Some(first) = rows.first() else {
        return Ok(Table::new());
    };
    let mut table = Table::new();
    for (name, proto) in first {
        let dt = proto.data_type();
        let mut col = Column::empty(dt).ok_or_else(|| ServeError::BadRequest {
            reason: format!("column `{name}` has null prototype value"),
        })?;
        for row in rows {
            let v = row
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| ServeError::BadRequest {
                    reason: format!("row missing column `{name}`"),
                })?;
            col.push(v).map_err(|e| ServeError::BadRequest {
                reason: format!("column `{name}`: {e}"),
            })?;
        }
        table
            .add_column(name.clone(), col)
            .map_err(|e| ServeError::BadRequest {
                reason: e.to_string(),
            })?;
    }
    Ok(table)
}

impl ClipperServer {
    /// Start a server over the given predictor.
    pub fn start(predictor: Arc<dyn Servable>, config: ServerConfig) -> ClipperServer {
        let (tx, rx): (Sender<WireEnvelope>, Receiver<WireEnvelope>) =
            bounded(config.queue_capacity);
        let stats = Arc::new(ServerStats::default());
        let worker_stats = stats.clone();
        let worker = std::thread::spawn(move || {
            while let Ok(first) = rx.recv() {
                // Adaptive batching: drain whatever else is queued.
                let mut envelopes = vec![first];
                while envelopes.len() < config.max_batch_requests {
                    match rx.try_recv() {
                        Ok(env) => envelopes.push(env),
                        Err(_) => break,
                    }
                }
                worker_stats.batches.fetch_add(1, Ordering::Relaxed);
                for env in envelopes {
                    let response = Self::handle(&*predictor, &env.payload, &worker_stats);
                    let wire = encode_response(&response).unwrap_or_else(|e| {
                        format!("{{\"id\":0,\"scores\":[],\"error\":\"{e}\"}}")
                    });
                    let _ = env.reply.send(wire);
                }
            }
        });
        ClipperServer {
            sender: tx,
            stats,
            worker: Some(worker),
        }
    }

    fn handle(predictor: &dyn Servable, payload: &str, stats: &ServerStats) -> Response {
        let req = match decode_request(payload) {
            Ok(r) => r,
            Err(e) => {
                return Response {
                    id: 0,
                    scores: Vec::new(),
                    error: Some(e.to_string()),
                }
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats
            .rows
            .fetch_add(req.rows.len() as u64, Ordering::Relaxed);
        let table = match rows_to_table(&req.rows) {
            Ok(t) => t,
            Err(e) => {
                return Response {
                    id: req.id,
                    scores: Vec::new(),
                    error: Some(e.to_string()),
                }
            }
        };
        match predictor.predict_table(&table) {
            Ok(scores) => Response {
                id: req.id,
                scores,
                error: None,
            },
            Err(e) => Response {
                id: req.id,
                scores: Vec::new(),
                error: Some(e),
            },
        }
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// A client handle for this server.
    pub fn client(&self) -> ClipperClient {
        ClipperClient {
            sender: self.sender.clone(),
            next_id: AtomicU64::new(1),
        }
    }
}

impl Drop for ClipperServer {
    fn drop(&mut self) {
        // Close the queue, then wait for the worker to finish draining.
        let (tx, _) = unbounded();
        drop(std::mem::replace(&mut self.sender, tx));
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// A client for a [`ClipperServer`].
#[derive(Debug)]
pub struct ClipperClient {
    sender: Sender<WireEnvelope>,
    next_id: AtomicU64,
}

impl ClipperClient {
    /// Predict scores for a batch of raw-input rows through the
    /// serving boundary (serialize request → queue → worker →
    /// serialized response).
    ///
    /// # Errors
    /// Returns [`ServeError`] on codec failures, a dead server, or a
    /// predictor error.
    pub fn predict(&self, rows: Vec<WireRow>) -> Result<Vec<f64>, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let payload = encode_request(&Request { id, rows })?;
        let (reply_tx, reply_rx) = bounded(1);
        self.sender
            .send(WireEnvelope {
                payload,
                reply: reply_tx,
            })
            .map_err(|_| ServeError::Disconnected)?;
        let wire = reply_rx.recv().map_err(|_| ServeError::Disconnected)?;
        let resp = decode_response(&wire)?;
        if let Some(err) = resp.error {
            return Err(ServeError::Predictor(err));
        }
        Ok(resp.scores)
    }
}

/// Build a wire row from a table row (helper for clients and
/// experiments).
///
/// # Errors
/// Returns [`ServeError::BadRequest`] for out-of-range rows.
pub fn table_row_to_wire(table: &Table, r: usize) -> Result<WireRow, ServeError> {
    let values = table.row(r).map_err(|e| ServeError::BadRequest {
        reason: e.to_string(),
    })?;
    Ok(table
        .column_names()
        .into_iter()
        .map(str::to_string)
        .zip(values)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::Value;

    /// A trivial predictor: score = 2 * x.
    struct Doubler;
    impl Servable for Doubler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            let col = table
                .column("x")
                .ok_or_else(|| "missing x".to_string())?
                .to_f64_vec()
                .map_err(|e| e.to_string())?;
            Ok(col.into_iter().map(|v| v * 2.0).collect())
        }
    }

    fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
        xs.iter()
            .map(|&x| vec![("x".to_string(), Value::Float(x))])
            .collect()
    }

    #[test]
    fn round_trip_through_server() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let scores = client.predict(wire_rows(&[1.0, 2.5])).unwrap();
        assert_eq!(scores, vec![2.0, 5.0]);
        assert_eq!(server.stats().requests(), 1);
        assert_eq!(server.stats().rows(), 2);
    }

    #[test]
    fn many_requests_from_multiple_clients() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let client = server.client();
                s.spawn(move || {
                    for i in 0..25 {
                        let x = (t * 25 + i) as f64;
                        let scores = client.predict(wire_rows(&[x])).unwrap();
                        assert_eq!(scores, vec![2.0 * x]);
                    }
                });
            }
        });
        assert_eq!(server.stats().requests(), 100);
        // Adaptive batching coalesces at least some iterations under
        // concurrency; batches <= requests always holds.
        assert!(server.stats().batches() <= 100);
    }

    #[test]
    fn predictor_error_propagates() {
        struct Failing;
        impl Servable for Failing {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Err("nope".to_string())
            }
        }
        let server = ClipperServer::start(Arc::new(Failing), ServerConfig::default());
        let client = server.client();
        assert!(matches!(
            client.predict(wire_rows(&[1.0])),
            Err(ServeError::Predictor(_))
        ));
    }

    #[test]
    fn inconsistent_rows_rejected() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let rows = vec![
            vec![("x".to_string(), Value::Float(1.0))],
            vec![("y".to_string(), Value::Float(2.0))],
        ];
        assert!(client.predict(rows).is_err());
    }

    #[test]
    fn table_conversion_helpers() {
        let mut t = Table::new();
        t.add_column("x", Column::from(vec![1.0f64, 2.0])).unwrap();
        t.add_column("s", Column::from(vec!["a", "b"])).unwrap();
        let wire = table_row_to_wire(&t, 1).unwrap();
        assert_eq!(wire[0], ("x".to_string(), Value::Float(2.0)));
        assert_eq!(wire[1], ("s".to_string(), Value::from("b")));
        let back = rows_to_table(&[wire.clone(), wire]).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.value(0, "s"), Some(Value::from("b")));
        assert!(table_row_to_wire(&t, 9).is_err());
    }

    #[test]
    fn empty_request_is_fine() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        // Zero rows: zero scores (Doubler sees an empty table with no
        // columns and errors on missing x — acceptable too; accept
        // either a clean empty result or a predictor error).
        match client.predict(Vec::new()) {
            Ok(scores) => assert!(scores.is_empty()),
            Err(ServeError::Predictor(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
