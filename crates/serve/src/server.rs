//! The single-predictor Clipper-like serving surface, now a thin shim
//! over the multi-endpoint [`ServingRuntime`].
//!
//! [`ClipperServer::start`] registers its one predictor as the
//! runtime's [`DEFAULT_ENDPOINT`] (sharded across the worker pool)
//! and [`ClipperClient`] sends unaddressed requests, which the
//! runtime routes to that default endpoint — the API, wire protocol
//! (including legacy frames without endpoint fields), stats, and
//! shutdown semantics of every legacy caller keep working. One
//! behavioral difference from the old shared-queue server: requests
//! are now pinned to a worker queue at admission (unkeyed traffic
//! round-robins), so under strongly heterogeneous request costs a
//! queued request no longer migrates to whichever worker frees up
//! first. New code should use [`ServingRuntime::builder`] directly:
//! it serves many named, versioned, sharded endpoints — local or
//! cross-process via [`crate::WorkerTransport`] — behind one worker
//! pool and one client. The README's "Migrating from `ClipperServer`"
//! section is the single consolidated migration guide.
//!
//! This module also defines the [`Servable`] trait (the serving-side
//! predictor abstraction) and [`ServerConfig`] (the worker-pool and
//! batching knobs, shared by the shim and the runtime).

use std::sync::Arc;

use willump_data::Table;

use crate::runtime::{ServerStats, ServingRuntime};
use crate::{RuntimeClient, ServeError, WireRow, DEFAULT_ENDPOINT};

/// Anything that can serve batch predictions for raw-input tables.
///
/// Implemented for the baseline and Willump-optimized pipelines so the
/// same server can front either (paper Table 6 compares exactly that).
pub trait Servable: Send + Sync {
    /// Predict scores for a batch of inputs.
    ///
    /// # Errors
    /// Returns a display string on failure (crossing the serving
    /// boundary erases error types, as an RPC would).
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String>;

    /// Pin any cached artifacts backing these rows against eviction.
    ///
    /// The runtime's admission layer calls this for rows belonging to
    /// heavy-hitter routing keys, so hot answers stay resident under
    /// cache churn. Returns how many entries were newly pinned.
    /// Default: no cache, nothing to pin.
    fn pin_hot_rows(&self, _table: &Table) -> usize {
        0
    }
}

impl Servable for willump::BaselinePipeline {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }
}

impl Servable for willump::OptimizedPipeline {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }
}

/// Any [`willump::ServingPlan`] is servable, so every lowered
/// optimization — and any *composition* of them (cascade + end-to-end
/// cache + top-K filter in one plan) — runs behind the multi-worker
/// coalescing runtime as a single endpoint.
impl Servable for willump::ServingPlan {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict_batch(table).map_err(|e| e.to_string())
    }

    fn pin_hot_rows(&self, table: &Table) -> usize {
        self.pin_cache_rows(table)
    }
}

/// Server configuration: worker-pool and batching knobs shared by
/// [`ServingRuntime`] and the [`ClipperServer`] shim.
///
/// Construct with [`ServerConfig::builder`] (the struct is
/// `#[non_exhaustive]`, so future fields — scheduler knobs, shard
/// defaults — are non-breaking) or start from
/// [`ServerConfig::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Maximum requests coalesced into one worker iteration (adaptive
    /// batching: the queue is drained up to this bound without
    /// waiting). Values below 1 are treated as 1.
    pub max_batch_requests: usize,
    /// Per-worker queue capacity before senders block.
    pub queue_capacity: usize,
    /// Number of executor threads pulling from the worker queues.
    /// Values below 1 are treated as 1.
    pub workers: usize,
    /// Merge same-endpoint, same-schema requests drained in one
    /// iteration into a single model-level batch (one `predict_table`
    /// call), scattering scores back per request. When off, every
    /// request is dispatched individually (the pre-coalescing
    /// behavior, kept for A/B benchmarking).
    pub coalesce: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch_requests: 16,
            queue_capacity: 1024,
            workers: 1,
            coalesce: true,
        }
    }
}

impl ServerConfig {
    /// A builder starting from [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`] (see [`ServerConfig::builder`]).
#[derive(Debug, Clone)]
#[must_use]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Set [`ServerConfig::max_batch_requests`].
    pub fn max_batch_requests(mut self, n: usize) -> Self {
        self.config.max_batch_requests = n;
        self
    }

    /// Set [`ServerConfig::queue_capacity`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n;
        self
    }

    /// Set [`ServerConfig::workers`].
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Set [`ServerConfig::coalesce`].
    pub fn coalesce(mut self, on: bool) -> Self {
        self.config.coalesce = on;
        self
    }

    /// Finish the configuration.
    #[must_use]
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// An in-process Clipper-like model server over a single anonymous
/// predictor — the legacy surface, kept as a shim over
/// [`ServingRuntime`].
///
/// Deprecated in spirit (new code should build a runtime with named
/// endpoints); kept green because the paper experiments and the
/// original examples speak this API. Identical semantics: JSON
/// serialization boundary, [`ServerConfig::workers`] executors,
/// coalescing, explicit deadlock-free shutdown.
pub struct ClipperServer {
    runtime: ServingRuntime,
}

impl std::fmt::Debug for ClipperServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClipperServer")
            .field("runtime", &self.runtime)
            .finish_non_exhaustive()
    }
}

impl ClipperServer {
    /// Start a server over the given predictor: a single-endpoint
    /// [`ServingRuntime`] serving it as [`DEFAULT_ENDPOINT`], with
    /// one shard per worker.
    pub fn start(predictor: Arc<dyn Servable>, config: ServerConfig) -> ClipperServer {
        let workers = config.workers.max(1);
        let mut builder = ServingRuntime::builder();
        builder.config(config);
        builder
            .endpoint(DEFAULT_ENDPOINT, predictor)
            .shards(workers);
        ClipperServer {
            runtime: builder
                .build()
                .expect("a single-endpoint runtime is always valid"),
        }
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        self.runtime.stats()
    }

    /// Number of executor threads.
    pub fn n_workers(&self) -> usize {
        self.runtime.n_workers()
    }

    /// The underlying multi-endpoint runtime (for callers migrating
    /// incrementally to the endpoint API).
    pub fn runtime(&self) -> &ServingRuntime {
        &self.runtime
    }

    /// A client handle for this server.
    pub fn client(&self) -> ClipperClient {
        ClipperClient {
            inner: self.runtime.client(),
        }
    }

    /// Shut the server down (see [`ServingRuntime::shutdown`]):
    /// idempotent, also run on drop, answers everything admitted
    /// before the gate closed, and never deadlocks on live clients.
    pub fn shutdown(&mut self) {
        self.runtime.shutdown();
    }
}

/// A client for a [`ClipperServer`].
///
/// Clients stay valid across server shutdown: once the server is shut
/// down (or dropped), calls return [`ServeError::Disconnected`]
/// instead of blocking.
#[derive(Debug)]
pub struct ClipperClient {
    inner: RuntimeClient,
}

impl ClipperClient {
    /// Predict scores for a batch of raw-input rows through the
    /// serving boundary (serialize request → route → queue → worker →
    /// serialized response). Requests are unaddressed, so the runtime
    /// routes them to the default endpoint.
    ///
    /// # Errors
    /// Returns [`ServeError`] on codec failures, a shut-down server,
    /// or a predictor error.
    pub fn predict(&self, rows: Vec<WireRow>) -> Result<Vec<f64>, ServeError> {
        self.inner.predict(rows)
    }

    /// Send a raw wire payload and return the raw wire response,
    /// bypassing client-side encoding (useful for testing the server's
    /// handling of malformed or legacy frames). See
    /// [`RuntimeClient::call_raw`] for admission semantics.
    ///
    /// # Errors
    /// Returns [`ServeError::Disconnected`] when the server has shut
    /// down.
    pub fn call_raw(&self, payload: String) -> Result<String, ServeError> {
        self.inner.call_raw(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_response, ERROR_RESPONSE_ID};
    use crate::runtime::{rows_to_table, table_row_to_wire};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;
    use willump_data::{Column, Value};

    /// A trivial predictor: score = 2 * x.
    struct Doubler;
    impl Servable for Doubler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            let col = table
                .column("x")
                .ok_or_else(|| "missing x".to_string())?
                .to_f64_vec()
                .map_err(|e| e.to_string())?;
            Ok(col.into_iter().map(|v| v * 2.0).collect())
        }
    }

    /// A Doubler that also sleeps, to force requests to pile up behind
    /// the worker so batching tests are deterministic.
    struct SlowDoubler(Duration);
    impl Servable for SlowDoubler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            std::thread::sleep(self.0);
            Doubler.predict_table(table)
        }
    }

    fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
        xs.iter()
            .map(|&x| vec![("x".to_string(), Value::Float(x))])
            .collect()
    }

    #[test]
    fn config_builder_sets_every_field() {
        let cfg = ServerConfig::builder()
            .max_batch_requests(9)
            .queue_capacity(77)
            .workers(3)
            .coalesce(false)
            .build();
        assert_eq!(cfg.max_batch_requests, 9);
        assert_eq!(cfg.queue_capacity, 77);
        assert_eq!(cfg.workers, 3);
        assert!(!cfg.coalesce);
        assert_eq!(ServerConfig::builder().build(), ServerConfig::default());
    }

    #[test]
    fn round_trip_through_server() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let scores = client.predict(wire_rows(&[1.0, 2.5])).unwrap();
        assert_eq!(scores, vec![2.0, 5.0]);
        assert_eq!(server.stats().requests(), 1);
        assert_eq!(server.stats().rows(), 2);
    }

    #[test]
    fn many_requests_from_multiple_clients() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let client = server.client();
                s.spawn(move || {
                    for i in 0..25 {
                        let x = (t * 25 + i) as f64;
                        let scores = client.predict(wire_rows(&[x])).unwrap();
                        assert_eq!(scores, vec![2.0 * x]);
                    }
                });
            }
        });
        assert_eq!(server.stats().requests(), 100);
        // Adaptive batching coalesces at least some iterations under
        // concurrency; batches <= requests always holds.
        assert!(server.stats().batches() <= 100);
    }

    #[test]
    fn multi_worker_round_trip() {
        let server = ClipperServer::start(
            Arc::new(Doubler),
            ServerConfig::builder().workers(4).build(),
        );
        assert_eq!(server.n_workers(), 4);
        std::thread::scope(|s| {
            for t in 0..8 {
                let client = server.client();
                s.spawn(move || {
                    for i in 0..20 {
                        let x = (t * 20 + i) as f64;
                        assert_eq!(client.predict(wire_rows(&[x])).unwrap(), vec![2.0 * x]);
                    }
                });
            }
        });
        assert_eq!(server.stats().requests(), 160);
        let per_worker = server.stats().worker_batches();
        assert_eq!(per_worker.len(), 4);
        assert_eq!(per_worker.iter().sum::<u64>(), server.stats().batches());
        // The shim shards its default endpoint across the pool and
        // unkeyed requests spread round-robin, so more than one
        // worker serves.
        assert!(per_worker.iter().filter(|&&b| b > 0).count() > 1);
    }

    #[test]
    fn coalesced_batches_match_sequential_scores() {
        // Pin the single worker down with a slow first request so the
        // other clients' requests pile up and must be coalesced.
        let server = ClipperServer::start(
            Arc::new(SlowDoubler(Duration::from_millis(500))),
            ServerConfig::default(),
        );
        std::thread::scope(|s| {
            let blocker = server.client();
            s.spawn(move || {
                blocker.predict(wire_rows(&[0.0])).unwrap();
            });
            // Generous margin: the blocker holds the worker for 500ms
            // while these clients only need to enqueue (a JSON encode
            // plus a channel send each), so even a heavily loaded
            // machine coalesces them.
            std::thread::sleep(Duration::from_millis(100));
            for t in 1..7 {
                let client = server.client();
                s.spawn(move || {
                    let xs = [t as f64, t as f64 + 0.5];
                    let scores = client.predict(wire_rows(&xs)).unwrap();
                    assert_eq!(scores, vec![2.0 * xs[0], 2.0 * xs[1]]);
                });
            }
        });
        assert_eq!(server.stats().requests(), 7);
        // The six queued requests were merged into (at least one)
        // multi-request model batch.
        assert!(
            server.stats().coalesced_rows() >= 4,
            "expected coalescing, stats: {:?}",
            server.stats()
        );
        assert!(server.stats().max_batch_rows() >= 4);
        assert!(server.stats().batches() < 7);
    }

    #[test]
    fn drop_with_live_client_does_not_deadlock() {
        // Regression: the seed server's Drop joined the worker while
        // cloned client senders kept the channel open, hanging forever.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
            let client = server.client();
            assert_eq!(client.predict(wire_rows(&[1.0])).unwrap(), vec![2.0]);
            drop(server); // client is still alive
            assert!(matches!(
                client.predict(wire_rows(&[2.0])),
                Err(ServeError::Disconnected)
            ));
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server drop deadlocked with a live client");
    }

    #[test]
    fn shutdown_is_explicit_and_idempotent() {
        let mut server = ClipperServer::start(
            Arc::new(Doubler),
            ServerConfig::builder().workers(3).build(),
        );
        let client = server.client();
        assert!(client.predict(wire_rows(&[1.0])).is_ok());
        server.shutdown();
        server.shutdown();
        assert!(matches!(
            client.predict(wire_rows(&[1.0])),
            Err(ServeError::Disconnected)
        ));
    }

    #[test]
    fn decode_errors_are_counted_and_answered_with_reserved_id() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let wire = client.call_raw("this is not json".to_string()).unwrap();
        let resp = decode_response(&wire).expect("error response is valid JSON");
        assert_eq!(resp.id, ERROR_RESPONSE_ID);
        assert!(resp.error.is_some());
        // Arrivals are counted even when they fail to decode.
        assert_eq!(server.stats().requests(), 1);
        assert_eq!(server.stats().decode_errors(), 1);
        assert_eq!(server.stats().rows(), 0);
    }

    #[test]
    fn legacy_wire_frame_routes_to_default_endpoint() {
        // A pre-runtime frame: no endpoint/version/key fields. The
        // shim's default endpoint must still answer it.
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let wire = client
            .call_raw(r#"{"id":1,"rows":[[["x",{"Float":4.0}]]]}"#.to_string())
            .unwrap();
        let resp = decode_response(&wire).expect("response decodes");
        assert_eq!(resp.error, None);
        assert_eq!(resp.scores, vec![8.0]);
        assert_eq!(resp.endpoint.as_deref(), Some(DEFAULT_ENDPOINT));
        assert_eq!(resp.version, Some(1));
    }

    #[test]
    fn hostile_predictor_error_round_trips() {
        struct Hostile;
        impl Servable for Hostile {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Err("bad \"quotes\" and \\slashes\\\nand newlines".to_string())
            }
        }
        let server = ClipperServer::start(Arc::new(Hostile), ServerConfig::default());
        let client = server.client();
        match client.predict(wire_rows(&[1.0])) {
            Err(ServeError::Predictor(msg)) => {
                assert_eq!(msg, "bad \"quotes\" and \\slashes\\\nand newlines");
            }
            other => panic!("expected predictor error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_scores_produce_valid_error_wire() {
        struct NanPredictor;
        impl Servable for NanPredictor {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Ok(vec![f64::NAN])
            }
        }
        let server = ClipperServer::start(Arc::new(NanPredictor), ServerConfig::default());
        let client = server.client();
        // encode_response cannot represent NaN; the fallback must
        // still be well-formed JSON the client can decode.
        match client.predict(wire_rows(&[1.0])) {
            Err(ServeError::Predictor(msg)) => {
                assert!(msg.contains("encoding failed"), "got: {msg}");
            }
            other => panic!("expected encoding-failure error, got {other:?}"),
        }
    }

    #[test]
    fn mixed_schema_batches_fall_back_per_request() {
        // Pile up requests with two different schemas behind a slow
        // worker; each group must still be answered correctly.
        struct SlowSummer;
        impl Servable for SlowSummer {
            fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
                std::thread::sleep(Duration::from_millis(300));
                let names = table.column_names();
                let first = names.first().ok_or("empty table")?.to_string();
                table
                    .column(&first)
                    .ok_or("missing column")?
                    .to_f64_vec()
                    .map_err(|e| e.to_string())
            }
        }
        let server = ClipperServer::start(Arc::new(SlowSummer), ServerConfig::default());
        std::thread::scope(|s| {
            let blocker = server.client();
            s.spawn(move || {
                blocker.predict(wire_rows(&[0.0])).unwrap();
            });
            std::thread::sleep(Duration::from_millis(60));
            for t in 0..4 {
                let client = server.client();
                s.spawn(move || {
                    let name = if t % 2 == 0 { "x" } else { "y" };
                    let rows = vec![vec![(name.to_string(), Value::Float(t as f64))]];
                    assert_eq!(client.predict(rows).unwrap(), vec![t as f64]);
                });
            }
        });
        assert_eq!(server.stats().requests(), 5);
    }

    #[test]
    fn predictor_error_propagates() {
        struct Failing;
        impl Servable for Failing {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Err("nope".to_string())
            }
        }
        let server = ClipperServer::start(Arc::new(Failing), ServerConfig::default());
        let client = server.client();
        assert!(matches!(
            client.predict(wire_rows(&[1.0])),
            Err(ServeError::Predictor(_))
        ));
    }

    #[test]
    fn failing_single_request_predicts_only_once() {
        // A lone request must not pay the coalesced-path fallback: a
        // failing prediction runs exactly once, not merge-then-retry.
        struct CountingFailer(std::sync::atomic::AtomicU64);
        impl Servable for CountingFailer {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Err("nope".to_string())
            }
        }
        let predictor = Arc::new(CountingFailer(AtomicU64::new(0)));
        let server = ClipperServer::start(predictor.clone(), ServerConfig::default());
        let client = server.client();
        assert!(client.predict(wire_rows(&[1.0])).is_err());
        assert_eq!(predictor.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn inconsistent_rows_rejected() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        let rows = vec![
            vec![("x".to_string(), Value::Float(1.0))],
            vec![("y".to_string(), Value::Float(2.0))],
        ];
        assert!(client.predict(rows).is_err());
    }

    #[test]
    fn table_conversion_helpers() {
        let mut t = Table::new();
        t.add_column("x", Column::from(vec![1.0f64, 2.0])).unwrap();
        t.add_column("s", Column::from(vec!["a", "b"])).unwrap();
        let wire = table_row_to_wire(&t, 1).unwrap();
        assert_eq!(wire[0], ("x".to_string(), Value::Float(2.0)));
        assert_eq!(wire[1], ("s".to_string(), Value::from("b")));
        let back = rows_to_table(&[wire.clone(), wire]).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.value(0, "s"), Some(Value::from("b")));
        assert!(table_row_to_wire(&t, 9).is_err());
    }

    #[test]
    fn empty_request_is_fine() {
        let server = ClipperServer::start(Arc::new(Doubler), ServerConfig::default());
        let client = server.client();
        // Zero rows: zero scores (Doubler sees an empty table with no
        // columns and errors on missing x — acceptable too; accept
        // either a clean empty result or a predictor error).
        match client.predict(Vec::new()) {
            Ok(scores) => assert!(scores.is_empty()),
            Err(ServeError::Predictor(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
