//! # willump-serve
//!
//! A Clipper-like model serving layer for the Willump reproduction
//! (see DESIGN.md's substitution table): an RPC-style boundary with
//! real JSON serialization overhead, a request queue with adaptive
//! batching, and an optional end-to-end prediction cache (the
//! pipeline-agnostic caching the paper compares feature-level caching
//! against).
//!
//! Paper Table 6 serves Willump-optimized pipelines through Clipper
//! and observes that (a) fixed per-request overheads amortize with
//! batch size, and (b) variable serialization overheads remain. Both
//! effects are real here: every request and response passes through
//! `serde_json`, and the server runs [`ServerConfig::workers`]
//! executor threads behind a shared channel. Workers *coalesce*: all
//! same-schema requests drained in one iteration merge into a single
//! model-level batch (one `predict_table` call), so concurrent
//! small requests amortize per-call fixed overheads exactly the way
//! client-side batching does in Table 6. Shutdown is explicit and
//! deadlock-free even while client handles are still alive (see
//! [`ClipperServer::shutdown`]).
//!
//! The crate also reproduces Clipper's *model selection layer*
//! (paper §7): [`ModelSelector`] routes queries across several
//! [`Servable`]s with a multi-armed bandit ([`SelectionPolicy`]),
//! learning over time which model predicts a session's inputs best.
//!
//! Every `willump::ServingPlan` is [`Servable`], so any lowered
//! optimization — or composition of optimizations (a cascade behind
//! an end-to-end cache with a top-K filter, say) — serves through the
//! multi-worker coalescing [`ClipperServer`] as one predictor, and
//! [`ModelSelector::from_plans`] bandit-routes across whole plans.

#![warn(missing_docs)]

mod e2e_cache;
mod error;
mod protocol;
mod selection;
mod server;

pub use e2e_cache::E2eCachedPredictor;
pub use error::ServeError;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, error_wire,
    escape_json_string, Request, Response, WireRow, ERROR_RESPONSE_ID,
};
pub use selection::{ArmStats, ModelSelector, SelectionPolicy};
pub use server::{
    table_row_to_wire, ClipperClient, ClipperServer, Servable, ServerConfig, ServerStats,
};
