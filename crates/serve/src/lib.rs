//! # willump-serve
//!
//! The serving layer for the Willump reproduction (see DESIGN.md's
//! substitution table): an RPC-style boundary with real JSON
//! serialization overhead, per-worker request queues with adaptive
//! coalescing batching, and a **multi-endpoint runtime** —
//! [`ServingRuntime`] — serving named, versioned, shard-routed
//! deployments behind one worker pool.
//!
//! Paper Table 6 serves Willump-optimized pipelines through Clipper
//! and observes that (a) fixed per-request overheads amortize with
//! batch size, and (b) variable serialization overheads remain. Both
//! effects are real here: every request and response passes through
//! `serde_json`, and workers *coalesce* — all same-endpoint,
//! same-schema requests drained in one iteration merge into a single
//! model-level batch (one `predict_table` call), so concurrent small
//! requests amortize per-call fixed overheads exactly the way
//! client-side batching does in Table 6.
//!
//! The runtime goes beyond the paper's single-predictor Clipper
//! substrate:
//!
//! - **Named, versioned endpoints** ([`RuntimeBuilder::endpoint`]):
//!   all six paper workloads — and several plan variants of each —
//!   share one runtime, one worker pool, and one client. Unpinned
//!   traffic splits across versions by weight (canary) or via a
//!   [`ModelSelector`] bandit ([`RuntimeBuilder::version_policy`]);
//!   **shadow** versions mirror traffic with responses discarded.
//! - **Key-hash shard routing**: equal [`Request::key`]s always land
//!   on the same shard ([`shard_for_key`]), and shards map onto
//!   workers.
//! - **Cross-process sharding** ([`WorkerTransport`]): a shard can be
//!   served by a *remote runtime* — an [`RemoteRuntimeNode`]-hosted
//!   process reached over TCP by a [`RemoteWorker`]
//!   ([`EndpointBuilder::shard_remote`]) — behind the same admission
//!   path, with per-shard transport latency in [`EndpointStats`],
//!   automatic fail-over to surviving shards, and remote plan
//!   counters folded into the scheduler's view
//!   ([`ServingRuntime::refresh_remote_counters`]).
//! - **Statistics-aware scheduling** ([`SchedulerPolicy`]): the
//!   scheduler reads each plan's `PlanCounters` (the `ServingPlan`
//!   IR's per-stage introspection) and gives escalation-heavy
//!   endpoints a dedicated tail of the worker pool.
//!
//! The legacy single-predictor surface — [`ClipperServer`] /
//! [`ClipperClient`] — is a thin shim over a single-endpoint runtime
//! and stays fully supported, including legacy wire frames without
//! endpoint fields. Shutdown is explicit and deadlock-free even while
//! client handles are still alive (see [`ServingRuntime::shutdown`]).
//!
//! The crate also reproduces Clipper's *model selection layer*
//! (paper §7): [`ModelSelector`] routes queries across several
//! [`Servable`]s with a multi-armed bandit ([`SelectionPolicy`]) —
//! standalone, or wired into the runtime as a version router.
//!
//! Every `willump::ServingPlan` is [`Servable`], so any lowered
//! optimization — or composition of optimizations (a cascade behind
//! an end-to-end cache with a top-K filter, say) — serves as one
//! endpoint, and [`ModelSelector::from_plans`] bandit-routes across
//! whole plans.

#![warn(missing_docs)]

mod cluster;
mod e2e_cache;
mod error;
mod monitor;
mod protocol;
mod remote;
mod runtime;
mod selection;
mod server;
pub mod wire2;

pub use cluster::{ClusterConfig, ClusterCoordinator, ClusterHandle, Migration, RemoteShardView};
pub use e2e_cache::E2eCachedPredictor;
pub use error::ServeError;
pub use monitor::{
    EndpointSample, MonitorConfig, MonitorEvent, MonitorHandle, MonitorSample, ShardSample,
    StatsHub, TimedEvent,
};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, error_wire,
    escape_json_string, is_overloaded_wire, ControlRequest, EndpointCounters, Request, Response,
    WireRow, ERROR_RESPONSE_ID,
};
pub use remote::{
    BreakerState, ForwardReply, InProcessWorker, RemoteRuntimeNode, RemoteWorker, TransportStats,
    WorkerTransport, REMOTE_WORKER_BREAKER_COOLDOWN, REMOTE_WORKER_BREAKER_FAILURES,
    REMOTE_WORKER_TIMEOUT,
};
pub use runtime::{
    shard_for_key, table_row_to_wire, AdmissionPolicy, Endpoint, EndpointBuilder, EndpointStats,
    EndpointStatsSnapshot, RuntimeBuilder, RuntimeClient, SchedulerPolicy, ServerStats,
    ServerStatsSnapshot, ServingRuntime, DEFAULT_ENDPOINT,
};
pub use selection::{ArmStats, ModelSelector, SelectionPolicy};
pub use server::{ClipperClient, ClipperServer, Servable, ServerConfig, ServerConfigBuilder};
