//! Cross-process sharding: the [`WorkerTransport`] layer.
//!
//! The [`crate::ServingRuntime`] routes every admitted request to a
//! shard of its target endpoint. Through PR 4 a shard was always an
//! in-process worker queue; this module makes the shard → execution
//! hop **pluggable**, so one endpoint can mix in-process shards with
//! shards served by *other runtimes* — in the same process or across
//! a TCP boundary in another process — behind the same admission
//! path, key-hash routing, canary/version selection, and
//! [`crate::EndpointStats`] accounting.
//!
//! Three pieces:
//!
//! - [`WorkerTransport`]: the trait a shard's execution backend
//!   implements — take one request, return the response.
//!   Implementations report [`TransportStats`] (forwards, failures,
//!   reconnects, cumulative latency, bytes on the wire, peak
//!   in-flight depth, decode errors), which the runtime surfaces per
//!   shard.
//! - [`RemoteWorker`]: the TCP implementation. It negotiates the
//!   [`crate::wire2`] binary protocol and **multiplexes** every
//!   in-flight forward onto one socket: each forward is tagged with a
//!   mux request id, written without waiting, and parked until a
//!   demultiplexing reader thread routes the matching response frame
//!   back to it — so concurrent forwards overlap on one connection
//!   instead of checking out pooled sockets. Peers that do not speak
//!   v2 (an older node answers the negotiation preamble with a JSON
//!   error line) transparently fall back to the legacy pooled
//!   newline-JSON path. Both paths preserve the same failure
//!   semantics: one transparent retry on a *connection-level* failure
//!   (the response can no longer arrive), but **never** after a read
//!   timeout — the node may still be executing the request, and
//!   resending would double-execute it exactly when the node is most
//!   loaded — plus a consecutive-failure circuit breaker that fails
//!   fast while a shard stays dead.
//! - [`RemoteRuntimeNode`]: the host side. Binds a listener and
//!   exposes a whole [`crate::ServingRuntime`] — all of its endpoints
//!   — to parent routers. A single **poll-based event loop** over
//!   nonblocking sockets owns every accepted connection (no
//!   thread-per-connection): it sniffs each connection's first line
//!   to pick v2-binary or legacy-JSON mode, reassembles frames with a
//!   bounded read (an oversized or corrupt length prefix is counted
//!   in `decode_errors` and refused, never trusted), and dispatches
//!   decoded requests to a small fixed worker pool whose completions
//!   are demultiplexed back onto the right connection by mux id.
//!
//! The **local queue** implementation of the trait is
//! [`InProcessWorker`]: it forwards requests to another runtime in
//! the same process through its client handle — the same code path as
//! [`RemoteWorker`] minus the socket, which makes transport behavior
//! testable without networking and documents that the native
//! in-process shard path is just the degenerate transport whose
//! "wire" is a channel send.
//!
//! Forwarded frames set [`crate::Request::forwarded`], which pins
//! them to the receiving node's *local* shards — a node can itself
//! have remote shards without ever creating a forwarding loop.
//!
//! # Examples
//!
//! Serve an endpoint from a child runtime over TCP:
//!
//! ```
//! use std::sync::Arc;
//! use willump_serve::{
//!     RemoteRuntimeNode, Servable, ServingRuntime, WireRow,
//! };
//! use willump_data::{Table, Value};
//!
//! struct Doubler;
//! impl Servable for Doubler {
//!     fn predict_table(&self, t: &Table) -> Result<Vec<f64>, String> {
//!         let xs = t.column("x").ok_or("missing x")?;
//!         Ok(xs.to_f64_vec().map_err(|e| e.to_string())?
//!             .into_iter().map(|x| 2.0 * x).collect())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Child: a runtime exposed on a TCP port.
//! let mut child = ServingRuntime::builder();
//! child.endpoint("double", Arc::new(Doubler));
//! let node = RemoteRuntimeNode::bind("127.0.0.1:0", child.build()?)?;
//!
//! // Parent: one local shard plus one shard served by the child.
//! let mut parent = ServingRuntime::builder();
//! parent
//!     .endpoint("double", Arc::new(Doubler))
//!     .shard_remote(&node.local_addr().to_string());
//! let runtime = parent.build()?;
//! let client = runtime.client();
//! let rows: Vec<WireRow> = vec![vec![("x".to_string(), Value::Float(3.0))]];
//! assert_eq!(client.predict_endpoint("double", rows)?, vec![6.0]);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use willump::PlanCountersSnapshot;

use crate::protocol::{decode_response, encode_request, Request, Response, ERROR_RESPONSE_ID};
use crate::runtime::{RuntimeClient, ServingRuntime};
use crate::wire2::{
    decode_header, decode_request_payload, decode_response_payload, encode_frame,
    encode_request_payload, encode_response_payload, read_frame, FrameReadError, FrameType,
    WIRE2_HEADER_LEN, WIRE2_MAGIC, WIRE2_PREAMBLE, WIRE2_PREAMBLE_LINE, WIRE2_VERSION,
};
use crate::ServeError;

/// Where a shard's work is executed: the boundary between the
/// runtime's routing layer and a worker that may live in another
/// process.
///
/// A transport takes one request and returns the response — exactly a
/// client's view of a serving runtime. The runtime measures each
/// forward and folds the latency into the endpoint's per-shard
/// counters; implementations additionally keep their own
/// [`TransportStats`].
pub trait WorkerTransport: Send + Sync {
    /// Forward one encoded legacy JSON request frame; return the raw
    /// wire response. This is the lowest common denominator every
    /// transport speaks; [`forward_request`] rides on it by default.
    ///
    /// [`forward_request`]: WorkerTransport::forward_request
    ///
    /// # Errors
    /// Returns [`ServeError::Transport`] (or
    /// [`ServeError::Disconnected`]) when the backing worker cannot
    /// be reached; the runtime then fails the request over to a
    /// surviving shard.
    fn forward(&self, frame: &str) -> Result<String, ServeError>;

    /// Human-readable backend description (`"tcp://127.0.0.1:9001"`,
    /// `"in-process"`), used in stats dumps and error messages.
    fn describe(&self) -> String;

    /// Cumulative transport counters.
    fn stats(&self) -> TransportStats;

    /// Forward one structured [`Request`]; return the decoded
    /// [`Response`] plus the bytes that crossed the wire. The default
    /// encodes to the legacy JSON frame and rides
    /// [`forward`](WorkerTransport::forward); [`RemoteWorker`]
    /// overrides it to skip JSON entirely and ship the compact
    /// [`crate::wire2`] binary payload over its multiplexed
    /// connection.
    ///
    /// # Errors
    /// [`ServeError::Transport`]/[`ServeError::Disconnected`] when
    /// the backing worker cannot be reached, [`ServeError::Codec`]
    /// when the request cannot be encoded or the reply cannot be
    /// decoded.
    fn forward_request(&self, req: &Request) -> Result<ForwardReply, ServeError> {
        let frame = encode_request(req)?;
        let bytes_sent = frame.len() as u64;
        let wire = self.forward(&frame)?;
        let bytes_received = wire.len() as u64;
        let response = decode_response(&wire)?;
        Ok(ForwardReply {
            response,
            bytes_sent,
            bytes_received,
        })
    }

    /// Forward a control/probe frame. Defaults to [`forward`]
    /// (probes then count as ordinary forwards); implementations
    /// whose stats feed latency dashboards should override this to
    /// keep probe round trips out of [`TransportStats`], as
    /// [`RemoteWorker`] does.
    ///
    /// [`forward`]: WorkerTransport::forward
    ///
    /// # Errors
    /// Same conditions as [`forward`](WorkerTransport::forward).
    fn forward_probe(&self, frame: &str) -> Result<String, ServeError> {
        self.forward(frame)
    }

    /// Where this transport's circuit breaker stands right now.
    /// Transports without a breaker are always
    /// [`BreakerState::Closed`]; [`RemoteWorker`] overrides this with
    /// its real state so health probers can target open shards.
    fn breaker_state(&self) -> BreakerState {
        BreakerState::Closed
    }

    /// Ask the backing runtime for one endpoint's
    /// [`PlanCountersSnapshot`] via a
    /// [`crate::ControlRequest::Counters`] probe frame.
    ///
    /// This is how a parent's escalation-aware scheduler reads plan
    /// statistics that accumulated in another process (see
    /// [`ServingRuntime::refresh_remote_counters`]).
    ///
    /// # Errors
    /// Returns [`ServeError::Transport`] when the probe cannot be
    /// delivered or the reply names no such endpoint.
    fn probe_counters(
        &self,
        endpoint: &str,
        version: u32,
    ) -> Result<PlanCountersSnapshot, ServeError> {
        let frame = encode_request(&Request::counters_probe(1))?;
        let resp = decode_response(&self.forward_probe(&frame)?)?;
        extract_counters(resp, endpoint, version, &self.describe())
    }
}

/// The result of one [`WorkerTransport::forward_request`] round trip:
/// the decoded response plus how many bytes crossed the transport in
/// each direction (0/0 for in-process transports, whose "wire" is a
/// channel send).
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardReply {
    /// The decoded response.
    pub response: Response,
    /// Bytes written to the transport for this request.
    pub bytes_sent: u64,
    /// Bytes read from the transport for this response.
    pub bytes_received: u64,
}

/// Pull one endpoint's snapshot out of a counters control response.
fn extract_counters(
    resp: Response,
    endpoint: &str,
    version: u32,
    who: &str,
) -> Result<PlanCountersSnapshot, ServeError> {
    if let Some(err) = resp.error {
        return Err(ServeError::Transport(format!(
            "counters probe failed: {err}"
        )));
    }
    resp.counters
        .unwrap_or_default()
        .into_iter()
        .find(|c| c.endpoint == endpoint && c.version == version)
        .map(|c| c.counters)
        .ok_or_else(|| {
            ServeError::Transport(format!(
                "node {who} reports no endpoint `{endpoint}` v{version}"
            ))
        })
}

/// Point-in-time counters of one [`WorkerTransport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames forwarded successfully.
    pub forwards: u64,
    /// Forwards that ultimately failed (after any reconnect attempt).
    pub failures: u64,
    /// Connections re-established after a drop (the first-ever
    /// connection does not count).
    pub reconnects: u64,
    /// Cumulative round-trip nanoseconds of successful forwards.
    pub total_nanos: u64,
    /// Bytes written to the transport (frame headers included).
    pub bytes_sent: u64,
    /// Bytes read from the transport.
    pub bytes_received: u64,
    /// Peak number of requests simultaneously in flight.
    pub max_in_flight: u64,
    /// Frames rejected as oversized or corrupt (bad magic/version,
    /// unknown frame type, length prefix past the bound, undecodable
    /// payload).
    pub decode_errors: u64,
    /// Health/counters probes attempted (never counted as forwards).
    pub probes_sent: u64,
    /// Probes that completed successfully. A success against an
    /// open-breaker node closes the breaker (re-admission).
    pub probes_ok: u64,
}

impl TransportStats {
    /// Mean round-trip seconds per successful forward (0 before the
    /// first success).
    pub fn mean_latency(&self) -> f64 {
        if self.forwards == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.forwards as f64 / 1e9
        }
    }

    /// Combine two snapshots (e.g. across an endpoint's shards):
    /// counters add, peak in-flight depth takes the max.
    #[must_use]
    pub fn merged(&self, other: &TransportStats) -> TransportStats {
        TransportStats {
            forwards: self.forwards + other.forwards,
            failures: self.failures + other.failures,
            reconnects: self.reconnects + other.reconnects,
            total_nanos: self.total_nanos + other.total_nanos,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            max_in_flight: self.max_in_flight.max(other.max_in_flight),
            decode_errors: self.decode_errors + other.decode_errors,
            probes_sent: self.probes_sent + other.probes_sent,
            probes_ok: self.probes_ok + other.probes_ok,
        }
    }
}

/// Where a transport's circuit breaker currently stands. Only
/// breaker-carrying transports ([`RemoteWorker`]) ever leave
/// [`Closed`](BreakerState::Closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Forwards flow normally (consecutive failures below threshold).
    Closed,
    /// Enough consecutive failures accumulated: counted forwards fail
    /// fast without touching the wire. Probes still go through.
    Open,
    /// The breaker is letting trial traffic through: either a health
    /// probe is in flight right now, or the cool-down elapsed and the
    /// next forward rides half-open. The first success closes it.
    Probing,
}

/// Shared atomic counters behind a [`TransportStats`] snapshot.
#[derive(Debug, Default)]
struct TransportCounters {
    forwards: AtomicU64,
    failures: AtomicU64,
    reconnects: AtomicU64,
    total_nanos: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    max_in_flight: AtomicU64,
    decode_errors: AtomicU64,
    probes_sent: AtomicU64,
    probes_ok: AtomicU64,
}

impl TransportCounters {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            forwards: self.forwards.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            probes_sent: self.probes_sent.load(Ordering::Relaxed),
            probes_ok: self.probes_ok.load(Ordering::Relaxed),
        }
    }

    fn record_success(&self, elapsed: Duration) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
        self.total_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Decrements an in-flight gauge when the tracked forward completes
/// (on any exit path).
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Bump an in-flight gauge, fold the new depth into
/// `max_in_flight`, and return the guard that undoes the bump.
fn enter_in_flight<'a>(gauge: &'a AtomicUsize, counters: &TransportCounters) -> InFlightGuard<'a> {
    let depth = gauge.fetch_add(1, Ordering::Relaxed) + 1;
    counters
        .max_in_flight
        .fetch_max(depth as u64, Ordering::Relaxed);
    InFlightGuard(gauge)
}

// ---- the local-queue transport -------------------------------------

/// The local implementation of [`WorkerTransport`]: forwards frames
/// to another [`ServingRuntime`] *in the same process* through a
/// regular client handle (whose sends land on the target runtime's
/// worker queues).
///
/// Functionally identical to [`RemoteWorker`] minus the socket:
/// useful for testing transport routing without networking, and for
/// composing runtimes inside one process (e.g. giving a tenant's
/// endpoint its own isolated worker pool).
pub struct InProcessWorker {
    client: RuntimeClient,
    in_flight: AtomicUsize,
    counters: TransportCounters,
}

impl std::fmt::Debug for InProcessWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessWorker")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl InProcessWorker {
    /// A transport forwarding to `runtime`'s worker queues.
    #[must_use]
    pub fn new(runtime: &ServingRuntime) -> InProcessWorker {
        InProcessWorker {
            client: runtime.client(),
            in_flight: AtomicUsize::new(0),
            counters: TransportCounters::default(),
        }
    }
}

impl WorkerTransport for InProcessWorker {
    fn forward(&self, frame: &str) -> Result<String, ServeError> {
        let start = Instant::now();
        let _guard = enter_in_flight(&self.in_flight, &self.counters);
        match self.client.call_raw(frame.to_string()) {
            Ok(wire) => {
                self.counters.record_success(start.elapsed());
                Ok(wire)
            }
            Err(e) => {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Skips the JSON boundary entirely: the request reaches the
    /// target runtime's admission path as a struct (the "wire" is a
    /// channel send, so both byte counts are 0).
    fn forward_request(&self, req: &Request) -> Result<ForwardReply, ServeError> {
        let start = Instant::now();
        let _guard = enter_in_flight(&self.in_flight, &self.counters);
        match self.client.call_request(req.clone()) {
            Ok(response) => {
                self.counters.record_success(start.elapsed());
                Ok(ForwardReply {
                    response,
                    bytes_sent: 0,
                    bytes_received: 0,
                })
            }
            Err(e) => {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn describe(&self) -> String {
        // The runtime id distinguishes two in-process backends, so
        // per-backend deduplication (counter merging) stays correct.
        format!("in-process:{:x}", self.client.runtime_id())
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

// ---- the TCP transport ---------------------------------------------

/// One half-open legacy connection: the write side and a buffered
/// read side of the same stream.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One response (or drop notice) routed to a parked mux waiter.
enum MuxEvent {
    /// A response frame arrived for this waiter's mux id.
    Frame(FrameType, Vec<u8>),
    /// The connection died before the response arrived; the response
    /// can no longer arrive here, so a fresh-connection retry is safe.
    Dropped,
}

/// One multiplexed v2 connection: many in-flight forwards share the
/// socket, each tagged with a mux request id; a dedicated reader
/// thread demultiplexes response frames back to the parked waiters.
struct MuxConn {
    /// Write half. Locked per frame write only — never across a round
    /// trip — so concurrent forwards interleave their frames.
    writer: Mutex<TcpStream>,
    /// Extra handle used to `shutdown()` the socket: the reader
    /// thread blocks without a read timeout (a timeout mid-frame
    /// would tear the stream for every in-flight request), so socket
    /// shutdown is how it is woken for teardown.
    wake: TcpStream,
    /// Parked forwards by mux id.
    waiters: Mutex<HashMap<u32, Sender<MuxEvent>>>,
    /// Next mux correlation id (wraps; ids are transient).
    next_id: AtomicU32,
    /// Set once the reader exits (EOF, I/O error, corrupt frame) or
    /// the connection is killed; no new forwards board after this.
    dead: AtomicBool,
}

impl MuxConn {
    fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
        let _ = self.wake.shutdown(Shutdown::Both);
    }
}

/// Demultiplexing reader loop: routes each response frame to the
/// waiter registered under its mux id. An id with no waiter is a
/// response that arrived after its forward timed out — dropped by
/// design, because the forward was never resent. On exit every parked
/// waiter is notified that the connection dropped.
fn mux_reader(
    conn: &Arc<MuxConn>,
    reader: &mut BufReader<TcpStream>,
    counters: &TransportCounters,
) {
    loop {
        if conn.dead.load(Ordering::Relaxed) {
            break;
        }
        match read_frame(reader) {
            Ok(Some((hdr, payload))) => {
                counters
                    .bytes_received
                    .fetch_add((WIRE2_HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
                match hdr.frame_type {
                    FrameType::BinResponse | FrameType::JsonResponse => {
                        let waiter = conn.waiters.lock().remove(&hdr.request_id);
                        if let Some(tx) = waiter {
                            let _ = tx.send(MuxEvent::Frame(hdr.frame_type, payload));
                        }
                    }
                    FrameType::HelloAck => {}
                    FrameType::BinRequest | FrameType::JsonRequest => {
                        // A node must answer with response frames;
                        // request frames here mean the stream is torn.
                        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            Ok(None) => break,
            Err(FrameReadError::Corrupt(_)) => {
                counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(FrameReadError::Io(_)) => break,
        }
    }
    // Order matters: `dead` is set before the drain (both sides
    // touch the waiters map under its lock), so a forward either
    // boards in time to be drained or observes `dead` after boarding.
    conn.dead.store(true, Ordering::Relaxed);
    let waiters: Vec<(u32, Sender<MuxEvent>)> = conn.waiters.lock().drain().collect();
    for (_, tx) in waiters {
        let _ = tx.send(MuxEvent::Dropped);
    }
}

/// What a fresh dial negotiated.
enum Negotiated {
    /// The peer speaks wire2: a live multiplexed connection.
    Mux(Arc<MuxConn>),
    /// The peer answered the preamble with a JSON line: a legacy
    /// newline-JSON connection.
    Legacy(Conn),
}

/// How one mux round trip failed.
struct MuxFailure {
    /// Connection-level: the response can no longer arrive on this
    /// connection, so one fresh-connection retry is safe. Never set
    /// for a timeout (the node may still be executing the request).
    retryable: bool,
    timed_out: bool,
    error: ServeError,
}

/// What a mux forward produced.
enum MuxServed {
    /// A response frame (type, payload, bytes sent, bytes received).
    Frame(FrameType, Vec<u8>, u64, u64),
    /// The dial discovered a legacy peer mid-forward: the connection
    /// went to the idle pool and the caller should take the legacy
    /// JSON path.
    PeerIsLegacy,
}

/// A TCP [`WorkerTransport`]: forwards requests to a
/// [`RemoteRuntimeNode`] (typically in another process) over the
/// [`crate::wire2`] binary protocol.
///
/// The connection is **multiplexed**: every concurrent forward shares
/// one socket, tagged with a mux request id and parked until the
/// demux reader routes its response frame back — so parallel requests
/// to one shard overlap their round trips without per-request
/// sockets. Dialing is **lazy** (nothing until the first forward) and
/// **negotiated**: a peer that does not speak v2 is detected on the
/// first dial and served over the legacy pooled newline-JSON path for
/// the life of this worker
/// ([`with_legacy_json`](Self::with_legacy_json) forces that path
/// without probing).
///
/// Failure semantics match the legacy transport exactly: a connect,
/// send, or connection-drop failure retries once on a fresh
/// connection before the error is reported, so a restarted node is
/// picked back up without intervention. A **read timeout** is
/// deliberately *not* retried: the node may be alive and still
/// executing the request, and resending the frame would execute it a
/// second time exactly when the node is at its most loaded — the
/// error surfaces instead, and the runtime's shard fail-over decides
/// what to do. (Unlike a drop, a timeout leaves the multiplexed
/// connection in service: other in-flight forwards are unaffected,
/// and a response arriving after its waiter gave up is discarded by
/// mux id.)
pub struct RemoteWorker {
    addr: String,
    timeout: Duration,
    /// Never negotiate v2 (forced by [`Self::with_legacy_json`]).
    force_legacy: bool,
    /// The peer answered the v2 preamble with a JSON line: stop
    /// negotiating and speak legacy for the life of this worker.
    peer_legacy: AtomicBool,
    /// The live multiplexed connection, if any.
    mux: Mutex<Option<Arc<MuxConn>>>,
    /// Idle legacy connections (only used against legacy peers).
    idle: Mutex<Vec<Conn>>,
    /// Current in-flight depth (feeds `TransportStats::max_in_flight`).
    in_flight: AtomicUsize,
    /// A failure happened since the last successful dial (drives
    /// reconnect accounting: a dial that clears this counts as a
    /// reconnect, a dial that merely grows the pool does not).
    broken: AtomicBool,
    /// Circuit breaker: consecutive failed forwards, and when the
    /// last one happened. Once `consecutive_failures` reaches
    /// `breaker_threshold`, forwards fail fast (no dial, no timeout
    /// wait) until `breaker_cooldown` has elapsed since the last
    /// failure; then one trial forward is let through (half-open).
    consecutive_failures: AtomicU64,
    last_failure: Mutex<Option<Instant>>,
    breaker_threshold: u64,
    breaker_cooldown: Duration,
    /// A health probe is in flight right now (drives
    /// [`BreakerState::Probing`] independent of the cool-down clock).
    probing: AtomicBool,
    counters: Arc<TransportCounters>,
}

/// Idle legacy connections kept per [`RemoteWorker`]; checkouts
/// beyond this still dial (concurrency is unbounded), the surplus is
/// just not pooled on return. Only the legacy-JSON fallback path
/// pools connections — the v2 path multiplexes one socket.
const REMOTE_WORKER_POOL: usize = 8;

/// Default consecutive-failure threshold that opens a
/// [`RemoteWorker`]'s circuit breaker (see
/// [`RemoteWorker::with_breaker`]).
pub const REMOTE_WORKER_BREAKER_FAILURES: u64 = 3;

/// Default cool-down an open [`RemoteWorker`] breaker waits before
/// letting a half-open trial forward through.
pub const REMOTE_WORKER_BREAKER_COOLDOWN: Duration = Duration::from_secs(1);

/// An I/O failure, classified by whether it was a read timeout (the
/// request may still be executing remotely — never resent) or a
/// connection-level failure (safe to retry on a fresh connection).
struct IoFailure {
    timed_out: bool,
    error: ServeError,
}

impl std::fmt::Debug for RemoteWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteWorker")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Default I/O timeout for [`RemoteWorker`] connections: generous
/// enough for a loaded node serving a large batch, short enough that
/// a wedged node triggers fail-over rather than hanging clients.
pub const REMOTE_WORKER_TIMEOUT: Duration = Duration::from_secs(10);

impl RemoteWorker {
    /// A transport to the node at `addr` (`"host:port"`). No
    /// connection is attempted until the first forward.
    #[must_use]
    pub fn new(addr: &str) -> RemoteWorker {
        RemoteWorker {
            addr: addr.to_string(),
            timeout: REMOTE_WORKER_TIMEOUT,
            force_legacy: false,
            peer_legacy: AtomicBool::new(false),
            mux: Mutex::new(None),
            idle: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            broken: AtomicBool::new(false),
            consecutive_failures: AtomicU64::new(0),
            last_failure: Mutex::new(None),
            breaker_threshold: REMOTE_WORKER_BREAKER_FAILURES,
            breaker_cooldown: REMOTE_WORKER_BREAKER_COOLDOWN,
            probing: AtomicBool::new(false),
            counters: Arc::new(TransportCounters::default()),
        }
    }

    /// Override the circuit breaker (default
    /// [`REMOTE_WORKER_BREAKER_FAILURES`] consecutive failures, then
    /// fail fast for [`REMOTE_WORKER_BREAKER_COOLDOWN`] per failure).
    /// `threshold` 0 disables the breaker entirely: every forward to
    /// a dead node then pays its full dial/timeout cost before the
    /// runtime fails over.
    #[must_use]
    pub fn with_breaker(mut self, threshold: u64, cooldown: Duration) -> RemoteWorker {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Override the connect/read/write timeout (default
    /// [`REMOTE_WORKER_TIMEOUT`]).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> RemoteWorker {
        self.timeout = timeout;
        self
    }

    /// Skip v2 negotiation entirely and speak the legacy pooled
    /// newline-JSON protocol (what [`RemoteWorker`] falls back to
    /// automatically when the peer rejects the preamble). Useful for
    /// pinning interop behavior in tests or against intermediaries
    /// that cannot pass unknown bytes through.
    #[must_use]
    pub fn with_legacy_json(mut self) -> RemoteWorker {
        self.force_legacy = true;
        self
    }

    /// The target address this transport forwards to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn legacy_peer(&self) -> bool {
        self.force_legacy || self.peer_legacy.load(Ordering::Relaxed)
    }

    /// Dial and negotiate. Sends the v2 preamble (unless this worker
    /// is pinned legacy) and sniffs the first reply byte: the frame
    /// magic means a v2 node (consume its `HelloAck`, start the demux
    /// reader); anything else is a legacy node answering with a JSON
    /// error line (consume the line, remember the peer is legacy).
    fn dial(&self) -> Result<Negotiated, ServeError> {
        let io = |e: std::io::Error| ServeError::Transport(format!("{}: {e}", self.addr));
        let sockaddr = self
            .addr
            .to_socket_addrs()
            .map_err(io)?
            .next()
            .ok_or_else(|| {
                ServeError::Transport(format!("{}: address resolves to nothing", self.addr))
            })?;
        let stream = TcpStream::connect_timeout(&sockaddr, self.timeout).map_err(io)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(io)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(io)?;
        stream.set_nodelay(true).map_err(io)?;
        let mut writer = stream;
        let mut reader = BufReader::new(writer.try_clone().map_err(io)?);
        if self.legacy_peer() {
            return Ok(Negotiated::Legacy(Conn { writer, reader }));
        }
        writer.write_all(WIRE2_PREAMBLE).map_err(io)?;
        writer.flush().map_err(io)?;
        let first = loop {
            match reader.fill_buf() {
                Ok([]) => {
                    return Err(ServeError::Transport(format!(
                        "{}: node closed the connection during negotiation",
                        self.addr
                    )))
                }
                Ok(buf) => break buf[0],
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io(e)),
            }
        };
        if first == WIRE2_MAGIC {
            match read_frame(&mut reader) {
                Ok(Some((hdr, _))) if hdr.frame_type == FrameType::HelloAck => {}
                Ok(_) => {
                    return Err(ServeError::Transport(format!(
                        "{}: unexpected frame during negotiation",
                        self.addr
                    )))
                }
                Err(e) => return Err(ServeError::Transport(format!("{}: {e}", self.addr))),
            }
            // The demux reader blocks without a read timeout (a
            // timeout mid-frame would tear the stream for every
            // in-flight forward); per-forward timeouts live on the
            // waiters, and teardown wakes the reader via shutdown.
            writer.set_read_timeout(None).map_err(io)?;
            let wake = writer.try_clone().map_err(io)?;
            let conn = Arc::new(MuxConn {
                writer: Mutex::new(writer),
                wake,
                waiters: Mutex::new(HashMap::new()),
                next_id: AtomicU32::new(1),
                dead: AtomicBool::new(false),
            });
            let thread_conn = Arc::clone(&conn);
            let counters = Arc::clone(&self.counters);
            std::thread::Builder::new()
                .name("willump-mux-reader".to_string())
                .spawn(move || mux_reader(&thread_conn, &mut reader, &counters))
                .map_err(io)?;
            Ok(Negotiated::Mux(conn))
        } else {
            // A legacy node answered the preamble with a JSON error
            // line: consume it, then reuse the connection as a
            // perfectly good legacy one.
            let mut line = Vec::new();
            let n = reader.read_until(b'\n', &mut line).map_err(io)?;
            if n == 0 {
                return Err(ServeError::Transport(format!(
                    "{}: node closed the connection during negotiation",
                    self.addr
                )));
            }
            self.peer_legacy.store(true, Ordering::Relaxed);
            Ok(Negotiated::Legacy(Conn { writer, reader }))
        }
    }

    /// One write + read round trip on an established legacy
    /// connection.
    fn round_trip(&self, conn: &mut Conn, frame: &str) -> Result<String, IoFailure> {
        let io = |e: std::io::Error| IoFailure {
            timed_out: matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            error: ServeError::Transport(format!("{}: {e}", self.addr)),
        };
        conn.writer.write_all(frame.as_bytes()).map_err(io)?;
        conn.writer.write_all(b"\n").map_err(io)?;
        conn.writer.flush().map_err(io)?;
        self.counters
            .bytes_sent
            .fetch_add(frame.len() as u64 + 1, Ordering::Relaxed);
        // Read raw bytes (a timeout mid-frame must not be confused
        // with a UTF-8 boundary), then decode once the line is whole.
        let mut buf = Vec::new();
        let n = conn.reader.read_until(b'\n', &mut buf).map_err(io)?;
        if n == 0 {
            return Err(IoFailure {
                timed_out: false,
                error: ServeError::Transport(format!("{}: node closed the connection", self.addr)),
            });
        }
        self.counters
            .bytes_received
            .fetch_add(n as u64, Ordering::Relaxed);
        while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
            buf.pop();
        }
        String::from_utf8(buf).map_err(|e| IoFailure {
            timed_out: false,
            error: ServeError::Transport(format!("{}: response is not UTF-8: {e}", self.addr)),
        })
    }

    /// Fail this forward: remember the transport is broken (the next
    /// successful dial counts as a reconnect) and, for counted
    /// (non-probe) forwards, feed the stats and the circuit breaker.
    fn fail(&self, error: ServeError, record: bool) -> ServeError {
        self.broken.store(true, Ordering::Relaxed);
        self.fail_keep(error, record)
    }

    /// Fail this forward *without* marking the transport broken —
    /// used for mux timeouts, where the connection stays in service
    /// for the other in-flight forwards.
    fn fail_keep(&self, error: ServeError, record: bool) -> ServeError {
        if record {
            self.counters.failures.fetch_add(1, Ordering::Relaxed);
            self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
            *self.last_failure.lock() = Some(Instant::now());
        }
        error
    }

    /// Record a counted forward's success and close the breaker.
    fn succeed(&self, start: Instant) {
        self.counters.record_success(start.elapsed());
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Whether the circuit breaker currently rejects forwards. Open
    /// fails fast; [`BreakerState::Probing`] (half-open or probe in
    /// flight) lets forwards proceed — the first success closes it.
    fn breaker_open(&self) -> bool {
        self.state() == BreakerState::Open
    }

    /// This worker's explicit breaker state: below the failure
    /// threshold the breaker is [`Closed`](BreakerState::Closed); at
    /// or past it, the breaker is [`Probing`](BreakerState::Probing)
    /// while a health probe is in flight or once the cool-down since
    /// the last failure elapsed (half-open), and
    /// [`Open`](BreakerState::Open) otherwise.
    pub fn state(&self) -> BreakerState {
        if self.breaker_threshold == 0
            || self.consecutive_failures.load(Ordering::Relaxed) < self.breaker_threshold
        {
            return BreakerState::Closed;
        }
        if self.probing.load(Ordering::Relaxed) {
            return BreakerState::Probing;
        }
        let cooling = self
            .last_failure
            .lock()
            .is_some_and(|t| t.elapsed() < self.breaker_cooldown);
        if cooling {
            BreakerState::Open
        } else {
            BreakerState::Probing
        }
    }

    /// Return a healthy legacy connection to the idle pool (bounded).
    fn check_in(&self, conn: Conn) {
        let mut idle = self.idle.lock();
        if idle.len() < REMOTE_WORKER_POOL {
            idle.push(conn);
        }
    }

    /// Get the live mux connection or dial one. `Ok(None)` means the
    /// dial discovered a legacy peer (its connection went to the idle
    /// pool and `peer_legacy` is now set).
    fn mux_establish(&self) -> Result<Option<Arc<MuxConn>>, ServeError> {
        let mut slot = self.mux.lock();
        if let Some(conn) = slot.as_ref() {
            if !conn.dead.load(Ordering::Relaxed) {
                return Ok(Some(Arc::clone(conn)));
            }
            // The connection died since the last successful dial
            // (node restart, reader error): like a stale pooled
            // legacy connection, the fresh dial below must count as
            // a reconnect even when no forward failed in between.
            self.broken.store(true, Ordering::Relaxed);
        }
        match self.dial()? {
            Negotiated::Mux(conn) => {
                if self.broken.swap(false, Ordering::Relaxed) {
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                *slot = Some(Arc::clone(&conn));
                Ok(Some(conn))
            }
            Negotiated::Legacy(conn) => {
                if self.broken.swap(false, Ordering::Relaxed) {
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                self.check_in(conn);
                Ok(None)
            }
        }
    }

    /// One tagged round trip on an established mux connection: board
    /// a waiter, write the frame (the writer lock covers the write
    /// only, never the wait), then park until the demux reader routes
    /// the response back or the per-forward timeout fires.
    fn mux_round(
        &self,
        conn: &Arc<MuxConn>,
        ftype: FrameType,
        payload: &[u8],
    ) -> Result<(FrameType, Vec<u8>, u64, u64), MuxFailure> {
        let id = conn.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = encode_frame(ftype, id, payload).map_err(|e| MuxFailure {
            retryable: false,
            timed_out: false,
            error: e,
        })?;
        let (tx, rx) = bounded(1);
        conn.waiters.lock().insert(id, tx);
        // The reader sets `dead` before draining waiters (both under
        // the waiters lock), so either it saw this waiter and will
        // notify it, or this check observes `dead` — never neither.
        if conn.dead.load(Ordering::Relaxed) {
            conn.waiters.lock().remove(&id);
            return Err(MuxFailure {
                retryable: true,
                timed_out: false,
                error: ServeError::Transport(format!("{}: connection dropped", self.addr)),
            });
        }
        let write_result = { conn.writer.lock().write_all(&frame) };
        if let Err(e) = write_result {
            conn.waiters.lock().remove(&id);
            conn.kill();
            let timed_out = matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            );
            return Err(MuxFailure {
                // A write timeout may have torn a partial frame onto
                // the wire; like a read timeout it is never retried.
                retryable: !timed_out,
                timed_out,
                error: ServeError::Transport(format!("{}: {e}", self.addr)),
            });
        }
        let sent = frame.len() as u64;
        self.counters.bytes_sent.fetch_add(sent, Ordering::Relaxed);
        match rx.recv_timeout(self.timeout) {
            Ok(MuxEvent::Frame(frame_type, body)) => {
                let received = (WIRE2_HEADER_LEN + body.len()) as u64;
                Ok((frame_type, body, sent, received))
            }
            Ok(MuxEvent::Dropped) => Err(MuxFailure {
                retryable: true,
                timed_out: false,
                error: ServeError::Transport(format!(
                    "{}: connection dropped before the response arrived",
                    self.addr
                )),
            }),
            Err(_) => {
                // The node may still be executing this request: do
                // NOT resend it. Unpark, leave the connection in
                // service; a late response is discarded by mux id.
                conn.waiters.lock().remove(&id);
                Err(MuxFailure {
                    retryable: false,
                    timed_out: true,
                    error: ServeError::Transport(format!(
                        "{}: read timed out after {:?}",
                        self.addr, self.timeout
                    )),
                })
            }
        }
    }

    /// The shared mux forward path: breaker check, one round on the
    /// live connection, and — only for connection-level failures —
    /// one retry on a fresh dial. `record: false` (counters probes)
    /// skips the stats counters and breaker accounting.
    fn mux_forward(
        &self,
        ftype: FrameType,
        payload: &[u8],
        record: bool,
    ) -> Result<MuxServed, ServeError> {
        // Probes (`record: false`) bypass the open breaker: they are
        // exactly how an open shard is discovered to have recovered.
        if record && self.breaker_open() {
            self.counters.failures.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Transport(format!(
                "{}: circuit open after {} consecutive failures",
                self.addr,
                self.consecutive_failures.load(Ordering::Relaxed)
            )));
        }
        let start = Instant::now();
        // Attempt 1: the live multiplexed connection, if any.
        let existing = { self.mux.lock().clone() };
        if let Some(conn) = existing.filter(|c| !c.dead.load(Ordering::Relaxed)) {
            match self.mux_round(&conn, ftype, payload) {
                Ok((frame_type, body, sent, received)) => {
                    if record {
                        self.succeed(start);
                    }
                    return Ok(MuxServed::Frame(frame_type, body, sent, received));
                }
                Err(f) if !f.retryable => return Err(self.fail_keep(f.error, record)),
                // The connection dropped mid-flight: the response
                // cannot arrive on it, so a single fresh-connection
                // retry is safe. Mark the transport broken — the
                // fresh dial below counts as a reconnect.
                Err(_) => self.broken.store(true, Ordering::Relaxed),
            }
        }
        // Attempt 2: a fresh connection.
        let conn = match self.mux_establish() {
            Ok(Some(conn)) => conn,
            Ok(None) => return Ok(MuxServed::PeerIsLegacy),
            Err(e) => return Err(self.fail(e, record)),
        };
        match self.mux_round(&conn, ftype, payload) {
            Ok((frame_type, body, sent, received)) => {
                if record {
                    self.succeed(start);
                }
                Ok(MuxServed::Frame(frame_type, body, sent, received))
            }
            Err(f) if f.timed_out => Err(self.fail_keep(f.error, record)),
            Err(f) => Err(self.fail(f.error, record)),
        }
    }

    /// The shared legacy-JSON forward path (pooled connections);
    /// `record: false` (counters probes) skips the stats counters and
    /// breaker accounting, so periodic probes cannot dilute the mean
    /// forward latency or flap the breaker.
    fn forward_impl(&self, frame: &str, record: bool) -> Result<String, ServeError> {
        // Circuit breaker: a shard that keeps failing fails fast —
        // no dial, no timeout wait — so keyed traffic sticky to a
        // dead node degrades by one cheap error instead of a full
        // connect timeout per request. Probes (`record: false`)
        // bypass it — they are how recovery is discovered.
        if record && self.breaker_open() {
            self.counters.failures.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Transport(format!(
                "{}: circuit open after {} consecutive failures",
                self.addr,
                self.consecutive_failures.load(Ordering::Relaxed)
            )));
        }
        let start = Instant::now();
        // Attempt 1: a pooled idle connection, held OUTSIDE the pool
        // lock so concurrent forwards overlap their round trips (the
        // pop is bound to a `let` first — an `if let` scrutinee would
        // keep the pool locked for the whole block).
        let pooled = self.idle.lock().pop();
        if let Some(mut conn) = pooled {
            match self.round_trip(&mut conn, frame) {
                Ok(line) => {
                    if record {
                        self.succeed(start);
                    }
                    self.check_in(conn);
                    return Ok(line);
                }
                // The node may still be executing this request: do
                // NOT resend it (that would double-execute exactly
                // when the node is most loaded). Fail and let the
                // runtime's shard fail-over decide.
                Err(f) if f.timed_out => return Err(self.fail(f.error, record)),
                // A dropped/stale pooled connection (e.g. the node
                // restarted): the response cannot arrive on it, so a
                // single fresh-connection retry is safe. Mark the
                // transport broken — the fresh dial below counts as
                // a reconnect — and fall through.
                Err(_) => self.broken.store(true, Ordering::Relaxed),
            }
        }
        // Attempt 2: a fresh connection.
        let mut conn = match self.dial() {
            Ok(Negotiated::Legacy(conn)) => {
                if self.broken.swap(false, Ordering::Relaxed) {
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                conn
            }
            // Unreachable in practice: this path only runs once the
            // peer is known legacy, and dial() then skips
            // negotiation entirely.
            Ok(Negotiated::Mux(mux)) => {
                mux.kill();
                return Err(self.fail(
                    ServeError::Transport(format!(
                        "{}: peer switched protocols between connections",
                        self.addr
                    )),
                    record,
                ));
            }
            Err(e) => return Err(self.fail(e, record)),
        };
        match self.round_trip(&mut conn, frame) {
            Ok(line) => {
                if record {
                    self.succeed(start);
                }
                self.check_in(conn);
                Ok(line)
            }
            Err(f) => Err(self.fail(f.error, record)),
        }
    }

    /// Forward one raw legacy JSON frame: over the mux (as an opaque
    /// [`FrameType::JsonRequest`]) when the peer speaks v2, else over
    /// the pooled legacy path.
    fn forward_raw(&self, frame: &str, record: bool) -> Result<String, ServeError> {
        // The JSON encoder escapes control characters inside strings,
        // so a well-formed frame is always newline-free; reject
        // anything else rather than desynchronize the stream.
        if frame.contains('\n') {
            if record {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
            }
            return Err(ServeError::Transport(
                "frame contains a raw newline".to_string(),
            ));
        }
        let _guard = enter_in_flight(&self.in_flight, &self.counters);
        if self.legacy_peer() {
            return self.forward_impl(frame, record);
        }
        match self.mux_forward(FrameType::JsonRequest, frame.as_bytes(), record)? {
            MuxServed::PeerIsLegacy => self.forward_impl(frame, record),
            MuxServed::Frame(FrameType::JsonResponse, body, _, _) => String::from_utf8(body)
                .map_err(|e| {
                    self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    ServeError::Transport(format!("{}: response is not UTF-8: {e}", self.addr))
                }),
            MuxServed::Frame(other, _, _, _) => {
                self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Transport(format!(
                    "{}: unexpected {other:?} response to a JSON frame",
                    self.addr
                )))
            }
        }
    }

    /// Forward one structured request, binary end to end when the
    /// peer speaks v2.
    fn forward_request_impl(
        &self,
        req: &Request,
        record: bool,
    ) -> Result<ForwardReply, ServeError> {
        let _guard = enter_in_flight(&self.in_flight, &self.counters);
        if self.legacy_peer() {
            return self.forward_request_legacy(req, record);
        }
        let payload = encode_request_payload(req);
        match self.mux_forward(FrameType::BinRequest, &payload, record)? {
            MuxServed::PeerIsLegacy => self.forward_request_legacy(req, record),
            MuxServed::Frame(frame_type, body, bytes_sent, bytes_received) => {
                let decoded = match frame_type {
                    FrameType::BinResponse => decode_response_payload(&body),
                    FrameType::JsonResponse => std::str::from_utf8(&body)
                        .map_err(|e| ServeError::Codec(format!("response is not UTF-8: {e}")))
                        .and_then(decode_response),
                    other => Err(ServeError::Codec(format!(
                        "unexpected {other:?} response to a binary request"
                    ))),
                };
                match decoded {
                    Ok(response) => Ok(ForwardReply {
                        response,
                        bytes_sent,
                        bytes_received,
                    }),
                    Err(e) => {
                        self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        Err(self.fail_keep(
                            ServeError::Transport(format!("{}: {e}", self.addr)),
                            record,
                        ))
                    }
                }
            }
        }
    }

    /// The structured forward over the legacy pooled JSON path.
    fn forward_request_legacy(
        &self,
        req: &Request,
        record: bool,
    ) -> Result<ForwardReply, ServeError> {
        let frame = encode_request(req)?;
        let wire = self.forward_impl(&frame, record)?;
        let response = decode_response(&wire)?;
        Ok(ForwardReply {
            response,
            bytes_sent: frame.len() as u64 + 1,
            bytes_received: wire.len() as u64 + 1,
        })
    }
}

impl Drop for RemoteWorker {
    fn drop(&mut self) {
        // Wake the demux reader (it blocks without a read timeout) so
        // its thread exits instead of outliving this worker.
        if let Some(conn) = self.mux.lock().take() {
            conn.kill();
        }
    }
}

impl WorkerTransport for RemoteWorker {
    fn forward(&self, frame: &str) -> Result<String, ServeError> {
        self.forward_raw(frame, true)
    }

    fn forward_request(&self, req: &Request) -> Result<ForwardReply, ServeError> {
        self.forward_request_impl(req, true)
    }

    fn describe(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// Probes ride the same mux/retry path but are *not* counted as
    /// forwards, so periodic [`ServingRuntime::refresh_remote_counters`]
    /// polling cannot dilute the mean forward latency or desync
    /// `TransportStats::forwards` from the runtime's own
    /// `remote_forwards`. They bypass an open breaker (the breaker
    /// reads [`BreakerState::Probing`] while one is in flight), and a
    /// successful probe closes it — this is how a health prober
    /// re-admits a recovered node.
    fn forward_probe(&self, frame: &str) -> Result<String, ServeError> {
        self.counters.probes_sent.fetch_add(1, Ordering::Relaxed);
        self.probing.store(true, Ordering::Relaxed);
        let result = self.forward_raw(frame, false);
        self.probing.store(false, Ordering::Relaxed);
        if result.is_ok() {
            self.counters.probes_ok.fetch_add(1, Ordering::Relaxed);
            // The node answered: close the breaker so counted
            // forwards flow again (automatic re-admission).
            self.consecutive_failures.store(0, Ordering::Relaxed);
        }
        result
    }

    fn breaker_state(&self) -> BreakerState {
        self.state()
    }
}

// ---- the host side -------------------------------------------------

/// Upper bound on the first line read while sniffing a connection's
/// protocol: a client that sends this much without a newline speaks
/// neither wire2 nor newline-JSON and is dropped.
const NODE_PROBE_LIMIT: usize = 64 * 1024;

/// How long after the last observed activity the event loop keeps
/// spin-yielding (cheap, low-latency) before falling back to a
/// blocking completion wait.
const NODE_SPIN_WINDOW: Duration = Duration::from_micros(500);

/// Blocking completion-wait slice once the loop is idle; also bounds
/// how stale the shutdown-flag check can get.
const NODE_IDLE_WAIT: Duration = Duration::from_millis(2);

/// Per-call chunk size of the event loop's nonblocking reads.
const NODE_READ_CHUNK: usize = 16 * 1024;

/// Which protocol a node-side connection speaks.
enum ConnMode {
    /// First line not seen yet.
    Probing,
    /// Legacy newline-delimited JSON.
    Json,
    /// Multiplexed wire2 frames.
    Wire2,
}

/// Per-connection state owned by the node's event loop.
struct NodeConn {
    stream: TcpStream,
    /// Generation stamp carried by dispatched jobs, so a slot reused
    /// by a later connection never receives a stale completion.
    gen: u64,
    mode: ConnMode,
    /// Unparsed inbound bytes.
    rbuf: Vec<u8>,
    /// Outbound bytes not yet written.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has been written so far.
    wpos: usize,
    /// Requests dispatched to workers and not yet completed.
    in_flight: usize,
    /// Legacy lines waiting their turn: a pipelined legacy client
    /// expects responses in request order (there are no mux ids on
    /// that path), so Json-mode dispatch is serialized per
    /// connection. Wire2 frames dispatch with unlimited parallelism.
    json_queue: VecDeque<String>,
    /// A Json-mode line is currently with a worker.
    json_busy: bool,
    /// Stop reading; close once in-flight work and writes drain.
    draining: bool,
    /// Drop the connection now (protocol violation or I/O error).
    fatal: bool,
}

impl NodeConn {
    fn new(stream: TcpStream, gen: u64) -> NodeConn {
        NodeConn {
            stream,
            gen,
            mode: ConnMode::Probing,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: 0,
            json_queue: VecDeque::new(),
            json_busy: false,
            draining: false,
            fatal: false,
        }
    }
}

/// One unit of work dispatched from the event loop to the worker
/// pool.
enum NodeJob {
    /// A legacy newline-JSON line.
    Json { slot: usize, gen: u64, line: String },
    /// A binary wire2 request payload.
    Bin {
        slot: usize,
        gen: u64,
        mux_id: u32,
        payload: Vec<u8>,
    },
    /// A legacy JSON frame carried opaquely over the mux (a v2
    /// client's raw-frame forward).
    JsonFramed {
        slot: usize,
        gen: u64,
        mux_id: u32,
        payload: Vec<u8>,
    },
}

/// A worker's completion, routed back to the owning connection.
struct NodeDone {
    slot: usize,
    gen: u64,
    /// Wire bytes to append to the connection's write buffer.
    bytes: Vec<u8>,
    /// Drain the connection after flushing (unservable request).
    close: bool,
    /// Finishes a serialized Json-mode line (unblocks the
    /// connection's next queued line).
    json_line: bool,
}

/// Encode a response into a `BinResponse` frame; a response so large
/// it exceeds the frame bound degrades to an in-band error frame.
fn response_frame(mux_id: u32, resp: &Response) -> Vec<u8> {
    let payload = encode_response_payload(resp);
    match encode_frame(FrameType::BinResponse, mux_id, &payload) {
        Ok(bytes) => bytes,
        Err(_) => {
            let fallback = Response::failure(
                resp.id,
                format!(
                    "response of {} bytes exceeds the frame bound",
                    payload.len()
                ),
            );
            encode_frame(
                FrameType::BinResponse,
                mux_id,
                &encode_response_payload(&fallback),
            )
            .unwrap_or_default()
        }
    }
}

/// A node worker: executes decoded requests against the hosted
/// runtime and sends completions back to the event loop. Exits when
/// the job channel disconnects (the event loop owns the sender).
fn node_worker(
    jobs: &Receiver<NodeJob>,
    done: &Sender<NodeDone>,
    client: &RuntimeClient,
    counters: &TransportCounters,
) {
    while let Ok(job) = jobs.recv() {
        let start = Instant::now();
        let completion = match job {
            NodeJob::Json { slot, gen, line } => match client.call_raw(line) {
                Ok(wire) => {
                    counters.record_success(start.elapsed());
                    let mut bytes = wire.into_bytes();
                    bytes.push(b'\n');
                    NodeDone {
                        slot,
                        gen,
                        bytes,
                        close: false,
                        json_line: true,
                    }
                }
                Err(_) => NodeDone {
                    slot,
                    gen,
                    bytes: Vec::new(),
                    close: true,
                    json_line: true,
                },
            },
            NodeJob::Bin {
                slot,
                gen,
                mux_id,
                payload,
            } => match decode_request_payload(&payload) {
                Ok(req) => match client.call_request(req) {
                    Ok(resp) => {
                        counters.record_success(start.elapsed());
                        NodeDone {
                            slot,
                            gen,
                            bytes: response_frame(mux_id, &resp),
                            close: false,
                            json_line: false,
                        }
                    }
                    Err(_) => NodeDone {
                        slot,
                        gen,
                        bytes: Vec::new(),
                        close: true,
                        json_line: false,
                    },
                },
                Err(e) => {
                    // The framing was intact — only this payload is
                    // bad — so answer in band and keep the
                    // connection in service.
                    counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::failure(
                        ERROR_RESPONSE_ID,
                        format!("binary request decode failed: {e}"),
                    );
                    NodeDone {
                        slot,
                        gen,
                        bytes: response_frame(mux_id, &resp),
                        close: false,
                        json_line: false,
                    }
                }
            },
            NodeJob::JsonFramed {
                slot,
                gen,
                mux_id,
                payload,
            } => {
                let line = String::from_utf8_lossy(&payload).into_owned();
                match client.call_raw(line) {
                    Ok(wire) => {
                        match encode_frame(FrameType::JsonResponse, mux_id, wire.as_bytes()) {
                            Ok(bytes) => {
                                counters.record_success(start.elapsed());
                                NodeDone {
                                    slot,
                                    gen,
                                    bytes,
                                    close: false,
                                    json_line: false,
                                }
                            }
                            Err(_) => NodeDone {
                                slot,
                                gen,
                                bytes: Vec::new(),
                                close: true,
                                json_line: false,
                            },
                        }
                    }
                    Err(_) => NodeDone {
                        slot,
                        gen,
                        bytes: Vec::new(),
                        close: true,
                        json_line: false,
                    },
                }
            }
        };
        if done.send(completion).is_err() {
            return;
        }
    }
}

/// Read whatever is ready on a nonblocking connection. Returns true
/// when any bytes arrived.
fn node_read(conn: &mut NodeConn, counters: &TransportCounters) -> bool {
    let mut any = false;
    let mut chunk = [0u8; NODE_READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.draining = true;
                break;
            }
            Ok(n) => {
                counters
                    .bytes_received
                    .fetch_add(n as u64, Ordering::Relaxed);
                conn.rbuf.extend_from_slice(&chunk[..n]);
                any = true;
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.fatal = true;
                break;
            }
        }
    }
    any
}

/// Dispatch one legacy JSON line, serialized per connection so a
/// pipelined legacy client gets its responses in request order.
fn node_dispatch_json(
    conn: &mut NodeConn,
    slot: usize,
    line: String,
    jobs: &Sender<NodeJob>,
    in_flight_total: &mut usize,
) {
    if conn.json_busy {
        conn.json_queue.push_back(line);
        return;
    }
    conn.json_busy = true;
    conn.in_flight += 1;
    *in_flight_total += 1;
    let _ = jobs.send(NodeJob::Json {
        slot,
        gen: conn.gen,
        line,
    });
}

/// Parse buffered bytes into jobs according to the connection's mode.
fn node_parse(
    conn: &mut NodeConn,
    slot: usize,
    jobs: &Sender<NodeJob>,
    in_flight_total: &mut usize,
    counters: &TransportCounters,
) {
    loop {
        if conn.fatal || conn.draining && conn.rbuf.is_empty() {
            return;
        }
        match conn.mode {
            ConnMode::Probing | ConnMode::Json => {
                let Some(nl) = conn.rbuf.iter().position(|&b| b == b'\n') else {
                    if conn.rbuf.len() > NODE_PROBE_LIMIT {
                        // Neither protocol produces a line this
                        // long: wire2 opens with a 14-byte preamble,
                        // and legacy frames are newline-delimited.
                        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        conn.fatal = true;
                    }
                    return;
                };
                let mut line: Vec<u8> = conn.rbuf.drain(..=nl).collect();
                line.pop();
                while line.last() == Some(&b'\r') {
                    line.pop();
                }
                if matches!(conn.mode, ConnMode::Probing) {
                    if line == WIRE2_PREAMBLE_LINE.as_bytes() {
                        conn.mode = ConnMode::Wire2;
                        if let Ok(ack) = encode_frame(FrameType::HelloAck, 0, &[]) {
                            conn.wbuf.extend_from_slice(&ack);
                        }
                        continue;
                    }
                    conn.mode = ConnMode::Json;
                }
                let text = String::from_utf8_lossy(&line).into_owned();
                node_dispatch_json(conn, slot, text, jobs, in_flight_total);
            }
            ConnMode::Wire2 => {
                if conn.rbuf.len() < WIRE2_HEADER_LEN {
                    return;
                }
                let mut header = [0u8; WIRE2_HEADER_LEN];
                header.copy_from_slice(&conn.rbuf[..WIRE2_HEADER_LEN]);
                let hdr = match decode_header(&header) {
                    Ok(hdr) => hdr,
                    Err(_) => {
                        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        // When the magic/version/type bytes are
                        // intact only the length prefix is hostile
                        // and the mux id is still trustworthy: the
                        // client gets an in-band error before the
                        // connection drains. Anything else means the
                        // stream is desynchronized — drop it.
                        if header[0] == WIRE2_MAGIC
                            && header[1] == WIRE2_VERSION
                            && FrameType::from_byte(header[2]).is_some()
                        {
                            let mux_id =
                                u32::from_le_bytes([header[3], header[4], header[5], header[6]]);
                            let resp = Response::failure(
                                ERROR_RESPONSE_ID,
                                "frame rejected: payload length exceeds the frame bound",
                            );
                            conn.wbuf.extend_from_slice(&response_frame(mux_id, &resp));
                            conn.draining = true;
                        } else {
                            conn.fatal = true;
                        }
                        return;
                    }
                };
                let total = WIRE2_HEADER_LEN + hdr.payload_len as usize;
                if conn.rbuf.len() < total {
                    return;
                }
                let payload: Vec<u8> = conn.rbuf[WIRE2_HEADER_LEN..total].to_vec();
                conn.rbuf.drain(..total);
                match hdr.frame_type {
                    FrameType::BinRequest => {
                        conn.in_flight += 1;
                        *in_flight_total += 1;
                        let _ = jobs.send(NodeJob::Bin {
                            slot,
                            gen: conn.gen,
                            mux_id: hdr.request_id,
                            payload,
                        });
                    }
                    FrameType::JsonRequest => {
                        conn.in_flight += 1;
                        *in_flight_total += 1;
                        let _ = jobs.send(NodeJob::JsonFramed {
                            slot,
                            gen: conn.gen,
                            mux_id: hdr.request_id,
                            payload,
                        });
                    }
                    FrameType::BinResponse | FrameType::JsonResponse | FrameType::HelloAck => {
                        // Clients send request frames; anything else
                        // means the stream is desynchronized.
                        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        conn.fatal = true;
                        return;
                    }
                }
            }
        }
    }
}

/// Flush as much buffered output as the socket accepts right now.
fn node_flush(conn: &mut NodeConn, counters: &TransportCounters) {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.fatal = true;
                return;
            }
            Ok(n) => {
                counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                conn.wpos += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.fatal = true;
                return;
            }
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
}

/// Route a worker completion back onto its connection. A completion
/// whose generation does not match the slot's current occupant
/// belongs to a connection that already closed and is dropped.
fn node_complete(
    conns: &mut [Option<NodeConn>],
    done: NodeDone,
    jobs: &Sender<NodeJob>,
    in_flight_total: &mut usize,
) {
    *in_flight_total = in_flight_total.saturating_sub(1);
    let slot = done.slot;
    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
        return;
    };
    if conn.gen != done.gen {
        return;
    }
    conn.in_flight = conn.in_flight.saturating_sub(1);
    conn.wbuf.extend_from_slice(&done.bytes);
    if done.close {
        conn.draining = true;
        conn.json_queue.clear();
    }
    if done.json_line {
        conn.json_busy = false;
        if !conn.draining {
            if let Some(line) = conn.json_queue.pop_front() {
                conn.json_busy = true;
                conn.in_flight += 1;
                *in_flight_total += 1;
                let _ = jobs.send(NodeJob::Json {
                    slot,
                    gen: conn.gen,
                    line,
                });
            }
        }
    }
}

/// The node's single event loop: accepts connections, reads and
/// parses ready sockets, dispatches decoded requests to the worker
/// pool, and routes completions back onto the right connection.
/// Adaptive idling: spin-yield briefly after activity (latency), then
/// block on the completion channel in short slices (CPU).
fn node_event_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    jobs: &Sender<NodeJob>,
    done: &Receiver<NodeDone>,
    counters: &TransportCounters,
) {
    let mut conns: Vec<Option<NodeConn>> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut in_flight_total: usize = 0;
    let mut last_activity = Instant::now();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let mut activity = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    next_gen += 1;
                    let conn = NodeConn::new(stream, next_gen);
                    match conns.iter_mut().position(|slot| slot.is_none()) {
                        Some(slot) => conns[slot] = Some(conn),
                        None => conns.push(Some(conn)),
                    }
                    activity = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        while let Ok(completion) = done.try_recv() {
            node_complete(&mut conns, completion, jobs, &mut in_flight_total);
            activity = true;
        }
        for (slot, entry) in conns.iter_mut().enumerate() {
            let Some(conn) = entry.as_mut() else {
                continue;
            };
            if !conn.fatal && !conn.draining && node_read(conn, counters) {
                activity = true;
            }
            if !conn.fatal {
                node_parse(conn, slot, jobs, &mut in_flight_total, counters);
            }
            if !conn.fatal {
                node_flush(conn, counters);
            }
            let drop_now = conn.fatal
                || (conn.draining
                    && conn.in_flight == 0
                    && conn.json_queue.is_empty()
                    && conn.wpos >= conn.wbuf.len());
            if drop_now {
                *entry = None;
                activity = true;
            }
        }
        counters
            .max_in_flight
            .fetch_max(in_flight_total as u64, Ordering::Relaxed);
        if activity {
            last_activity = Instant::now();
            continue;
        }
        if last_activity.elapsed() < NODE_SPIN_WINDOW {
            std::thread::yield_now();
        } else if let Ok(completion) = done.recv_timeout(NODE_IDLE_WAIT) {
            node_complete(&mut conns, completion, jobs, &mut in_flight_total);
            last_activity = Instant::now();
        }
    }
}

/// Hosts a whole [`ServingRuntime`] behind a TCP listener for
/// [`RemoteWorker`] peers — the other process in the cross-process
/// sharding story.
///
/// A single poll-based event loop over nonblocking sockets owns every
/// accepted connection: it sniffs each connection's first line to
/// pick wire2 or legacy-JSON mode, reassembles frames with a bounded
/// read, and dispatches decoded requests to a small fixed pool of
/// dispatch workers (whose completions the loop demultiplexes back
/// onto the right connection by mux id). There is no
/// thread-per-connection: hundreds of idle multiplexed clients cost
/// one thread total.
///
/// Frames the node serves run through the runtime's **full admission
/// path** — shedding, canary split, key routing — exactly like local
/// frames; the `forwarded` marker pins them to local shards so a node
/// that itself has remote shards never creates a forwarding loop.
pub struct RemoteRuntimeNode {
    runtime: ServingRuntime,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<TransportCounters>,
}

impl std::fmt::Debug for RemoteRuntimeNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteRuntimeNode")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl RemoteRuntimeNode {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `runtime` with the default dispatch pool: twice the
    /// runtime's worker count, at least 4 — enough that the node's
    /// own workers stay fed even when some dispatchers sit in the
    /// admission queue.
    ///
    /// # Errors
    /// Returns [`ServeError::Transport`] when the listener cannot be
    /// bound or threads cannot be spawned.
    pub fn bind(addr: &str, runtime: ServingRuntime) -> Result<RemoteRuntimeNode, ServeError> {
        let dispatchers = (runtime.n_workers() * 2).max(4);
        RemoteRuntimeNode::bind_with_workers(addr, runtime, dispatchers)
    }

    /// [`bind`](Self::bind) with an explicit dispatch worker count
    /// (minimum 1).
    ///
    /// # Errors
    /// Returns [`ServeError::Transport`] when the listener cannot be
    /// bound or threads cannot be spawned.
    pub fn bind_with_workers(
        addr: &str,
        runtime: ServingRuntime,
        workers: usize,
    ) -> Result<RemoteRuntimeNode, ServeError> {
        let io = |e: std::io::Error| ServeError::Transport(format!("bind {addr}: {e}"));
        let listener = TcpListener::bind(addr).map_err(io)?;
        let local = listener.local_addr().map_err(io)?;
        listener.set_nonblocking(true).map_err(io)?;
        let counters = Arc::new(TransportCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (jobs_tx, jobs_rx) = unbounded::<NodeJob>();
        let (done_tx, done_rx) = unbounded::<NodeDone>();
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let jobs = jobs_rx.clone();
            let done = done_tx.clone();
            let client = runtime.client();
            let worker_counters = Arc::clone(&counters);
            let handle = std::thread::Builder::new()
                .name(format!("willump-node-{i}"))
                .spawn(move || node_worker(&jobs, &done, &client, &worker_counters))
                .map_err(|e| ServeError::Transport(format!("spawn node worker: {e}")))?;
            handles.push(handle);
        }
        // The event loop owns the only jobs sender and done receiver:
        // its exit disconnects the channel and the workers drain out.
        drop(done_tx);
        drop(jobs_rx);
        let loop_shutdown = Arc::clone(&shutdown);
        let loop_counters = Arc::clone(&counters);
        let event = std::thread::Builder::new()
            .name("willump-node-events".to_string())
            .spawn(move || {
                node_event_loop(
                    &listener,
                    &loop_shutdown,
                    &jobs_tx,
                    &done_rx,
                    &loop_counters,
                );
            })
            .map_err(|e| ServeError::Transport(format!("spawn node event loop: {e}")))?;
        Ok(RemoteRuntimeNode {
            runtime,
            addr: local,
            shutdown,
            event: Some(event),
            workers: handles,
            counters,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted runtime (for stats inspection).
    pub fn runtime(&self) -> &ServingRuntime {
        &self.runtime
    }

    /// Node-side transport counters: frames served (`forwards`),
    /// cumulative service nanoseconds, bytes in both directions,
    /// frames rejected as oversized/corrupt (`decode_errors`), and
    /// the peak number of requests simultaneously in flight across
    /// all connections. `failures` and `reconnects` are client-side
    /// concepts and stay 0 here.
    pub fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// Stop accepting, drain the dispatch workers, and shut the
    /// hosted runtime down. Idempotent; also runs on drop. Parked
    /// client connections are dropped, not waited for.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The event loop re-checks the flag at least every
        // NODE_IDLE_WAIT, so no wake-up connection is needed.
        if let Some(handle) = self.event.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.runtime.shutdown();
    }
}

impl Drop for RemoteRuntimeNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Consume (and discard) the rest of a reader — used by tests to hold
/// a connection open without reading.
#[cfg(test)]
fn drain<R: std::io::Read>(mut r: R) {
    let mut buf = [0u8; 256];
    while matches!(r.read(&mut buf), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::decode_request;
    use crate::server::{Servable, ServerConfig};
    use crate::wire2::{encode_header, MAX_FRAME_PAYLOAD};
    use willump_data::{Table, Value};

    struct Scaler(f64);
    impl Servable for Scaler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            let col = table
                .column("x")
                .ok_or_else(|| "missing x".to_string())?
                .to_f64_vec()
                .map_err(|e| e.to_string())?;
            Ok(col.into_iter().map(|v| v * self.0).collect())
        }
    }

    fn runtime(factor: f64) -> ServingRuntime {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(1).build());
        b.endpoint("scale", Arc::new(Scaler(factor)));
        b.build().expect("runtime builds")
    }

    fn frame(id: u64, x: f64) -> String {
        encode_request(&request(id, x)).expect("encodable")
    }

    fn request(id: u64, x: f64) -> Request {
        Request {
            endpoint: Some("scale".to_string()),
            ..Request::new(id, vec![vec![("x".to_string(), Value::Float(x))]])
        }
    }

    #[test]
    fn remote_worker_round_trips_through_node() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let worker = RemoteWorker::new(&node.local_addr().to_string());
        let resp = decode_response(&worker.forward(&frame(7, 3.0)).unwrap()).unwrap();
        assert_eq!(resp.id, 7);
        assert_eq!(resp.scores, vec![6.0]);
        let stats = worker.stats();
        assert_eq!(stats.forwards, 1);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.reconnects, 0);
        assert!(stats.mean_latency() > 0.0);
        assert!(stats.bytes_sent > 0);
        assert!(stats.bytes_received > 0);
    }

    #[test]
    fn binary_forward_request_round_trips() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let worker = RemoteWorker::new(&node.local_addr().to_string());
        let reply = worker.forward_request(&request(7, 3.0)).unwrap();
        assert_eq!(reply.response.id, 7);
        assert_eq!(reply.response.scores, vec![6.0]);
        assert!(reply.bytes_sent > 0);
        assert!(reply.bytes_received > 0);
        let stats = worker.stats();
        assert_eq!(stats.forwards, 1);
        assert_eq!(stats.max_in_flight, 1);
        assert_eq!(stats.decode_errors, 0);
        // The node's own counters see the same single frame.
        let node_stats = node.transport_stats();
        assert_eq!(node_stats.forwards, 1);
        assert_eq!(node_stats.decode_errors, 0);
        assert!(node_stats.bytes_sent > 0 && node_stats.bytes_received > 0);
    }

    #[test]
    fn remote_worker_reconnects_after_node_restart() {
        let mut node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let addr = node.local_addr().to_string();
        let worker = RemoteWorker::new(&addr).with_timeout(Duration::from_secs(2));
        assert!(worker.forward(&frame(1, 1.0)).is_ok());
        node.shutdown();

        // Node down: the forward fails (counted), connection dropped.
        assert!(matches!(
            worker.forward(&frame(2, 1.0)),
            Err(ServeError::Transport(_))
        ));
        assert_eq!(worker.stats().failures, 1);

        // Node back (same port): the next forward reconnects.
        let mut node2 = RemoteRuntimeNode::bind(&addr, runtime(2.0)).expect("rebinds");
        let resp = decode_response(&worker.forward(&frame(3, 5.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![10.0]);
        assert_eq!(worker.stats().reconnects, 1);

        // Restart again while the worker holds a live-looking mux
        // connection: the dead connection falls through to a fresh
        // dial, which must ALSO count as a reconnect — and not as a
        // failure, since the forward succeeds.
        node2.shutdown();
        let _node3 = RemoteRuntimeNode::bind(&addr, runtime(2.0)).expect("rebinds again");
        let resp = decode_response(&worker.forward(&frame(4, 7.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![14.0]);
        assert_eq!(worker.stats().reconnects, 2);
        assert_eq!(worker.stats().failures, 1);
    }

    #[test]
    fn circuit_breaker_fails_fast_then_recovers() {
        let mut node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let addr = node.local_addr().to_string();
        let worker = RemoteWorker::new(&addr)
            .with_timeout(Duration::from_secs(2))
            .with_breaker(2, Duration::from_millis(100));
        assert!(worker.forward(&frame(1, 1.0)).is_ok());
        node.shutdown();

        // Two real failures open the breaker…
        assert!(worker.forward(&frame(2, 1.0)).is_err());
        assert!(worker.forward(&frame(3, 1.0)).is_err());
        // …after which forwards fail fast without dialing.
        match worker.forward(&frame(4, 1.0)) {
            Err(ServeError::Transport(msg)) => {
                assert!(msg.contains("circuit open"), "got: {msg}");
            }
            other => panic!("expected open-circuit error, got {other:?}"),
        }
        assert_eq!(worker.stats().failures, 3);

        // The node comes back; once the cool-down elapses, the
        // half-open trial succeeds and closes the breaker.
        let _node2 = RemoteRuntimeNode::bind(&addr, runtime(2.0)).expect("rebinds");
        std::thread::sleep(Duration::from_millis(150));
        let resp = decode_response(&worker.forward(&frame(5, 3.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![6.0]);
        assert!(worker.forward(&frame(6, 1.0)).is_ok(), "breaker closed");
    }

    #[test]
    fn counter_probes_do_not_count_as_forwards() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let worker = RemoteWorker::new(&node.local_addr().to_string());
        assert!(worker.forward(&frame(1, 1.0)).is_ok());
        let before = worker.stats();
        // Probes must not inflate forwards or dilute mean latency.
        assert!(worker.probe_counters("scale", 1).is_ok());
        assert!(worker.probe_counters("nonesuch", 1).is_err());
        let after = worker.stats();
        assert_eq!(after.forwards, before.forwards);
        assert_eq!(after.total_nanos, before.total_nanos);
        assert_eq!(after.failures, before.failures);
    }

    #[test]
    fn concurrent_forwards_overlap_via_the_mux() {
        struct SlowScaler(Duration);
        impl Servable for SlowScaler {
            fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
                std::thread::sleep(self.0);
                Scaler(2.0).predict_table(table)
            }
        }
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(4).build());
        b.endpoint("scale", Arc::new(SlowScaler(Duration::from_millis(200))))
            .shards(4);
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", b.build().unwrap()).expect("binds");
        let worker = Arc::new(RemoteWorker::new(&node.local_addr().to_string()));

        // 4 concurrent forwards through ONE transport: a serialized
        // connection would need >= 800ms; the mux tags each forward
        // and overlaps the round trips on a single socket.
        let start = Instant::now();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let worker = Arc::clone(&worker);
                s.spawn(move || {
                    let reply = worker.forward_request(&request(i + 1, i as f64)).unwrap();
                    assert_eq!(reply.response.scores, vec![2.0 * i as f64]);
                });
            }
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(600),
            "4 x 200ms forwards must overlap, took {elapsed:?}"
        );
        assert_eq!(worker.stats().forwards, 4);
        assert_eq!(worker.stats().failures, 0);
        assert!(worker.stats().max_in_flight >= 2, "forwards overlapped");
    }

    #[test]
    fn in_process_worker_forwards_and_counts() {
        let target = runtime(3.0);
        let worker = InProcessWorker::new(&target);
        // Descriptions identify the backend runtime, so two workers
        // for one runtime dedupe while distinct runtimes do not.
        assert!(worker.describe().starts_with("in-process:"));
        assert_eq!(worker.describe(), InProcessWorker::new(&target).describe());
        let resp = decode_response(&worker.forward(&frame(4, 2.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![6.0]);
        assert_eq!(worker.stats().forwards, 1);
        // The struct-native path skips the JSON boundary entirely.
        let reply = worker.forward_request(&request(6, 2.0)).unwrap();
        assert_eq!(reply.response.scores, vec![6.0]);
        assert_eq!((reply.bytes_sent, reply.bytes_received), (0, 0));
        assert_eq!(worker.stats().forwards, 2);
        drop(target);
        assert!(worker.forward(&frame(5, 1.0)).is_err());
        assert_eq!(worker.stats().failures, 1);
    }

    #[test]
    fn newline_frames_are_rejected_not_sent() {
        let worker = RemoteWorker::new("127.0.0.1:1");
        assert!(matches!(
            worker.forward("{\"id\":1}\n{\"id\":2}"),
            Err(ServeError::Transport(_))
        ));
    }

    #[test]
    fn node_shutdown_survives_parked_connections() {
        let mut node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(1.0)).expect("binds");
        // Open a connection and never send anything: the event loop
        // must not pin shutdown on it.
        let parked = TcpStream::connect(node.local_addr()).expect("connects");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            drain(&parked);
            let _ = tx.send(());
        });
        node.shutdown();
        node.shutdown(); // idempotent
                         // The event loop dropped our connection (read side saw EOF)
                         // despite us never sending a frame.
        rx.recv_timeout(Duration::from_secs(5))
            .expect("node shutdown must close parked connections");
    }

    /// A hand-rolled legacy node: speaks only newline-JSON and — like
    /// a pre-wire2 node — answers the v2 preamble with a JSON error
    /// line (its runtime would reject the preamble as unparseable).
    fn spawn_legacy_node() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                std::thread::spawn(move || {
                    let Ok(read_side) = stream.try_clone() else {
                        return;
                    };
                    let mut reader = BufReader::new(read_side);
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        let resp = match decode_request(line.trim_end()) {
                            Ok(req) => {
                                let scores: Vec<f64> = req
                                    .rows
                                    .iter()
                                    .filter_map(|row| {
                                        row.iter().find_map(|(k, v)| match v {
                                            Value::Float(x) if k == "x" => Some(2.0 * x),
                                            _ => None,
                                        })
                                    })
                                    .collect();
                                Response {
                                    scores,
                                    error: None,
                                    ..Response::failure(req.id, "")
                                }
                            }
                            Err(e) => Response::failure(0, format!("bad frame: {e}")),
                        };
                        let wire = crate::protocol::encode_response(&resp).expect("encodable");
                        if writer
                            .write_all(wire.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .is_err()
                        {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn v2_client_falls_back_to_a_legacy_node() {
        let addr = spawn_legacy_node();
        let worker = RemoteWorker::new(&addr.to_string());
        // The structured path negotiates, discovers a legacy peer,
        // and transparently rides the pooled JSON protocol.
        let reply = worker.forward_request(&request(3, 4.0)).unwrap();
        assert_eq!(reply.response.id, 3);
        assert_eq!(reply.response.scores, vec![8.0]);
        assert!(reply.bytes_sent > 0 && reply.bytes_received > 0);
        // The raw path works too, and negotiation is remembered: no
        // preamble is sent again (a second dial would otherwise eat
        // the first real frame).
        let resp = decode_response(&worker.forward(&frame(4, 1.5)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![3.0]);
        assert_eq!(worker.stats().forwards, 2);
        assert_eq!(worker.stats().failures, 0);
    }

    #[test]
    fn pinned_legacy_client_talks_to_a_v2_node() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let worker = RemoteWorker::new(&node.local_addr().to_string()).with_legacy_json();
        let reply = worker.forward_request(&request(9, 2.5)).unwrap();
        assert_eq!(reply.response.scores, vec![5.0]);
        let resp = decode_response(&worker.forward(&frame(10, 1.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![2.0]);
        assert_eq!(worker.stats().forwards, 2);
    }

    #[test]
    fn v2_node_serves_pipelined_legacy_json_clients_in_order() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let stream = TcpStream::connect(node.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        // Two pipelined frames before reading anything: a legacy
        // client has no mux ids, so responses must come back in
        // request order.
        writer
            .write_all(format!("{}\n{}\n", frame(1, 1.0), frame(2, 2.0)).as_bytes())
            .expect("writes");
        for expect in [(1u64, 2.0f64), (2, 4.0)] {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reads");
            let resp = decode_response(line.trim_end()).expect("decodes");
            assert_eq!(resp.id, expect.0);
            assert_eq!(resp.scores, vec![expect.1]);
        }
    }

    /// Connect a raw wire2 client: send the preamble, consume the
    /// HelloAck, and return the negotiated stream halves.
    fn raw_wire2_client(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        writer.write_all(WIRE2_PREAMBLE).expect("preamble");
        let (hdr, _) = read_frame(&mut reader).expect("ack").expect("not eof");
        assert_eq!(hdr.frame_type, FrameType::HelloAck);
        (writer, reader)
    }

    #[test]
    fn oversized_frames_get_an_in_band_error_then_the_connection_drains() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(1.0)).expect("binds");
        let (mut writer, mut reader) = raw_wire2_client(node.local_addr());
        // A header whose magic/version/type are intact but whose
        // length prefix exceeds the bound: the node must refuse to
        // allocate, answer in band on the frame's mux id, and drain.
        let header = encode_header(FrameType::BinRequest, 9, MAX_FRAME_PAYLOAD + 1);
        writer.write_all(&header).expect("writes");
        let (hdr, payload) = read_frame(&mut reader).expect("frame").expect("not eof");
        assert_eq!(hdr.frame_type, FrameType::BinResponse);
        assert_eq!(hdr.request_id, 9);
        let resp = decode_response_payload(&payload).expect("decodes");
        let err = resp.error.expect("is an error");
        assert!(err.contains("exceeds"), "got: {err}");
        // The connection drains after the error.
        assert!(matches!(read_frame(&mut reader), Ok(None)));
        assert_eq!(node.transport_stats().decode_errors, 1);
    }

    #[test]
    fn corrupt_frames_drop_the_connection() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(1.0)).expect("binds");
        let (mut writer, mut reader) = raw_wire2_client(node.local_addr());
        // Garbage where a header should be: the stream cannot be
        // resynchronized, so the node hangs up.
        writer
            .write_all(&[0xFFu8; WIRE2_HEADER_LEN])
            .expect("writes");
        assert!(matches!(read_frame(&mut reader), Ok(None)));
        assert_eq!(node.transport_stats().decode_errors, 1);
    }

    #[test]
    fn undecodable_binary_payloads_fail_in_band_without_dropping() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let (mut writer, mut reader) = raw_wire2_client(node.local_addr());
        // Framing intact, payload garbage: only this request fails.
        let bad = encode_frame(FrameType::BinRequest, 5, &[0xAB; 16]).expect("encodes");
        writer.write_all(&bad).expect("writes");
        let (hdr, payload) = read_frame(&mut reader).expect("frame").expect("not eof");
        assert_eq!(
            (hdr.frame_type, hdr.request_id),
            (FrameType::BinResponse, 5)
        );
        let resp = decode_response_payload(&payload).expect("decodes");
        assert!(resp.error.expect("is an error").contains("decode failed"));
        // The connection is still in service for well-formed frames.
        let good = encode_frame(
            FrameType::BinRequest,
            6,
            &encode_request_payload(&request(6, 3.0)),
        )
        .expect("encodes");
        writer.write_all(&good).expect("writes");
        let (hdr, payload) = read_frame(&mut reader).expect("frame").expect("not eof");
        assert_eq!(hdr.request_id, 6);
        let resp = decode_response_payload(&payload).expect("decodes");
        assert_eq!(resp.scores, vec![6.0]);
        assert_eq!(node.transport_stats().decode_errors, 1);
    }
}
