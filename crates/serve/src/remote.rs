//! Cross-process sharding: the [`WorkerTransport`] layer.
//!
//! The [`crate::ServingRuntime`] routes every admitted request to a
//! shard of its target endpoint. Through PR 4 a shard was always an
//! in-process worker queue; this module makes the shard → execution
//! hop **pluggable**, so one endpoint can mix in-process shards with
//! shards served by *other runtimes* — in the same process or across
//! a TCP boundary in another process — behind the same admission
//! path, key-hash routing, canary/version selection, and
//! [`crate::EndpointStats`] accounting.
//!
//! Three pieces:
//!
//! - [`WorkerTransport`]: the trait a shard's execution backend
//!   implements — take one encoded wire frame, return the encoded
//!   response. Implementations report [`TransportStats`] (forwards,
//!   failures, reconnects, cumulative latency), which the runtime
//!   surfaces per shard.
//! - [`RemoteWorker`]: the TCP implementation. Speaks the existing
//!   JSON wire protocol, newline-delimited (the protocol's encoder
//!   escapes control characters inside strings, so one frame is
//!   always exactly one line), pools connections so concurrent
//!   forwards overlap their round trips, and transparently retries
//!   once on a fresh connection after a connection-level failure —
//!   but never after a read timeout, which would re-execute the
//!   request on a node that may simply be slow.
//! - [`RemoteRuntimeNode`]: the host side. Binds a listener and
//!   exposes a whole [`crate::ServingRuntime`] — all of its endpoints
//!   — to parent routers; each accepted connection is served by a
//!   thread that feeds frames through a regular runtime client.
//!
//! The **local queue** implementation of the trait is
//! [`InProcessWorker`]: it forwards frames to another runtime in the
//! same process through its client handle — the same code path as
//! [`RemoteWorker`] minus the socket, which makes transport behavior
//! testable without networking and documents that the native
//! in-process shard path is just the degenerate transport whose
//! "wire" is a channel send.
//!
//! Forwarded frames set [`crate::Request::forwarded`], which pins
//! them to the receiving node's *local* shards — a node can itself
//! have remote shards without ever creating a forwarding loop.
//!
//! # Examples
//!
//! Serve an endpoint from a child runtime over TCP:
//!
//! ```
//! use std::sync::Arc;
//! use willump_serve::{
//!     RemoteRuntimeNode, Servable, ServingRuntime, WireRow,
//! };
//! use willump_data::{Table, Value};
//!
//! struct Doubler;
//! impl Servable for Doubler {
//!     fn predict_table(&self, t: &Table) -> Result<Vec<f64>, String> {
//!         let xs = t.column("x").ok_or("missing x")?;
//!         Ok(xs.to_f64_vec().map_err(|e| e.to_string())?
//!             .into_iter().map(|x| 2.0 * x).collect())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Child: a runtime exposed on a TCP port.
//! let mut child = ServingRuntime::builder();
//! child.endpoint("double", Arc::new(Doubler));
//! let node = RemoteRuntimeNode::bind("127.0.0.1:0", child.build()?)?;
//!
//! // Parent: one local shard plus one shard served by the child.
//! let mut parent = ServingRuntime::builder();
//! parent
//!     .endpoint("double", Arc::new(Doubler))
//!     .shard_remote(&node.local_addr().to_string());
//! let runtime = parent.build()?;
//! let client = runtime.client();
//! let rows: Vec<WireRow> = vec![vec![("x".to_string(), Value::Float(3.0))]];
//! assert_eq!(client.predict_endpoint("double", rows)?, vec![6.0]);
//! # Ok(())
//! # }
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use willump::PlanCountersSnapshot;

use crate::protocol::{decode_response, encode_request, Request, Response};
use crate::runtime::{RuntimeClient, ServingRuntime};
use crate::ServeError;

/// Where a shard's work is executed: the boundary between the
/// runtime's routing layer and a worker that may live in another
/// process.
///
/// A transport takes one already-encoded wire frame (the JSON
/// [`crate::encode_request`] produces) and returns the encoded
/// response — exactly a client's view of a serving runtime. The
/// runtime measures each forward and folds the latency into the
/// endpoint's per-shard counters; implementations additionally keep
/// their own [`TransportStats`].
pub trait WorkerTransport: Send + Sync {
    /// Forward one encoded request frame; return the raw wire
    /// response.
    ///
    /// # Errors
    /// Returns [`ServeError::Transport`] (or
    /// [`ServeError::Disconnected`]) when the backing worker cannot
    /// be reached; the runtime then fails the request over to a
    /// surviving shard.
    fn forward(&self, frame: &str) -> Result<String, ServeError>;

    /// Human-readable backend description (`"tcp://127.0.0.1:9001"`,
    /// `"in-process"`), used in stats dumps and error messages.
    fn describe(&self) -> String;

    /// Cumulative transport counters.
    fn stats(&self) -> TransportStats;

    /// Forward a control/probe frame. Defaults to [`forward`]
    /// (probes then count as ordinary forwards); implementations
    /// whose stats feed latency dashboards should override this to
    /// keep probe round trips out of [`TransportStats`], as
    /// [`RemoteWorker`] does.
    ///
    /// [`forward`]: WorkerTransport::forward
    ///
    /// # Errors
    /// Same conditions as [`forward`](WorkerTransport::forward).
    fn forward_probe(&self, frame: &str) -> Result<String, ServeError> {
        self.forward(frame)
    }

    /// Ask the backing runtime for one endpoint's
    /// [`PlanCountersSnapshot`] via a
    /// [`crate::ControlRequest::Counters`] probe frame.
    ///
    /// This is how a parent's escalation-aware scheduler reads plan
    /// statistics that accumulated in another process (see
    /// [`ServingRuntime::refresh_remote_counters`]).
    ///
    /// # Errors
    /// Returns [`ServeError::Transport`] when the probe cannot be
    /// delivered or the reply names no such endpoint.
    fn probe_counters(
        &self,
        endpoint: &str,
        version: u32,
    ) -> Result<PlanCountersSnapshot, ServeError> {
        let frame = encode_request(&Request::counters_probe(1))?;
        let resp = decode_response(&self.forward_probe(&frame)?)?;
        extract_counters(resp, endpoint, version, &self.describe())
    }
}

/// Pull one endpoint's snapshot out of a counters control response.
fn extract_counters(
    resp: Response,
    endpoint: &str,
    version: u32,
    who: &str,
) -> Result<PlanCountersSnapshot, ServeError> {
    if let Some(err) = resp.error {
        return Err(ServeError::Transport(format!(
            "counters probe failed: {err}"
        )));
    }
    resp.counters
        .unwrap_or_default()
        .into_iter()
        .find(|c| c.endpoint == endpoint && c.version == version)
        .map(|c| c.counters)
        .ok_or_else(|| {
            ServeError::Transport(format!(
                "node {who} reports no endpoint `{endpoint}` v{version}"
            ))
        })
}

/// Point-in-time counters of one [`WorkerTransport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames forwarded successfully.
    pub forwards: u64,
    /// Forwards that ultimately failed (after any reconnect attempt).
    pub failures: u64,
    /// Connections re-established after a drop (the first-ever
    /// connection does not count).
    pub reconnects: u64,
    /// Cumulative round-trip nanoseconds of successful forwards.
    pub total_nanos: u64,
}

impl TransportStats {
    /// Mean round-trip seconds per successful forward (0 before the
    /// first success).
    pub fn mean_latency(&self) -> f64 {
        if self.forwards == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.forwards as f64 / 1e9
        }
    }
}

/// Shared atomic counters behind a [`TransportStats`] snapshot.
#[derive(Debug, Default)]
struct TransportCounters {
    forwards: AtomicU64,
    failures: AtomicU64,
    reconnects: AtomicU64,
    total_nanos: AtomicU64,
}

impl TransportCounters {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            forwards: self.forwards.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
        }
    }

    fn record_success(&self, elapsed: Duration) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
        self.total_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }
}

// ---- the local-queue transport -------------------------------------

/// The local implementation of [`WorkerTransport`]: forwards frames
/// to another [`ServingRuntime`] *in the same process* through a
/// regular client handle (whose sends land on the target runtime's
/// worker queues).
///
/// Functionally identical to [`RemoteWorker`] minus the socket:
/// useful for testing transport routing without networking, and for
/// composing runtimes inside one process (e.g. giving a tenant's
/// endpoint its own isolated worker pool).
pub struct InProcessWorker {
    client: RuntimeClient,
    counters: TransportCounters,
}

impl std::fmt::Debug for InProcessWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessWorker")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl InProcessWorker {
    /// A transport forwarding to `runtime`'s worker queues.
    #[must_use]
    pub fn new(runtime: &ServingRuntime) -> InProcessWorker {
        InProcessWorker {
            client: runtime.client(),
            counters: TransportCounters::default(),
        }
    }
}

impl WorkerTransport for InProcessWorker {
    fn forward(&self, frame: &str) -> Result<String, ServeError> {
        let start = Instant::now();
        match self.client.call_raw(frame.to_string()) {
            Ok(wire) => {
                self.counters.record_success(start.elapsed());
                Ok(wire)
            }
            Err(e) => {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn describe(&self) -> String {
        // The runtime id distinguishes two in-process backends, so
        // per-backend deduplication (counter merging) stays correct.
        format!("in-process:{:x}", self.client.runtime_id())
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

// ---- the TCP transport ---------------------------------------------

/// One half-open connection: the write side and a buffered read side
/// of the same stream.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A TCP [`WorkerTransport`]: forwards wire frames to a
/// [`RemoteRuntimeNode`] (typically in another process), one
/// newline-delimited JSON frame per request.
///
/// Connections are **pooled** — concurrent forwards each check a
/// connection out of an idle pool (dialing a fresh one when the pool
/// is empty), so parallel requests to one shard overlap their round
/// trips instead of serializing on a single socket — **lazy**
/// (nothing is dialed until the first forward) and **self-healing**:
/// a connect, send, or connection-drop failure retries once on a
/// fresh connection before the error is reported, so a restarted
/// node is picked back up without intervention. A **read timeout**
/// is deliberately *not* retried: the node may be alive and still
/// executing the request, and resending the frame would execute it
/// a second time exactly when the node is at its most loaded — the
/// error surfaces instead, and the runtime's shard fail-over decides
/// what to do.
pub struct RemoteWorker {
    addr: String,
    timeout: Duration,
    idle: Mutex<Vec<Conn>>,
    /// A failure happened since the last successful dial (drives
    /// reconnect accounting: a dial that clears this counts as a
    /// reconnect, a dial that merely grows the pool does not).
    broken: AtomicBool,
    /// Circuit breaker: consecutive failed forwards, and when the
    /// last one happened. Once `consecutive_failures` reaches
    /// `breaker_threshold`, forwards fail fast (no dial, no timeout
    /// wait) until `breaker_cooldown` has elapsed since the last
    /// failure; then one trial forward is let through (half-open).
    consecutive_failures: AtomicU64,
    last_failure: Mutex<Option<Instant>>,
    breaker_threshold: u64,
    breaker_cooldown: Duration,
    counters: TransportCounters,
}

/// Idle connections kept per [`RemoteWorker`]; checkouts beyond this
/// still dial (concurrency is unbounded), the surplus is just not
/// pooled on return.
const REMOTE_WORKER_POOL: usize = 8;

/// Default consecutive-failure threshold that opens a
/// [`RemoteWorker`]'s circuit breaker (see
/// [`RemoteWorker::with_breaker`]).
pub const REMOTE_WORKER_BREAKER_FAILURES: u64 = 3;

/// Default cool-down an open [`RemoteWorker`] breaker waits before
/// letting a half-open trial forward through.
pub const REMOTE_WORKER_BREAKER_COOLDOWN: Duration = Duration::from_secs(1);

/// An I/O failure, classified by whether it was a read timeout (the
/// request may still be executing remotely — never resent) or a
/// connection-level failure (safe to retry on a fresh connection).
struct IoFailure {
    timed_out: bool,
    error: ServeError,
}

impl std::fmt::Debug for RemoteWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteWorker")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Default I/O timeout for [`RemoteWorker`] connections: generous
/// enough for a loaded node serving a large batch, short enough that
/// a wedged node triggers fail-over rather than hanging clients.
pub const REMOTE_WORKER_TIMEOUT: Duration = Duration::from_secs(10);

impl RemoteWorker {
    /// A transport to the node at `addr` (`"host:port"`). No
    /// connection is attempted until the first forward.
    #[must_use]
    pub fn new(addr: &str) -> RemoteWorker {
        RemoteWorker {
            addr: addr.to_string(),
            timeout: REMOTE_WORKER_TIMEOUT,
            idle: Mutex::new(Vec::new()),
            broken: AtomicBool::new(false),
            consecutive_failures: AtomicU64::new(0),
            last_failure: Mutex::new(None),
            breaker_threshold: REMOTE_WORKER_BREAKER_FAILURES,
            breaker_cooldown: REMOTE_WORKER_BREAKER_COOLDOWN,
            counters: TransportCounters::default(),
        }
    }

    /// Override the circuit breaker (default
    /// [`REMOTE_WORKER_BREAKER_FAILURES`] consecutive failures, then
    /// fail fast for [`REMOTE_WORKER_BREAKER_COOLDOWN`] per failure).
    /// `threshold` 0 disables the breaker entirely: every forward to
    /// a dead node then pays its full dial/timeout cost before the
    /// runtime fails over.
    #[must_use]
    pub fn with_breaker(mut self, threshold: u64, cooldown: Duration) -> RemoteWorker {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Override the connect/read/write timeout (default
    /// [`REMOTE_WORKER_TIMEOUT`]).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> RemoteWorker {
        self.timeout = timeout;
        self
    }

    /// The target address this transport forwards to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connect(&self) -> Result<Conn, ServeError> {
        let io = |e: std::io::Error| ServeError::Transport(format!("{}: {e}", self.addr));
        let sockaddr = self
            .addr
            .to_socket_addrs()
            .map_err(io)?
            .next()
            .ok_or_else(|| {
                ServeError::Transport(format!("{}: address resolves to nothing", self.addr))
            })?;
        let stream = TcpStream::connect_timeout(&sockaddr, self.timeout).map_err(io)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(io)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(io)?;
        stream.set_nodelay(true).map_err(io)?;
        let reader = BufReader::new(stream.try_clone().map_err(io)?);
        Ok(Conn {
            writer: stream,
            reader,
        })
    }

    /// One write + read round trip on an established connection.
    fn round_trip(&self, conn: &mut Conn, frame: &str) -> Result<String, IoFailure> {
        let io = |e: std::io::Error| IoFailure {
            timed_out: matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            error: ServeError::Transport(format!("{}: {e}", self.addr)),
        };
        conn.writer.write_all(frame.as_bytes()).map_err(io)?;
        conn.writer.write_all(b"\n").map_err(io)?;
        conn.writer.flush().map_err(io)?;
        // Read raw bytes (a timeout mid-frame must not be confused
        // with a UTF-8 boundary), then decode once the line is whole.
        let mut buf = Vec::new();
        let n = conn.reader.read_until(b'\n', &mut buf).map_err(io)?;
        if n == 0 {
            return Err(IoFailure {
                timed_out: false,
                error: ServeError::Transport(format!("{}: node closed the connection", self.addr)),
            });
        }
        while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
            buf.pop();
        }
        String::from_utf8(buf).map_err(|e| IoFailure {
            timed_out: false,
            error: ServeError::Transport(format!("{}: response is not UTF-8: {e}", self.addr)),
        })
    }

    /// Fail this forward: remember the transport is broken (the next
    /// successful dial counts as a reconnect) and, for counted
    /// (non-probe) forwards, feed the stats and the circuit breaker.
    fn fail(&self, error: ServeError, record: bool) -> ServeError {
        self.broken.store(true, Ordering::Relaxed);
        if record {
            self.counters.failures.fetch_add(1, Ordering::Relaxed);
            self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
            *self.last_failure.lock() = Some(Instant::now());
        }
        error
    }

    /// Record a counted forward's success and close the breaker.
    fn succeed(&self, start: Instant) {
        self.counters.record_success(start.elapsed());
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Whether the circuit breaker currently rejects forwards: at or
    /// past the threshold, and still inside the cool-down since the
    /// last failure. Past the cool-down the breaker goes half-open —
    /// forwards proceed, and the first success closes it.
    fn breaker_open(&self) -> bool {
        if self.breaker_threshold == 0
            || self.consecutive_failures.load(Ordering::Relaxed) < self.breaker_threshold
        {
            return false;
        }
        self.last_failure
            .lock()
            .is_some_and(|t| t.elapsed() < self.breaker_cooldown)
    }

    /// Return a healthy connection to the idle pool (bounded).
    fn check_in(&self, conn: Conn) {
        let mut idle = self.idle.lock();
        if idle.len() < REMOTE_WORKER_POOL {
            idle.push(conn);
        }
    }
}

impl RemoteWorker {
    /// The shared forward path; `record: false` (counters probes)
    /// skips the stats counters and breaker accounting, so periodic
    /// probes cannot dilute the mean forward latency or flap the
    /// breaker.
    fn forward_impl(&self, frame: &str, record: bool) -> Result<String, ServeError> {
        // The JSON encoder escapes control characters inside strings,
        // so a well-formed frame is always newline-free; reject
        // anything else rather than desynchronize the stream.
        if frame.contains('\n') {
            if record {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
            }
            return Err(ServeError::Transport(
                "frame contains a raw newline".to_string(),
            ));
        }
        // Circuit breaker: a shard that keeps failing fails fast —
        // no dial, no timeout wait — so keyed traffic sticky to a
        // dead node degrades by one cheap error instead of a full
        // connect timeout per request.
        if self.breaker_open() {
            if record {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
            }
            return Err(ServeError::Transport(format!(
                "{}: circuit open after {} consecutive failures",
                self.addr,
                self.consecutive_failures.load(Ordering::Relaxed)
            )));
        }
        let start = Instant::now();
        // Attempt 1: a pooled idle connection, held OUTSIDE the pool
        // lock so concurrent forwards overlap their round trips (the
        // pop is bound to a `let` first — an `if let` scrutinee would
        // keep the pool locked for the whole block).
        let pooled = self.idle.lock().pop();
        if let Some(mut conn) = pooled {
            match self.round_trip(&mut conn, frame) {
                Ok(line) => {
                    if record {
                        self.succeed(start);
                    }
                    self.check_in(conn);
                    return Ok(line);
                }
                // The node may still be executing this request: do
                // NOT resend it (that would double-execute exactly
                // when the node is most loaded). Fail and let the
                // runtime's shard fail-over decide.
                Err(f) if f.timed_out => return Err(self.fail(f.error, record)),
                // A dropped/stale pooled connection (e.g. the node
                // restarted): the response cannot arrive on it, so a
                // single fresh-connection retry is safe. Mark the
                // transport broken — the fresh dial below counts as
                // a reconnect — and fall through.
                Err(_) => self.broken.store(true, Ordering::Relaxed),
            }
        }
        // Attempt 2: a fresh connection.
        let mut conn = match self.connect() {
            Ok(conn) => {
                if self.broken.swap(false, Ordering::Relaxed) {
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                conn
            }
            Err(e) => return Err(self.fail(e, record)),
        };
        match self.round_trip(&mut conn, frame) {
            Ok(line) => {
                if record {
                    self.succeed(start);
                }
                self.check_in(conn);
                Ok(line)
            }
            Err(f) => Err(self.fail(f.error, record)),
        }
    }
}

impl WorkerTransport for RemoteWorker {
    fn forward(&self, frame: &str) -> Result<String, ServeError> {
        self.forward_impl(frame, true)
    }

    fn describe(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    fn stats(&self) -> TransportStats {
        self.counters.snapshot()
    }

    /// Probes ride the same pool/retry path but are *not* counted as
    /// forwards, so periodic [`ServingRuntime::refresh_remote_counters`]
    /// polling cannot dilute the mean forward latency or desync
    /// `TransportStats::forwards` from the runtime's own
    /// `remote_forwards`.
    fn forward_probe(&self, frame: &str) -> Result<String, ServeError> {
        self.forward_impl(frame, false)
    }
}

// ---- the host side -------------------------------------------------

/// How often a node connection handler wakes from a blocked read to
/// check the shutdown flag.
const NODE_POLL_INTERVAL: Duration = Duration::from_millis(100);

/// The host side of cross-process sharding: a TCP listener exposing a
/// whole [`ServingRuntime`] — every endpoint it serves — to parent
/// routers.
///
/// Each accepted connection is handled by a dedicated thread reading
/// newline-delimited wire frames, answering each through a regular
/// runtime client (so forwarded frames get the exact admission,
/// routing, batching, and stats treatment local requests do).
///
/// Shutdown is explicit and idempotent ([`shutdown`](Self::shutdown),
/// also run on drop): the runtime's admission gate closes first, then
/// the accept loop and every connection handler are joined. Handlers
/// poll a shutdown flag between reads, so a parent that keeps its
/// connection open cannot pin the node alive.
pub struct RemoteRuntimeNode {
    runtime: ServingRuntime,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for RemoteRuntimeNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteRuntimeNode")
            .field("addr", &self.addr)
            .field("runtime", &self.runtime)
            .finish_non_exhaustive()
    }
}

impl RemoteRuntimeNode {
    /// Bind `addr` (`"host:port"`; port 0 picks a free one — read it
    /// back with [`local_addr`](Self::local_addr)) and start serving
    /// `runtime` to connecting routers.
    ///
    /// # Errors
    /// Returns [`ServeError::Transport`] when the listener cannot be
    /// bound.
    pub fn bind(addr: &str, runtime: ServingRuntime) -> Result<RemoteRuntimeNode, ServeError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Transport(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Transport(format!("bind {addr}: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        // A non-blocking accept loop: the thread polls the shutdown
        // flag between accepts, so shutdown/Drop can always join it —
        // even when the bound address (wildcard, downed interface)
        // cannot be self-connected to wake a blocking accept.
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Transport(format!("bind {addr}: {e}")))?;
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let handlers = Arc::clone(&handlers);
            let client_source = runtime.client();
            std::thread::spawn(move || loop {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(NODE_POLL_INTERVAL);
                        continue;
                    }
                    Err(_) => continue,
                };
                // Accepted sockets may inherit non-blocking mode on
                // some platforms; handlers expect blocking reads
                // bounded by their own read timeout.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let client = client_source.fork();
                let shutdown = Arc::clone(&shutdown);
                let handle =
                    std::thread::spawn(move || serve_connection(stream, &client, &shutdown));
                // Reap finished handlers as connections churn, so
                // a long-lived node's handle list stays bounded.
                let mut guard = handlers.lock();
                guard.retain(|h: &JoinHandle<()>| !h.is_finished());
                guard.push(handle);
            })
        };
        Ok(RemoteRuntimeNode {
            runtime,
            addr: local,
            shutdown,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound listen address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted runtime (for stats and endpoint inspection).
    pub fn runtime(&self) -> &ServingRuntime {
        &self.runtime
    }

    /// Stop accepting, shut the hosted runtime down, and join every
    /// connection handler. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        if !self.shutdown.swap(true, Ordering::Relaxed) {
            self.runtime.shutdown();
            // Best-effort wake: the accept loop also polls the flag,
            // so shutdown completes within one poll interval even if
            // this self-connect cannot reach the bound address.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteRuntimeNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One node connection: read newline-delimited frames, answer each
/// through the runtime client, until the peer hangs up, the runtime
/// shuts down, or the node's shutdown flag flips.
fn serve_connection(stream: TcpStream, client: &RuntimeClient, shutdown: &AtomicBool) {
    // A finite read timeout turns a quiet connection into a periodic
    // shutdown-flag poll instead of an indefinite block; NODELAY
    // matters because every response is one small write that must
    // not sit in Nagle's buffer while the router blocks on it.
    if stream.set_read_timeout(Some(NODE_POLL_INTERVAL)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(read_side) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_side);
    let mut writer = stream;
    // Frames accumulate as raw bytes: read_until appends whatever
    // arrived before a poll timeout, so a frame split across reads —
    // even mid-UTF-8-character — reassembles losslessly (a String
    // buffer could not hold the partial character).
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
                    buf.pop();
                }
                // Invalid UTF-8 cannot be a valid frame; decode lossily
                // and let the runtime answer with its codec error.
                let payload = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                let Ok(wire) = client.call_raw(payload) else {
                    return; // runtime shut down
                };
                if writer
                    .write_all(wire.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial bytes stay in `buf`; the next pass
                // completes the frame.
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Consume (and discard) the rest of a reader — used by tests to hold
/// a connection open without reading.
#[cfg(test)]
fn drain<R: std::io::Read>(mut r: R) {
    let mut buf = [0u8; 256];
    while matches!(r.read(&mut buf), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Servable, ServerConfig};
    use willump_data::{Table, Value};

    struct Scaler(f64);
    impl Servable for Scaler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            let col = table
                .column("x")
                .ok_or_else(|| "missing x".to_string())?
                .to_f64_vec()
                .map_err(|e| e.to_string())?;
            Ok(col.into_iter().map(|v| v * self.0).collect())
        }
    }

    fn runtime(factor: f64) -> ServingRuntime {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(1).build());
        b.endpoint("scale", Arc::new(Scaler(factor)));
        b.build().expect("runtime builds")
    }

    fn frame(id: u64, x: f64) -> String {
        encode_request(&Request {
            endpoint: Some("scale".to_string()),
            ..Request::new(id, vec![vec![("x".to_string(), Value::Float(x))]])
        })
        .expect("encodable")
    }

    #[test]
    fn remote_worker_round_trips_through_node() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let worker = RemoteWorker::new(&node.local_addr().to_string());
        let resp = decode_response(&worker.forward(&frame(7, 3.0)).unwrap()).unwrap();
        assert_eq!(resp.id, 7);
        assert_eq!(resp.scores, vec![6.0]);
        let stats = worker.stats();
        assert_eq!(stats.forwards, 1);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.reconnects, 0);
        assert!(stats.mean_latency() > 0.0);
    }

    #[test]
    fn remote_worker_reconnects_after_node_restart() {
        let mut node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let addr = node.local_addr().to_string();
        let worker = RemoteWorker::new(&addr).with_timeout(Duration::from_secs(2));
        assert!(worker.forward(&frame(1, 1.0)).is_ok());
        node.shutdown();

        // Node down: the forward fails (counted), connection dropped.
        assert!(matches!(
            worker.forward(&frame(2, 1.0)),
            Err(ServeError::Transport(_))
        ));
        assert_eq!(worker.stats().failures, 1);

        // Node back (same port): the next forward reconnects.
        let mut node2 = RemoteRuntimeNode::bind(&addr, runtime(2.0)).expect("rebinds");
        let resp = decode_response(&worker.forward(&frame(3, 5.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![10.0]);
        assert_eq!(worker.stats().reconnects, 1);

        // Restart again while the pool holds an idle connection: the
        // stale pooled socket falls through to a fresh dial, which
        // must ALSO count as a reconnect — and not as a failure,
        // since the forward succeeds.
        node2.shutdown();
        let _node3 = RemoteRuntimeNode::bind(&addr, runtime(2.0)).expect("rebinds again");
        let resp = decode_response(&worker.forward(&frame(4, 7.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![14.0]);
        assert_eq!(worker.stats().reconnects, 2);
        assert_eq!(worker.stats().failures, 1);
    }

    #[test]
    fn circuit_breaker_fails_fast_then_recovers() {
        let mut node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let addr = node.local_addr().to_string();
        let worker = RemoteWorker::new(&addr)
            .with_timeout(Duration::from_secs(2))
            .with_breaker(2, Duration::from_millis(100));
        assert!(worker.forward(&frame(1, 1.0)).is_ok());
        node.shutdown();

        // Two real failures open the breaker…
        assert!(worker.forward(&frame(2, 1.0)).is_err());
        assert!(worker.forward(&frame(3, 1.0)).is_err());
        // …after which forwards fail fast without dialing.
        match worker.forward(&frame(4, 1.0)) {
            Err(ServeError::Transport(msg)) => {
                assert!(msg.contains("circuit open"), "got: {msg}");
            }
            other => panic!("expected open-circuit error, got {other:?}"),
        }
        assert_eq!(worker.stats().failures, 3);

        // The node comes back; once the cool-down elapses, the
        // half-open trial succeeds and closes the breaker.
        let _node2 = RemoteRuntimeNode::bind(&addr, runtime(2.0)).expect("rebinds");
        std::thread::sleep(Duration::from_millis(150));
        let resp = decode_response(&worker.forward(&frame(5, 3.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![6.0]);
        assert!(worker.forward(&frame(6, 1.0)).is_ok(), "breaker closed");
    }

    #[test]
    fn counter_probes_do_not_count_as_forwards() {
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(2.0)).expect("binds");
        let worker = RemoteWorker::new(&node.local_addr().to_string());
        assert!(worker.forward(&frame(1, 1.0)).is_ok());
        let before = worker.stats();
        // Probes must not inflate forwards or dilute mean latency.
        assert!(worker.probe_counters("scale", 1).is_ok());
        assert!(worker.probe_counters("nonesuch", 1).is_err());
        let after = worker.stats();
        assert_eq!(after.forwards, before.forwards);
        assert_eq!(after.total_nanos, before.total_nanos);
        assert_eq!(after.failures, before.failures);
    }

    #[test]
    fn concurrent_forwards_overlap_via_the_pool() {
        struct SlowScaler(Duration);
        impl Servable for SlowScaler {
            fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
                std::thread::sleep(self.0);
                Scaler(2.0).predict_table(table)
            }
        }
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(4).build());
        b.endpoint("scale", Arc::new(SlowScaler(Duration::from_millis(200))))
            .shards(4);
        let node = RemoteRuntimeNode::bind("127.0.0.1:0", b.build().unwrap()).expect("binds");
        let worker = Arc::new(RemoteWorker::new(&node.local_addr().to_string()));

        // 4 concurrent forwards through ONE transport: a single
        // serialized connection would need >= 800ms; the pool dials
        // parallel connections and overlaps the round trips.
        let start = Instant::now();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let worker = Arc::clone(&worker);
                s.spawn(move || {
                    let resp =
                        decode_response(&worker.forward(&frame(i + 1, i as f64)).unwrap()).unwrap();
                    assert_eq!(resp.scores, vec![2.0 * i as f64]);
                });
            }
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(600),
            "4 x 200ms forwards must overlap, took {elapsed:?}"
        );
        assert_eq!(worker.stats().forwards, 4);
        assert_eq!(worker.stats().failures, 0);
    }

    #[test]
    fn in_process_worker_forwards_and_counts() {
        let target = runtime(3.0);
        let worker = InProcessWorker::new(&target);
        // Descriptions identify the backend runtime, so two workers
        // for one runtime dedupe while distinct runtimes do not.
        assert!(worker.describe().starts_with("in-process:"));
        assert_eq!(worker.describe(), InProcessWorker::new(&target).describe());
        let resp = decode_response(&worker.forward(&frame(4, 2.0)).unwrap()).unwrap();
        assert_eq!(resp.scores, vec![6.0]);
        assert_eq!(worker.stats().forwards, 1);
        drop(target);
        assert!(worker.forward(&frame(5, 1.0)).is_err());
        assert_eq!(worker.stats().failures, 1);
    }

    #[test]
    fn newline_frames_are_rejected_not_sent() {
        let worker = RemoteWorker::new("127.0.0.1:1");
        assert!(matches!(
            worker.forward("{\"id\":1}\n{\"id\":2}"),
            Err(ServeError::Transport(_))
        ));
    }

    #[test]
    fn node_shutdown_survives_parked_connections() {
        let mut node = RemoteRuntimeNode::bind("127.0.0.1:0", runtime(1.0)).expect("binds");
        // Open a connection and never send anything: the handler must
        // not pin shutdown.
        let parked = TcpStream::connect(node.local_addr()).expect("connects");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            drain(&parked);
            let _ = tx.send(());
        });
        node.shutdown();
        node.shutdown(); // idempotent
                         // The handler dropped our connection (read side saw EOF)
                         // within the poll interval, despite us never sending a frame.
        rx.recv_timeout(Duration::from_secs(5))
            .expect("node shutdown must close parked connections");
    }
}
