//! Cluster control plane: active health probing with automatic shard
//! re-admission, and statistics-driven shard placement.
//!
//! PR 5 and PR 8 gave the runtime cross-process shards over a binary
//! wire, but membership was frozen at build time: a circuit breaker
//! stopped routing to a dead node and nothing ever brought it back,
//! and shard→node assignment was hand-written. This module closes the
//! loop, the same move Willump makes for pipeline compilation —
//! drive decisions from *measured* statistics instead of static
//! configuration:
//!
//! - **Prober** ([`ServingRuntime::start_cluster`]): a background
//!   thread that sweeps every endpoint's remote slots and exercises
//!   [`WorkerTransport::forward_probe`] against any shard whose
//!   breaker is not [`BreakerState::Closed`]. A successful probe
//!   refreshes the slot's cached plan counters *and* closes the
//!   breaker, so a recovered node re-enters the key-hash routing
//!   domain with no restart and no manual call. Probe traffic is
//!   visible at every stats level (`probes_sent` / `probes_ok` on
//!   [`TransportStats`], [`crate::EndpointStats`], and
//!   [`crate::ServerStats`]) and never counts as a forward.
//! - **Coordinator** ([`ClusterCoordinator`]): scores each registered
//!   node from the statistics the runtime already collects — merged
//!   [`PlanCountersSnapshot`]s, transport latency, failure counts,
//!   breaker state — and [`rebalance`](ClusterCoordinator::rebalance)
//!   migrates **at most one shard per cycle** from the hottest node
//!   to the coolest (drain, detach, re-attach), extending the
//!   escalation-aware worker scheduler to cluster placement without
//!   thrash.
//!
//! The drain lifecycle underneath ([`ServingRuntime::drain_shard`])
//! guarantees zero in-flight loss structurally: every request routes
//! over an `Arc` snapshot of the slot list, so detaching a slot can
//! never invalidate work that already picked it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use willump::{Clock, PlanCountersSnapshot, SystemClock};

use crate::monitor::{MonitorEvent, StatsHub};
use crate::remote::{BreakerState, RemoteWorker, TransportStats, WorkerTransport};
use crate::runtime::{Endpoint, ServingRuntime, Shared};

/// Configuration for the background cluster prober
/// ([`ServingRuntime::start_cluster`]).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// How often the prober sweeps every endpoint's remote slots
    /// (default 50ms). Each sweep probes only shards whose breaker is
    /// not [`BreakerState::Closed`], so a healthy cluster pays
    /// nothing.
    pub probe_interval: Duration,
    /// Time source the prober waits on (default [`SystemClock`]).
    /// Inject a [`willump::ManualClock`] to drive sweeps
    /// deterministically in tests.
    pub clock: Arc<dyn Clock>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            probe_interval: Duration::from_millis(50),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

/// Handle to a running cluster prober. Stop it explicitly with
/// [`stop`](ClusterHandle::stop) or implicitly by dropping; either
/// joins the prober thread.
#[derive(Debug)]
pub struct ClusterHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ClusterHandle {
    /// Signal the prober to exit and join it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

impl ServingRuntime {
    /// Start the cluster health prober: a background thread that
    /// periodically exercises [`WorkerTransport::forward_probe`]
    /// against every remote shard whose circuit breaker is not
    /// [`BreakerState::Closed`], automatically re-admitting nodes
    /// that answer (their breaker closes and their cached plan
    /// counters refresh). The prober holds only the runtime's shared
    /// core, so it never blocks shutdown; stop it via the returned
    /// [`ClusterHandle`].
    pub fn start_cluster(&self, config: ClusterConfig) -> ClusterHandle {
        let core = self.cluster_core();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let interval = u64::try_from(config.probe_interval.as_nanos()).unwrap_or(u64::MAX);
        let thread = std::thread::spawn(move || {
            let clock = config.clock;
            let mut deadline = clock.now_nanos();
            while !stop_flag.load(Ordering::Relaxed) {
                probe_sweep(&core);
                // Schedule from the previous deadline, not from "now",
                // so a slow sweep doesn't drift the cadence.
                deadline = deadline.saturating_add(interval).max(clock.now_nanos());
                if !clock.wait_until(deadline, &stop_flag) {
                    return;
                }
            }
        });
        ClusterHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// One prober pass: probe every non-closed remote slot of every
/// endpoint, recording probe traffic at the endpoint and server
/// levels (the transport records its own `probes_sent`/`probes_ok`).
fn probe_sweep(core: &Shared) {
    for endpoint in core.all_endpoints() {
        for slot in endpoint.remote_slots() {
            if slot.transport.breaker_state() == BreakerState::Closed {
                continue;
            }
            let ok = match slot
                .transport
                .probe_counters(endpoint.name(), endpoint.version())
            {
                Ok(snapshot) => {
                    // A node that answers is healthy again: cache its
                    // counters so the next placement pass scores it
                    // from fresh statistics, not from before it died.
                    *slot.counters.lock() = snapshot;
                    true
                }
                Err(_) => false,
            };
            core.server_stats().record_probe(ok);
            endpoint.stats().record_probe(ok);
        }
    }
}

// ---- placement -----------------------------------------------------

/// Atomic per-remote-shard placement view (see
/// [`Endpoint::remote_shard_views`]): everything the
/// [`ClusterCoordinator`] scores, snapshotted from one coherent slot
/// list.
#[derive(Debug, Clone)]
pub struct RemoteShardView {
    /// Process-wide unique slot id, stable for the slot's lifetime
    /// (shard *indices* shift as slots splice in and out; topology
    /// diffing keys on this).
    pub slot_id: u64,
    /// Global shard index (`local_shards()..`) at snapshot time.
    pub shard: usize,
    /// Transport description (e.g. `tcp://host:port`).
    pub description: String,
    /// Transport counters, including probe traffic.
    pub stats: TransportStats,
    /// Circuit-breaker state.
    pub breaker: BreakerState,
    /// Last plan-counter snapshot fetched from the node.
    pub counters: PlanCountersSnapshot,
    /// Whether the slot is draining (excluded from routing).
    pub draining: bool,
}

impl Endpoint {
    /// Per-remote-shard placement views in shard order, snapshotted
    /// from one coherent slot list (unlike combining
    /// [`transport_stats`](Endpoint::transport_stats) and friends,
    /// which each re-read the live topology).
    pub fn remote_shard_views(&self) -> Vec<RemoteShardView> {
        let local = self.local_shards();
        self.remote_slots()
            .iter()
            .enumerate()
            .map(|(i, slot)| RemoteShardView {
                slot_id: slot.id,
                shard: local + i,
                description: slot.transport.describe(),
                stats: slot.transport.stats(),
                breaker: slot.transport.breaker_state(),
                counters: *slot.counters.lock(),
                draining: slot.is_draining(),
            })
            .collect()
    }
}

/// One shard migration decided (and, via
/// [`ClusterCoordinator::rebalance`], applied) by the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// Endpoint name.
    pub endpoint: String,
    /// Endpoint version.
    pub version: u32,
    /// Global shard index drained off the hot node.
    pub shard: usize,
    /// Node address the shard left.
    pub from: String,
    /// Node address the replacement shard was attached to.
    pub to: String,
}

/// Statistics-driven shard placement across a set of registered
/// nodes.
///
/// The coordinator extends [`crate::SchedulerPolicy::EscalationAware`]
/// from worker placement to *cluster* placement: where the worker
/// scheduler reads each plan's [`PlanCounters`] to give
/// escalation-heavy endpoints dedicated workers, the coordinator
/// reads each **node's** merged [`PlanCountersSnapshot`] plus its
/// transports' latency/failure counters to decide which node each
/// remote shard should live on. A
/// [`rebalance`](ClusterCoordinator::rebalance) cycle migrates **at
/// most one**
/// shard (hottest node → coolest node) and only when the score gap
/// exceeds the hysteresis threshold, so placement converges instead
/// of thrashing.
///
/// [`PlanCounters`]: willump::PlanCounters
#[derive(Debug, Clone)]
pub struct ClusterCoordinator {
    nodes: Vec<String>,
    min_score_gap: f64,
    drain_timeout: Duration,
    monitor: Option<StatsHub>,
}

impl Default for ClusterCoordinator {
    fn default() -> ClusterCoordinator {
        ClusterCoordinator::new()
    }
}

impl ClusterCoordinator {
    /// A coordinator with no registered nodes, a score-gap hysteresis
    /// of 1.0, and a 5s migration drain timeout.
    #[must_use]
    pub fn new() -> ClusterCoordinator {
        ClusterCoordinator {
            nodes: Vec::new(),
            min_score_gap: 1.0,
            drain_timeout: Duration::from_secs(5),
            monitor: None,
        }
    }

    /// Publish every applied migration to `hub` as a
    /// [`MonitorEvent::Migration`], threading coordinator decisions
    /// into the same event history the sampler writes.
    pub fn with_monitor(&mut self, hub: StatsHub) -> &mut ClusterCoordinator {
        self.monitor = Some(hub);
        self
    }

    /// Register a node address (`host:port`) as a placement target.
    /// Shards are matched to nodes by transport description, so the
    /// address must match what the shard's transport reports (a
    /// [`RemoteWorker`] reports `tcp://{addr}`).
    pub fn register_node(&mut self, addr: &str) -> &mut ClusterCoordinator {
        if !self.nodes.iter().any(|n| n == addr) {
            self.nodes.push(addr.to_string());
        }
        self
    }

    /// Set the minimum hot-to-cool score gap below which
    /// [`rebalance`](ClusterCoordinator::rebalance) holds still.
    pub fn min_score_gap(&mut self, gap: f64) -> &mut ClusterCoordinator {
        self.min_score_gap = gap;
        self
    }

    /// Set how long a migration waits for the drained shard's
    /// in-flight forwards before force-detaching it.
    pub fn drain_timeout(&mut self, timeout: Duration) -> &mut ClusterCoordinator {
        self.drain_timeout = timeout;
        self
    }

    /// The registered node addresses.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Score every registered node from the runtime's current
    /// statistics (higher = more loaded). A node's score sums, over
    /// every non-draining slot it serves: the node's plan-counter
    /// [`placement_pressure`](PlanCountersSnapshot::placement_pressure),
    /// the slot's mean forward latency in milliseconds, a 10-point
    /// penalty per transport failure, and a 100-point penalty for an
    /// open breaker (a dead node should shed its shards first).
    pub fn node_scores(&self, runtime: &ServingRuntime) -> Vec<(String, f64)> {
        self.nodes
            .iter()
            .map(|addr| {
                let mut score = 0.0;
                for endpoint in runtime.endpoints() {
                    for view in endpoint.remote_shard_views() {
                        if view.draining || !view.description.contains(addr.as_str()) {
                            continue;
                        }
                        score += view.counters.placement_pressure();
                        if view.stats.forwards > 0 {
                            score += view.stats.total_nanos as f64
                                / view.stats.forwards as f64
                                / 1_000_000.0;
                        }
                        score += view.stats.failures as f64 * 10.0;
                        if view.breaker == BreakerState::Open {
                            score += 100.0;
                        }
                    }
                }
                (addr.clone(), score)
            })
            .collect()
    }

    /// Decide the next migration without applying it: the first
    /// non-draining shard found on the hottest node moves to the
    /// coolest node, provided the score gap exceeds the hysteresis
    /// threshold. Returns `None` when placement is already balanced
    /// (or fewer than two nodes are registered).
    #[must_use]
    pub fn plan(&self, runtime: &ServingRuntime) -> Option<Migration> {
        let scores = self.node_scores(runtime);
        if scores.len() < 2 {
            return None;
        }
        let (hot, hot_score) = scores
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, s)| (n.clone(), *s))?;
        let (cool, cool_score) = scores
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, s)| (n.clone(), *s))?;
        if hot == cool || hot_score - cool_score < self.min_score_gap {
            return None;
        }
        for endpoint in runtime.endpoints() {
            for view in endpoint.remote_shard_views() {
                if view.draining || !view.description.contains(hot.as_str()) {
                    continue;
                }
                return Some(Migration {
                    endpoint: endpoint.name().to_string(),
                    version: endpoint.version(),
                    shard: view.shard,
                    from: hot,
                    to: cool,
                });
            }
        }
        None
    }

    /// Run one placement cycle: [`plan`](ClusterCoordinator::plan)
    /// a migration and apply it — drain the shard off the hot node
    /// (force-detaching after the drain timeout; in-flight work still
    /// completes on its own handles either way) and attach a
    /// replacement [`RemoteWorker`] shard on the cool node. At most
    /// one shard moves per call. Returns the applied migration, or
    /// `None` when placement is already balanced.
    pub fn rebalance(&self, runtime: &ServingRuntime) -> Option<Migration> {
        let migration = self.plan(runtime)?;
        if runtime
            .drain_shard(
                &migration.endpoint,
                migration.version,
                migration.shard,
                self.drain_timeout,
            )
            .is_err()
        {
            runtime
                .remove_shard(&migration.endpoint, migration.version, migration.shard)
                .ok()?;
        }
        let transport: Arc<dyn WorkerTransport> = Arc::new(RemoteWorker::new(&migration.to));
        runtime
            .add_remote_shard(&migration.endpoint, migration.version, transport)
            .ok()?;
        if let Some(hub) = &self.monitor {
            hub.record_event(MonitorEvent::Migration(migration.clone()));
        }
        Some(migration)
    }
}
