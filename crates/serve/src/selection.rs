//! Multi-armed-bandit model selection, Clipper's selection layer.
//!
//! The paper (§7) notes that Clipper layers a model-selection policy
//! over user-provided models, using multi-armed bandits to route each
//! query session to whichever model has been predicting it best over
//! timescales of thousands of queries. This module reproduces that
//! substrate: a [`ModelSelector`] owns several [`Servable`]s, a
//! [`SelectionPolicy`] picks which one answers the next query, and
//! reward feedback (`1 - loss`) updates the policy's state.
//!
//! Three standard policies are provided:
//!
//! - [`SelectionPolicy::EpsilonGreedy`]: explore uniformly with
//!   probability ε, otherwise exploit the best empirical mean,
//! - [`SelectionPolicy::Ucb1`]: optimism under uncertainty via the
//!   UCB1 index `mean + sqrt(2 ln t / n)`,
//! - [`SelectionPolicy::Exp3`]: exponential weights for adversarial
//!   reward sequences.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use willump_data::Table;

use crate::server::Servable;
use crate::ServeError;

/// Which bandit algorithm routes queries to models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionPolicy {
    /// Explore with probability `epsilon`, otherwise play the best
    /// empirical arm.
    EpsilonGreedy {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
    /// UCB1 (Auer et al. 2002): play the arm maximizing
    /// `mean + sqrt(2 ln t / n)`.
    Ucb1,
    /// Exp3 exponential-weight selection with exploration mix `gamma`.
    Exp3 {
        /// Exploration mixture in `(0, 1]`.
        gamma: f64,
    },
}

impl SelectionPolicy {
    fn validate(&self) -> Result<(), ServeError> {
        let ok = match self {
            SelectionPolicy::EpsilonGreedy { epsilon } => (0.0..=1.0).contains(epsilon),
            SelectionPolicy::Ucb1 => true,
            SelectionPolicy::Exp3 { gamma } => *gamma > 0.0 && *gamma <= 1.0,
        };
        if ok {
            Ok(())
        } else {
            Err(ServeError::BadRequest {
                reason: format!("invalid selection policy parameters: {self:?}"),
            })
        }
    }
}

/// Per-arm statistics, readable for monitoring.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmStats {
    /// Times this arm served a query.
    pub pulls: u64,
    /// Sum of observed rewards.
    pub reward_sum: f64,
    /// Exp3 weight (1.0 unless the Exp3 policy is active).
    pub weight: f64,
}

impl ArmStats {
    /// Empirical mean reward (0 before the first pull).
    pub fn mean(&self) -> f64 {
        if self.pulls == 0 {
            0.0
        } else {
            self.reward_sum / self.pulls as f64
        }
    }
}

struct SelectorState {
    arms: Vec<ArmStats>,
    total_pulls: u64,
    rng: StdRng,
}

/// A bandit-routed ensemble of servables.
///
/// `select` picks an arm, `predict` serves a batch through the chosen
/// arm, and `reward` feeds accuracy feedback (e.g. `1 - loss` once
/// ground truth arrives) back into the policy. Thread-safe: state is
/// behind a mutex, matching Clipper's shared selection state.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use willump_serve::{ModelSelector, Servable, SelectionPolicy};
/// use willump_data::Table;
///
/// struct Constant(f64);
/// impl Servable for Constant {
///     fn predict_table(&self, t: &Table) -> Result<Vec<f64>, String> {
///         Ok(vec![self.0; t.n_rows()])
///     }
/// }
///
/// # fn main() -> Result<(), willump_serve::ServeError> {
/// let selector = ModelSelector::new(
///     vec![
///         ("good".to_string(), Arc::new(Constant(1.0)) as Arc<dyn Servable>),
///         ("bad".to_string(), Arc::new(Constant(0.0)) as Arc<dyn Servable>),
///     ],
///     SelectionPolicy::EpsilonGreedy { epsilon: 0.1 },
///     42,
/// )?;
/// // Route queries, then feed back rewards for the pulled arm.
/// for _ in 0..50 {
///     let arm = selector.select_pull();
///     selector.reward(arm, if arm == 0 { 0.9 } else { 0.1 });
/// }
/// let pulls: Vec<u64> = selector.arm_stats().iter().map(|a| a.pulls).collect();
/// assert!(pulls[0] > pulls[1], "the rewarded arm dominates: {pulls:?}");
/// # Ok(())
/// # }
/// ```
pub struct ModelSelector {
    models: Vec<Arc<dyn Servable>>,
    names: Vec<String>,
    policy: SelectionPolicy,
    state: Mutex<SelectorState>,
}

impl std::fmt::Debug for ModelSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSelector")
            .field("names", &self.names)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl ModelSelector {
    /// A selector over named models under the given policy.
    ///
    /// # Errors
    /// Returns [`ServeError::BadRequest`] when no models are supplied,
    /// names and models mismatch, or the policy parameters are out of
    /// range.
    pub fn new(
        models: Vec<(String, Arc<dyn Servable>)>,
        policy: SelectionPolicy,
        seed: u64,
    ) -> Result<ModelSelector, ServeError> {
        if models.is_empty() {
            return Err(ServeError::BadRequest {
                reason: "model selector needs at least one model".into(),
            });
        }
        policy.validate()?;
        let (names, models): (Vec<_>, Vec<_>) = models.into_iter().unzip();
        let n = models.len();
        Ok(ModelSelector {
            models,
            names,
            policy,
            state: Mutex::new(SelectorState {
                arms: vec![
                    ArmStats {
                        pulls: 0,
                        reward_sum: 0.0,
                        weight: 1.0,
                    };
                    n
                ],
                total_pulls: 0,
                rng: StdRng::seed_from_u64(seed),
            }),
        })
    }

    /// A selector whose arms are lowered [`willump::ServingPlan`]s:
    /// bandit-routed selection *across* whole serving plans, the
    /// coarse-grained complement of the within-plan `SelectArm` stage
    /// (which picks among full-model variants inside one plan).
    ///
    /// # Errors
    /// Same conditions as [`ModelSelector::new`].
    pub fn from_plans(
        plans: Vec<(String, willump::ServingPlan)>,
        policy: SelectionPolicy,
        seed: u64,
    ) -> Result<ModelSelector, ServeError> {
        ModelSelector::new(
            plans
                .into_iter()
                .map(|(name, plan)| (name, Arc::new(plan) as Arc<dyn Servable>))
                .collect(),
            policy,
            seed,
        )
    }

    /// Number of models.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// The name of model `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Snapshot of per-arm statistics.
    pub fn arm_stats(&self) -> Vec<ArmStats> {
        self.state.lock().arms.clone()
    }

    /// Pick the arm the policy wants to play next (does not serve).
    pub fn select(&self) -> usize {
        let mut st = self.state.lock();
        let n = self.models.len();
        match self.policy {
            SelectionPolicy::EpsilonGreedy { epsilon } => {
                if st.rng.gen::<f64>() < epsilon {
                    st.rng.gen_range(0..n)
                } else {
                    best_mean(&st.arms)
                }
            }
            SelectionPolicy::Ucb1 => {
                // Play each arm once first.
                if let Some(unplayed) = st.arms.iter().position(|a| a.pulls == 0) {
                    return unplayed;
                }
                let t = st.total_pulls.max(1) as f64;
                let mut best = 0;
                let mut best_idx = f64::NEG_INFINITY;
                for (i, a) in st.arms.iter().enumerate() {
                    let bonus = (2.0 * t.ln() / a.pulls as f64).sqrt();
                    let idx = a.mean() + bonus;
                    if idx > best_idx {
                        best_idx = idx;
                        best = i;
                    }
                }
                best
            }
            SelectionPolicy::Exp3 { gamma } => {
                let total_w: f64 = st.arms.iter().map(|a| a.weight).sum();
                let probs: Vec<f64> = st
                    .arms
                    .iter()
                    .map(|a| (1.0 - gamma) * a.weight / total_w + gamma / n as f64)
                    .collect();
                let mut u = st.rng.gen::<f64>();
                for (i, p) in probs.iter().enumerate() {
                    if u < *p {
                        return i;
                    }
                    u -= p;
                }
                n - 1
            }
        }
    }

    /// Pick an arm *and record the pull*, without serving through the
    /// selector. For callers that dispatch the prediction themselves —
    /// the multi-endpoint [`crate::ServingRuntime`] uses this as its
    /// canary router between endpoint versions: the selector's arms
    /// are the versions, `select_pull` picks which version serves the
    /// next unpinned request, and accuracy feedback flows back through
    /// [`reward`](ModelSelector::reward) once ground truth arrives.
    pub fn select_pull(&self) -> usize {
        let arm = self.select();
        let mut st = self.state.lock();
        st.arms[arm].pulls += 1;
        st.total_pulls += 1;
        arm
    }

    /// Serve a batch through the policy-chosen model; returns the
    /// scores and the arm that served them (pass it to [`reward`]).
    ///
    /// [`reward`]: ModelSelector::reward
    ///
    /// # Errors
    /// Returns [`ServeError::Predictor`] when the chosen model fails.
    pub fn predict(&self, table: &Table) -> Result<(Vec<f64>, usize), ServeError> {
        let arm = self.select();
        let scores = self.models[arm]
            .predict_table(table)
            .map_err(ServeError::Predictor)?;
        self.state.lock().arms[arm].pulls += 1;
        self.state.lock().total_pulls += 1;
        Ok((scores, arm))
    }

    /// Feed reward in `[0, 1]` for a pull of `arm` back into the
    /// policy (clamped otherwise).
    ///
    /// # Panics
    /// Panics if `arm` is out of range.
    pub fn reward(&self, arm: usize, reward: f64) {
        assert!(arm < self.models.len(), "arm {arm} out of range");
        let reward = reward.clamp(0.0, 1.0);
        let mut st = self.state.lock();
        st.arms[arm].reward_sum += reward;
        if let SelectionPolicy::Exp3 { gamma } = self.policy {
            let n = self.models.len() as f64;
            let total_w: f64 = st.arms.iter().map(|a| a.weight).sum();
            let p = (1.0 - gamma) * st.arms[arm].weight / total_w + gamma / n;
            let xhat = reward / p.max(1e-12);
            let w = &mut st.arms[arm].weight;
            *w *= (gamma * xhat / n).exp();
            // Renormalize to dodge overflow on long runs.
            if *w > 1e100 {
                for a in &mut st.arms {
                    a.weight /= 1e100;
                }
            }
        }
    }
}

/// A selector is itself servable, so a bandit-routed ensemble can sit
/// behind a (multi-worker) [`crate::ClipperServer`]: each coalesced
/// batch is routed through the policy-chosen arm. The served arm index
/// is not observable through this path — keep a shared `Arc` to the
/// selector and feed [`ModelSelector::reward`] out of band once ground
/// truth arrives, as Clipper does with delayed feedback.
impl Servable for ModelSelector {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        self.predict(table)
            .map(|(scores, _arm)| scores)
            .map_err(|e| e.to_string())
    }
}

fn best_mean(arms: &[ArmStats]) -> usize {
    let mut best = 0;
    let mut best_mean = f64::NEG_INFINITY;
    for (i, a) in arms.iter().enumerate() {
        let m = a.mean();
        if m > best_mean {
            best_mean = m;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A servable that always predicts a constant; its "quality" is
    /// injected by the test's reward function.
    struct Constant(f64);

    impl Servable for Constant {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            Ok(vec![self.0; table.n_rows().max(1)])
        }
    }

    fn two_arm_selector(policy: SelectionPolicy) -> ModelSelector {
        ModelSelector::new(
            vec![
                (
                    "bad".to_string(),
                    Arc::new(Constant(0.0)) as Arc<dyn Servable>,
                ),
                (
                    "good".to_string(),
                    Arc::new(Constant(1.0)) as Arc<dyn Servable>,
                ),
            ],
            policy,
            42,
        )
        .unwrap()
    }

    /// Run `rounds` pulls where arm 1 yields reward 0.9 and arm 0
    /// yields 0.1; return the fraction of pulls landing on arm 1 in
    /// the second half.
    fn late_good_fraction(sel: &ModelSelector, rounds: usize) -> f64 {
        let t = Table::new();
        let mut late_good = 0;
        let half = rounds / 2;
        for i in 0..rounds {
            let (_, arm) = sel.predict(&t).unwrap();
            sel.reward(arm, if arm == 1 { 0.9 } else { 0.1 });
            if i >= half && arm == 1 {
                late_good += 1;
            }
        }
        late_good as f64 / half as f64
    }

    #[test]
    fn epsilon_greedy_converges_to_better_arm() {
        let sel = two_arm_selector(SelectionPolicy::EpsilonGreedy { epsilon: 0.1 });
        assert!(late_good_fraction(&sel, 400) > 0.8);
    }

    #[test]
    fn ucb1_converges_to_better_arm() {
        let sel = two_arm_selector(SelectionPolicy::Ucb1);
        assert!(late_good_fraction(&sel, 400) > 0.8);
    }

    #[test]
    fn exp3_converges_to_better_arm() {
        let sel = two_arm_selector(SelectionPolicy::Exp3 { gamma: 0.1 });
        assert!(late_good_fraction(&sel, 1000) > 0.6);
    }

    #[test]
    fn ucb1_plays_every_arm_first() {
        let sel = two_arm_selector(SelectionPolicy::Ucb1);
        let t = Table::new();
        let (_, a0) = sel.predict(&t).unwrap();
        let (_, a1) = sel.predict(&t).unwrap();
        let mut seen = [a0, a1];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
    }

    #[test]
    fn stats_track_pulls_and_rewards() {
        let sel = two_arm_selector(SelectionPolicy::EpsilonGreedy { epsilon: 1.0 });
        let t = Table::new();
        for _ in 0..50 {
            let (_, arm) = sel.predict(&t).unwrap();
            sel.reward(arm, 0.5);
        }
        let stats = sel.arm_stats();
        assert_eq!(stats.iter().map(|a| a.pulls).sum::<u64>(), 50);
        for a in &stats {
            if a.pulls > 0 {
                assert!((a.mean() - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rewards_are_clamped() {
        let sel = two_arm_selector(SelectionPolicy::Ucb1);
        let t = Table::new();
        let (_, arm) = sel.predict(&t).unwrap();
        sel.reward(arm, 17.0);
        assert!(sel.arm_stats()[arm].mean() <= 1.0);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(ModelSelector::new(vec![], SelectionPolicy::Ucb1, 1).is_err());
        let m: Vec<(String, Arc<dyn Servable>)> =
            vec![("a".into(), Arc::new(Constant(0.0)) as Arc<dyn Servable>)];
        assert!(ModelSelector::new(m, SelectionPolicy::EpsilonGreedy { epsilon: 1.5 }, 1).is_err());
        let m: Vec<(String, Arc<dyn Servable>)> =
            vec![("a".into(), Arc::new(Constant(0.0)) as Arc<dyn Servable>)];
        assert!(ModelSelector::new(m, SelectionPolicy::Exp3 { gamma: 0.0 }, 1).is_err());
    }

    #[test]
    fn predict_propagates_model_failure() {
        struct Failing;
        impl Servable for Failing {
            fn predict_table(&self, _: &Table) -> Result<Vec<f64>, String> {
                Err("boom".into())
            }
        }
        let sel = ModelSelector::new(
            vec![("f".into(), Arc::new(Failing) as Arc<dyn Servable>)],
            SelectionPolicy::Ucb1,
            1,
        )
        .unwrap();
        assert!(matches!(
            sel.predict(&Table::new()),
            Err(ServeError::Predictor(_))
        ));
    }

    #[test]
    fn selector_serves_behind_clipper_server() {
        use crate::{table_row_to_wire, ClipperServer, ServerConfig};
        use willump_data::Column;

        let sel = Arc::new(two_arm_selector(SelectionPolicy::Ucb1));
        let server = ClipperServer::start(sel.clone(), ServerConfig::default());
        let client = server.client();
        let mut t = Table::new();
        t.add_column("x", Column::from(vec![1.0f64, 2.0])).unwrap();
        for _ in 0..4 {
            let rows = vec![
                table_row_to_wire(&t, 0).unwrap(),
                table_row_to_wire(&t, 1).unwrap(),
            ];
            let scores = client.predict(rows).unwrap();
            assert_eq!(scores.len(), 2);
            // Constant(0.0) or Constant(1.0), depending on the arm.
            assert!(scores.iter().all(|&s| s == 0.0 || s == 1.0));
        }
        // Reward feedback still flows through the shared handle.
        sel.reward(0, 0.3);
        assert_eq!(sel.arm_stats().iter().map(|a| a.pulls).sum::<u64>(), 4);
    }

    #[test]
    fn names_accessible() {
        let sel = two_arm_selector(SelectionPolicy::Ucb1);
        assert_eq!(sel.n_models(), 2);
        assert_eq!(sel.name(0), "bad");
        assert_eq!(sel.name(1), "good");
    }
}
