//! The multi-endpoint serving runtime: named, versioned, shard-routed
//! deployments behind one worker pool.
//!
//! The legacy [`crate::ClipperServer`] deployed exactly one anonymous
//! [`Servable`] per server, so the paper's six workloads — and the
//! cascade / top-K / cached plan variants of each — could not share a
//! runtime, be A/B'd, or be scheduled by their cost profiles. A
//! [`ServingRuntime`] instead serves a **registry of endpoints**:
//!
//! - each endpoint has a **name** and a **version** (several versions
//!   of one name coexist; unpinned traffic splits across them by
//!   weight, or via a [`ModelSelector`] bandit — Clipper's selection
//!   layer reused as a canary router);
//! - each endpoint is divided into **shards**: the runtime hashes a
//!   request's routing key ([`crate::Request::key`]) so equal keys
//!   always land on the same shard (unkeyed requests spread
//!   round-robin), and shards map onto workers;
//! - a **statistics-aware scheduler** ([`SchedulerPolicy`]) reads
//!   each plan's [`PlanCounters`] (the per-stage introspection the
//!   `ServingPlan` IR accumulates) and routes escalation-heavy
//!   endpoints to a dedicated tail of the worker pool, so their
//!   expensive full-model traffic cannot starve cheap endpoints;
//! - **shadow** endpoints receive a mirrored copy of their group's
//!   traffic with the response discarded — deployment validation at
//!   serving time;
//! - a **statistical admission layer** ([`AdmissionPolicy`], set with
//!   [`RuntimeBuilder::admission`]) keeps per-endpoint streaming
//!   telemetry — arrival rate (windowed EWMA), service-time quantiles
//!   (fixed-bucket latency histogram), and worker queue depth — and,
//!   when the estimated p99 breaches the configured SLO, first
//!   **degrades** plan endpoints to their small-model lowering
//!   ([`willump::ServingPlan::degraded`]) and only past the shed
//!   threshold **sheds** with an explicit
//!   [`Response::overloaded`] marker. A Count-Min Sketch tracks
//!   per-key frequency at admission: heavy-hitter keys are routed
//!   round-robin across shards instead of key-hash (one worker cannot
//!   absorb a viral key) and get their end-to-end cache entries
//!   pinned against LRU eviction.
//!
//! Workers keep the coalescing behavior paper Table 6 measures: each
//! worker drains its queue up to [`ServerConfig::max_batch_requests`]
//! envelopes and merges same-endpoint, same-schema requests into one
//! model-level `predict_table` call.
//!
//! Build a runtime with [`ServingRuntime::builder`]:
//!
//! ```text
//! let mut b = ServingRuntime::builder();
//! b.config(ServerConfig::builder().workers(4).build());
//! b.plan("music", cascade_plan).shards(4);
//! b.plan("music", canary_plan).version(2).weight(0.25);
//! b.plan("toxic", topk_plan).shards(2);
//! let runtime = b.build()?;
//! let client = runtime.client();
//! let scores = client.predict_endpoint("music", rows)?;
//! ```

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use willump::{
    CountMinSketch, LatencyHistogram, PlanCounters, PlanCountersSnapshot, RateEstimator,
};
use willump_data::{Column, DataType, Table};

use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, error_wire, ControlRequest,
    EndpointCounters, Request, Response, WireRow, ERROR_RESPONSE_ID,
};
use crate::remote::{BreakerState, RemoteWorker, TransportStats, WorkerTransport};
use crate::selection::{ModelSelector, SelectionPolicy};
use crate::server::{Servable, ServerConfig};
use crate::ServeError;

/// The endpoint name the [`RuntimeBuilder`] assigns when the caller
/// does not pick one, and the name the [`crate::ClipperServer`] shim
/// registers its single predictor under.
pub const DEFAULT_ENDPOINT: &str = "default";

/// Deterministic shard routing: hash a key onto one of `shards`
/// shards. Equal keys always map to equal shards; `shards <= 1`
/// always maps to shard 0.
#[must_use]
pub fn shard_for_key(key: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

// ---- statistics ----------------------------------------------------

/// Global server-side counters for a [`ServingRuntime`].
#[derive(Debug)]
pub struct ServerStats {
    requests: AtomicU64,
    rows: AtomicU64,
    batches: AtomicU64,
    decode_errors: AtomicU64,
    route_errors: AtomicU64,
    coalesced_rows: AtomicU64,
    max_batch_rows: AtomicU64,
    remote_forwards: AtomicU64,
    remote_bytes_sent: AtomicU64,
    remote_bytes_received: AtomicU64,
    remote_max_in_flight: AtomicU64,
    transport_errors: AtomicU64,
    failovers: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    hot_keys: AtomicU64,
    probes_sent: AtomicU64,
    probes_ok: AtomicU64,
    worker_batches: Vec<AtomicU64>,
}

impl ServerStats {
    fn new(workers: usize) -> ServerStats {
        ServerStats {
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            route_errors: AtomicU64::new(0),
            coalesced_rows: AtomicU64::new(0),
            max_batch_rows: AtomicU64::new(0),
            remote_forwards: AtomicU64::new(0),
            remote_bytes_sent: AtomicU64::new(0),
            remote_bytes_received: AtomicU64::new(0),
            remote_max_in_flight: AtomicU64::new(0),
            transport_errors: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            hot_keys: AtomicU64::new(0),
            probes_sent: AtomicU64::new(0),
            probes_ok: AtomicU64::new(0),
            worker_batches: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Requests received, including ones that failed to decode or
    /// route. Shadow-mirrored copies are *not* counted here (they are
    /// counted on the shadow endpoint's own [`EndpointStats`]).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total input rows across successfully decoded *and routed*
    /// requests (rows of requests addressing an unknown endpoint or
    /// version are not counted — see
    /// [`route_errors`](ServerStats::route_errors)).
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Worker iterations (each handling >= 1 coalesced requests).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Requests whose payload failed [`decode_request`]; these are
    /// counted in [`requests`](ServerStats::requests) too and are
    /// answered with [`ERROR_RESPONSE_ID`].
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// Well-formed requests addressing an unknown endpoint or version;
    /// counted in [`requests`](ServerStats::requests) too and answered
    /// with an error response echoing the request id.
    pub fn route_errors(&self) -> u64 {
        self.route_errors.load(Ordering::Relaxed)
    }

    /// Rows served through merged model batches spanning more than
    /// one request (0 until concurrency actually coalesces).
    pub fn coalesced_rows(&self) -> u64 {
        self.coalesced_rows.load(Ordering::Relaxed)
    }

    /// Largest number of rows handed to a single successful
    /// `predict_table` call.
    pub fn max_batch_rows(&self) -> u64 {
        self.max_batch_rows.load(Ordering::Relaxed)
    }

    /// Requests answered by a remote shard (successful
    /// [`crate::WorkerTransport`] forwards, including ones that
    /// succeeded only after fail-over to another remote shard).
    pub fn remote_forwards(&self) -> u64 {
        self.remote_forwards.load(Ordering::Relaxed)
    }

    /// Bytes written to remote-shard transports (0 for in-process
    /// transports, whose "wire" is a channel send).
    pub fn remote_bytes_sent(&self) -> u64 {
        self.remote_bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes read back from remote-shard transports.
    pub fn remote_bytes_received(&self) -> u64 {
        self.remote_bytes_received.load(Ordering::Relaxed)
    }

    /// Peak number of remote forwards simultaneously in flight across
    /// all endpoints.
    pub fn remote_max_in_flight(&self) -> u64 {
        self.remote_max_in_flight.load(Ordering::Relaxed)
    }

    /// Transport forwards that failed (each triggers fail-over; a
    /// request can count more than once when several shards fail).
    pub fn transport_errors(&self) -> u64 {
        self.transport_errors.load(Ordering::Relaxed)
    }

    /// Requests re-routed to a surviving shard after their routed
    /// shard's transport failed.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Requests served by an endpoint's *degraded* plan lowering
    /// because admission control judged the latency SLO at risk.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Requests shed at admission with a [`Response::overloaded`]
    /// marker (no prediction ran; not counted in
    /// [`rows`](ServerStats::rows)).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests whose routing key tested as a heavy hitter at
    /// admission (routed round-robin instead of key-hash, cache
    /// entries pinned).
    pub fn hot_keys(&self) -> u64 {
        self.hot_keys.load(Ordering::Relaxed)
    }

    /// Health probes sent by the cluster control plane (counter
    /// probes against open-breaker shards; never counted as
    /// [`remote_forwards`](ServerStats::remote_forwards)).
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent.load(Ordering::Relaxed)
    }

    /// Health probes the probed node answered (each closes the
    /// shard's circuit breaker, re-admitting the node).
    pub fn probes_ok(&self) -> u64 {
        self.probes_ok.load(Ordering::Relaxed)
    }

    /// Worker-iteration counts, one entry per worker thread.
    pub fn worker_batches(&self) -> Vec<u64> {
        self.worker_batches
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn record_probe(&self, ok: bool) {
        self.probes_sent.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.probes_ok.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A coherent point-in-time copy of every counter, for export or
    /// before/after diffing in experiments. Every numeric counter on
    /// [`ServerStats`] MUST be folded here — `xtask lint` rule WL002
    /// (stats-completeness) enforces it.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            requests: self.requests(),
            rows: self.rows(),
            batches: self.batches(),
            decode_errors: self.decode_errors(),
            route_errors: self.route_errors(),
            coalesced_rows: self.coalesced_rows(),
            max_batch_rows: self.max_batch_rows(),
            remote_forwards: self.remote_forwards(),
            remote_bytes_sent: self.remote_bytes_sent(),
            remote_bytes_received: self.remote_bytes_received(),
            remote_max_in_flight: self.remote_max_in_flight(),
            transport_errors: self.transport_errors(),
            failovers: self.failovers(),
            degraded: self.degraded(),
            shed: self.shed(),
            hot_keys: self.hot_keys(),
            probes_sent: self.probes_sent(),
            probes_ok: self.probes_ok(),
            worker_batches: self.worker_batches(),
        }
    }
}

/// Owned point-in-time copy of [`ServerStats`] (see
/// [`ServerStats::snapshot`]), for export or before/after diffing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Requests received (including decode/route failures).
    #[serde(default)]
    pub requests: u64,
    /// Input rows across decoded and routed requests.
    #[serde(default)]
    pub rows: u64,
    /// Worker iterations.
    #[serde(default)]
    pub batches: u64,
    /// Requests whose payload failed to decode.
    #[serde(default)]
    pub decode_errors: u64,
    /// Requests addressing an unknown endpoint or version.
    #[serde(default)]
    pub route_errors: u64,
    /// Rows served through merged multi-request model batches.
    #[serde(default)]
    pub coalesced_rows: u64,
    /// Largest single successful `predict_table` batch.
    #[serde(default)]
    pub max_batch_rows: u64,
    /// Requests answered by a remote shard.
    #[serde(default)]
    pub remote_forwards: u64,
    /// Bytes written to remote-shard transports.
    #[serde(default)]
    pub remote_bytes_sent: u64,
    /// Bytes read back from remote-shard transports.
    #[serde(default)]
    pub remote_bytes_received: u64,
    /// Peak remote forwards simultaneously in flight.
    #[serde(default)]
    pub remote_max_in_flight: u64,
    /// Failed transport forwards.
    #[serde(default)]
    pub transport_errors: u64,
    /// Requests re-routed after their shard's transport failed.
    #[serde(default)]
    pub failovers: u64,
    /// Requests served by a degraded plan lowering.
    #[serde(default)]
    pub degraded: u64,
    /// Requests shed at admission.
    #[serde(default)]
    pub shed: u64,
    /// Requests whose routing key tested as a heavy hitter.
    #[serde(default)]
    pub hot_keys: u64,
    /// Health probes sent by the cluster control plane.
    #[serde(default)]
    pub probes_sent: u64,
    /// Health probes the probed node answered.
    #[serde(default)]
    pub probes_ok: u64,
    /// Worker-iteration counts, one entry per worker thread.
    #[serde(default)]
    pub worker_batches: Vec<u64>,
}

/// Per-endpoint (name + version) serving counters.
///
/// Per-shard views cover local shards (backed by fixed counters here)
/// followed by the endpoint's **live** remote slots (counters ride on
/// the live topology slot itself, so they follow the slot through
/// drain/re-add instead of being pinned to a build-time index).
#[derive(Debug)]
pub struct EndpointStats {
    requests: AtomicU64,
    rows: AtomicU64,
    coalesced_rows: AtomicU64,
    max_batch_rows: AtomicU64,
    shard_requests: Vec<AtomicU64>,
    shard_transport_nanos: Vec<AtomicU64>,
    remote_bytes_sent: AtomicU64,
    remote_bytes_received: AtomicU64,
    remote_max_in_flight: AtomicU64,
    transport_errors: AtomicU64,
    failovers: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    hot_keys: AtomicU64,
    probes_sent: AtomicU64,
    probes_ok: AtomicU64,
    /// The endpoint's remote slots, shared with [`Endpoint`] so
    /// per-shard views stay index-aligned with routing.
    remote: Arc<RemoteTopology>,
}

impl EndpointStats {
    fn new(local_shards: usize, remote: Arc<RemoteTopology>) -> EndpointStats {
        EndpointStats {
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            coalesced_rows: AtomicU64::new(0),
            max_batch_rows: AtomicU64::new(0),
            shard_requests: (0..local_shards).map(|_| AtomicU64::new(0)).collect(),
            shard_transport_nanos: (0..local_shards).map(|_| AtomicU64::new(0)).collect(),
            remote_bytes_sent: AtomicU64::new(0),
            remote_bytes_received: AtomicU64::new(0),
            remote_max_in_flight: AtomicU64::new(0),
            transport_errors: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            hot_keys: AtomicU64::new(0),
            probes_sent: AtomicU64::new(0),
            probes_ok: AtomicU64::new(0),
            remote,
        }
    }

    /// Requests routed to this endpoint (shadow copies included on
    /// shadow endpoints).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Input rows routed to this endpoint.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Rows served through merged multi-request model batches.
    pub fn coalesced_rows(&self) -> u64 {
        self.coalesced_rows.load(Ordering::Relaxed)
    }

    /// Largest successful `predict_table` batch for this endpoint.
    pub fn max_batch_rows(&self) -> u64 {
        self.max_batch_rows.load(Ordering::Relaxed)
    }

    /// Requests per shard, local shards first then the current remote
    /// slots (shard-routing observability: equal keys increment
    /// exactly one entry). Remote entries follow their slot through
    /// topology changes, so the vector length tracks the live shard
    /// count.
    pub fn shard_requests(&self) -> Vec<u64> {
        let mut per_shard: Vec<u64> = self
            .shard_requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        per_shard.extend(
            self.remote
                .slots()
                .iter()
                .map(|s| s.requests.load(Ordering::Relaxed)),
        );
        per_shard
    }

    /// Cumulative transport round-trip nanoseconds per shard. Local
    /// shards (whose "transport" is an in-process queue hop measured
    /// inside worker batching instead) always read 0; remote shards
    /// accumulate the full forward latency.
    pub fn shard_transport_nanos(&self) -> Vec<u64> {
        let mut per_shard: Vec<u64> = self
            .shard_transport_nanos
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        per_shard.extend(
            self.remote
                .slots()
                .iter()
                .map(|s| s.transport_nanos.load(Ordering::Relaxed)),
        );
        per_shard
    }

    /// Bytes written to this endpoint's remote-shard transports (0
    /// for in-process transports, whose "wire" is a channel send).
    pub fn remote_bytes_sent(&self) -> u64 {
        self.remote_bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes read back from this endpoint's remote-shard transports.
    pub fn remote_bytes_received(&self) -> u64 {
        self.remote_bytes_received.load(Ordering::Relaxed)
    }

    /// Peak number of this endpoint's remote forwards simultaneously
    /// in flight.
    pub fn remote_max_in_flight(&self) -> u64 {
        self.remote_max_in_flight.load(Ordering::Relaxed)
    }

    /// Failed transport forwards to this endpoint's remote shards.
    pub fn transport_errors(&self) -> u64 {
        self.transport_errors.load(Ordering::Relaxed)
    }

    /// Requests re-routed to a surviving shard after a transport
    /// failure.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Requests served by this endpoint's *degraded* plan lowering.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Requests shed at admission (answered with
    /// [`Response::overloaded`], no prediction ran).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests whose routing key tested as a heavy hitter at
    /// admission.
    pub fn hot_keys(&self) -> u64 {
        self.hot_keys.load(Ordering::Relaxed)
    }

    /// Health probes sent against this endpoint's remote shards.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent.load(Ordering::Relaxed)
    }

    /// Health probes this endpoint's remote shards answered.
    pub fn probes_ok(&self) -> u64 {
        self.probes_ok.load(Ordering::Relaxed)
    }

    pub(crate) fn record_probe(&self, ok: bool) {
        self.probes_sent.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.probes_ok.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A coherent point-in-time copy of every counter, for export or
    /// cross-endpoint aggregation. Every numeric counter on
    /// [`EndpointStats`] MUST be folded here — `xtask lint` rule
    /// WL002 (stats-completeness) enforces it.
    pub fn snapshot(&self) -> EndpointStatsSnapshot {
        EndpointStatsSnapshot {
            requests: self.requests(),
            rows: self.rows(),
            coalesced_rows: self.coalesced_rows(),
            max_batch_rows: self.max_batch_rows(),
            shard_requests: self.shard_requests().iter().sum(),
            shard_transport_nanos: self.shard_transport_nanos().iter().sum(),
            remote_bytes_sent: self.remote_bytes_sent(),
            remote_bytes_received: self.remote_bytes_received(),
            remote_max_in_flight: self.remote_max_in_flight(),
            transport_errors: self.transport_errors(),
            failovers: self.failovers(),
            degraded: self.degraded(),
            shed: self.shed(),
            hot_keys: self.hot_keys(),
            probes_sent: self.probes_sent(),
            probes_ok: self.probes_ok(),
        }
    }
}

/// Owned point-in-time copy of [`EndpointStats`], additive across
/// endpoints via [`merged`](EndpointStatsSnapshot::merged) (see
/// [`ServingRuntime::summed_endpoint_stats`]). Per-shard vectors are
/// collapsed to totals so snapshots from endpoints with different
/// shard counts still merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointStatsSnapshot {
    /// Requests routed to the endpoint (shadow copies included).
    #[serde(default)]
    pub requests: u64,
    /// Input rows routed to the endpoint.
    #[serde(default)]
    pub rows: u64,
    /// Rows served through merged multi-request model batches.
    #[serde(default)]
    pub coalesced_rows: u64,
    /// Largest successful `predict_table` batch.
    #[serde(default)]
    pub max_batch_rows: u64,
    /// Shard-routed requests summed across shards.
    #[serde(default)]
    pub shard_requests: u64,
    /// Cumulative transport round-trip nanoseconds summed across
    /// shards.
    #[serde(default)]
    pub shard_transport_nanos: u64,
    /// Bytes written to remote-shard transports.
    #[serde(default)]
    pub remote_bytes_sent: u64,
    /// Bytes read back from remote-shard transports.
    #[serde(default)]
    pub remote_bytes_received: u64,
    /// Peak number of remote forwards simultaneously in flight.
    #[serde(default)]
    pub remote_max_in_flight: u64,
    /// Failed transport forwards to remote shards.
    #[serde(default)]
    pub transport_errors: u64,
    /// Requests re-routed to a surviving shard after a transport
    /// failure.
    #[serde(default)]
    pub failovers: u64,
    /// Requests served by the degraded plan lowering.
    #[serde(default)]
    pub degraded: u64,
    /// Requests shed at admission.
    #[serde(default)]
    pub shed: u64,
    /// Requests whose routing key tested as a heavy hitter.
    #[serde(default)]
    pub hot_keys: u64,
    /// Health probes sent against remote shards.
    #[serde(default)]
    pub probes_sent: u64,
    /// Health probes the remote shards answered.
    #[serde(default)]
    pub probes_ok: u64,
}

impl EndpointStatsSnapshot {
    /// Field-wise combination of two snapshots: counters add,
    /// high-water marks take the max. Every counter field MUST be
    /// folded here — `xtask lint` rule WL002 enforces it.
    #[must_use]
    pub fn merged(self, other: EndpointStatsSnapshot) -> EndpointStatsSnapshot {
        EndpointStatsSnapshot {
            requests: self.requests + other.requests,
            rows: self.rows + other.rows,
            coalesced_rows: self.coalesced_rows + other.coalesced_rows,
            max_batch_rows: self.max_batch_rows.max(other.max_batch_rows),
            shard_requests: self.shard_requests + other.shard_requests,
            shard_transport_nanos: self.shard_transport_nanos + other.shard_transport_nanos,
            remote_bytes_sent: self.remote_bytes_sent + other.remote_bytes_sent,
            remote_bytes_received: self.remote_bytes_received + other.remote_bytes_received,
            remote_max_in_flight: self.remote_max_in_flight.max(other.remote_max_in_flight),
            transport_errors: self.transport_errors + other.transport_errors,
            failovers: self.failovers + other.failovers,
            degraded: self.degraded + other.degraded,
            shed: self.shed + other.shed,
            hot_keys: self.hot_keys + other.hot_keys,
            probes_sent: self.probes_sent + other.probes_sent,
            probes_ok: self.probes_ok + other.probes_ok,
        }
    }
}

// ---- admission control ---------------------------------------------

/// Statistical admission control for a [`ServingRuntime`] (install
/// with [`RuntimeBuilder::admission`]).
///
/// The runtime keeps per-endpoint streaming telemetry — arrival rate
/// (windowed EWMA), service-time quantiles (fixed-bucket latency
/// histogram), and the routed worker's queue depth — and estimates
/// each request's p99 latency as `service_p99 x (queue_depth + 1)`
/// (every queued request is served before this one). Against the
/// configured SLO the policy acts in two bands:
///
/// 1. **Degrade** (`slo < estimate <= slo x shed_factor`): endpoints
///    with a degraded lowering ([`willump::ServingPlan::degraded`],
///    attached automatically by [`RuntimeBuilder::plan`]) serve the
///    request with the small model only — cheaper, never escalating —
///    and mark the response [`Response::degraded`].
/// 2. **Shed** (`estimate > slo x shed_factor`): the request is
///    answered immediately with [`Response::overloaded`] and an
///    explicit error; no prediction runs.
///
/// Independently, a Count-Min Sketch tracks routing-key frequency:
/// keys above [`hot_key_fraction`](Self::hot_key_fraction) of an
/// endpoint's traffic are routed round-robin across shards instead of
/// key-hash, and their end-to-end cache entries are pinned against
/// LRU eviction ([`willump::ServingPlan::pin_cache_rows`]).
///
/// Decisions apply to locally-served traffic; requests routed to a
/// remote shard are forwarded and subject to the *remote* node's own
/// admission policy instead (its shed responses relay back verbatim).
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    slo_p99_nanos: u64,
    shed_factor: f64,
    hot_key_fraction: f64,
    min_samples: u64,
}

impl AdmissionPolicy {
    /// A policy targeting the given p99 latency SLO, with defaults:
    /// shed factor 2.0, hot-key fraction 0.5, 32 minimum samples.
    ///
    /// # Panics
    /// Panics on a zero SLO.
    #[must_use]
    pub fn with_slo_p99(slo: Duration) -> AdmissionPolicy {
        let nanos = u64::try_from(slo.as_nanos()).unwrap_or(u64::MAX);
        assert!(nanos > 0, "the p99 SLO must be positive");
        AdmissionPolicy {
            slo_p99_nanos: nanos,
            shed_factor: 2.0,
            hot_key_fraction: 0.5,
            min_samples: 32,
        }
    }

    /// Shed when the estimated p99 exceeds `factor x` the SLO
    /// (between 1x and `factor x`, degrade instead). Default 2.0.
    ///
    /// # Panics
    /// Panics for `factor < 1.0` (the shed band may not start below
    /// the degrade band).
    #[must_use]
    pub fn shed_factor(mut self, factor: f64) -> AdmissionPolicy {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "shed_factor must be >= 1.0, got {factor}"
        );
        self.shed_factor = factor;
        self
    }

    /// Fraction of an endpoint's traffic above which a routing key
    /// counts as a heavy hitter. Default 0.5.
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    #[must_use]
    pub fn hot_key_fraction(mut self, fraction: f64) -> AdmissionPolicy {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "hot_key_fraction must be in (0, 1], got {fraction}"
        );
        self.hot_key_fraction = fraction;
        self
    }

    /// Minimum telemetry samples (service-time observations for SLO
    /// decisions, sketch increments for heavy-hitter tests) before
    /// the policy acts. Default 32.
    #[must_use]
    pub fn min_samples(mut self, n: u64) -> AdmissionPolicy {
        self.min_samples = n;
        self
    }

    /// The configured p99 SLO in nanoseconds.
    #[must_use]
    pub fn slo_p99_nanos(&self) -> u64 {
        self.slo_p99_nanos
    }
}

/// Service-time histograms halve at this sample count, so quantiles
/// track the recent regime instead of averaging over all history.
const SERVICE_HISTORY_LIMIT: u64 = 8192;

/// Key-frequency sketches halve at this total, aging out keys whose
/// traffic moved on.
const SKETCH_DECAY_EVERY: u64 = 65536;

/// Per-endpoint streaming telemetry backing admission decisions
/// (allocated only when the runtime has an [`AdmissionPolicy`]).
struct Telemetry {
    /// Arrival rate: windowed EWMA over admission timestamps.
    arrivals: Mutex<RateEstimator>,
    /// Service-time distribution of completed local predictions.
    service: Mutex<LatencyHistogram>,
    /// Routing-key frequency sketch for heavy-hitter detection.
    sketch: Mutex<CountMinSketch>,
}

impl Telemetry {
    fn new() -> Telemetry {
        Telemetry {
            // 100ms windows, EWMA alpha 0.3: fast enough to track a
            // load spike, smooth enough to ignore single-batch jitter.
            arrivals: Mutex::new(RateEstimator::new(100_000_000, 0.3)),
            // 26 exponential buckets from 1µs: covers ~1µs..34s.
            service: Mutex::new(LatencyHistogram::exponential(1_000, 2.0, 26)),
            sketch: Mutex::new(CountMinSketch::new(512, 4)),
        }
    }
}

/// What the admission policy decided for one locally-routed request.
enum AdmissionDecision {
    Accept,
    Degrade,
    Shed,
}

// ---- remote shard slots --------------------------------------------

/// One live remote shard slot of an [`Endpoint`].
///
/// Slots are held by `Arc` everywhere they are touched — routing
/// snapshots, per-shard stats views, the cluster prober — so a slot
/// detached by [`ServingRuntime::remove_shard`] or
/// [`ServingRuntime::drain_shard`] stays fully valid for forwards
/// that already picked it: topology mutation can never invalidate
/// in-flight work.
pub(crate) struct RemoteShard {
    /// Process-wide unique slot id, stable for the slot's lifetime.
    /// Shard *indices* shift as slots splice in and out, so anything
    /// that diffs topology over time (the monitor's event detector)
    /// keys on this instead.
    pub(crate) id: u64,
    /// Transport reaching the remote node.
    pub(crate) transport: Arc<dyn WorkerTransport>,
    /// Last [`PlanCountersSnapshot`] fetched from the node (refreshed
    /// by [`ServingRuntime::refresh_remote_counters`] and by the
    /// cluster prober on successful health probes).
    pub(crate) counters: Mutex<PlanCountersSnapshot>,
    /// Requests routed to this slot (the dynamic analogue of the
    /// local fixed `shard_requests` entries).
    requests: AtomicU64,
    /// Cumulative forward round-trip nanoseconds.
    transport_nanos: AtomicU64,
    /// Forwards currently in flight on this slot
    /// ([`ServingRuntime::drain_shard`] waits for 0 before detaching).
    in_flight: AtomicUsize,
    /// A draining slot is excluded from new routing domains but keeps
    /// finishing in-flight work.
    draining: AtomicBool,
}

impl std::fmt::Debug for RemoteShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShard")
            .field("transport", &self.transport.describe())
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RemoteShard {
    /// Whether the slot is excluded from new routing domains.
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    fn new(transport: Arc<dyn WorkerTransport>) -> RemoteShard {
        static NEXT_SLOT_ID: AtomicU64 = AtomicU64::new(0);
        RemoteShard {
            id: NEXT_SLOT_ID.fetch_add(1, Ordering::Relaxed),
            transport,
            counters: Mutex::new(PlanCountersSnapshot::default()),
            requests: AtomicU64::new(0),
            transport_nanos: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }
}

/// The live remote-slot list of an endpoint, shared between the
/// [`Endpoint`] (routing) and its [`EndpointStats`] (per-shard views)
/// so both always index shards identically. The lock is only ever
/// held to copy or splice the `Arc` list — never across a transport
/// call (the lock-order deadlock detector enforces this in CI).
#[derive(Debug, Default)]
pub(crate) struct RemoteTopology {
    slots: RwLock<Vec<Arc<RemoteShard>>>,
}

impl RemoteTopology {
    /// All slots, including draining ones (stats/prober view).
    pub(crate) fn slots(&self) -> Vec<Arc<RemoteShard>> {
        self.slots.read().clone()
    }

    /// Slots admitting new work (routing view): draining slots are
    /// excluded, so the key-hash domain shrinks the instant a drain
    /// starts.
    fn active(&self) -> Vec<Arc<RemoteShard>> {
        self.slots
            .read()
            .iter()
            .filter(|s| !s.draining.load(Ordering::Relaxed))
            .cloned()
            .collect()
    }

    fn len(&self) -> usize {
        self.slots.read().len()
    }

    fn push(&self, slot: Arc<RemoteShard>) -> usize {
        let mut slots = self.slots.write();
        slots.push(slot);
        slots.len() - 1
    }

    /// Detach `slot` (matched by identity, so concurrent removals of
    /// other slots cannot shift it under us).
    fn remove(&self, slot: &Arc<RemoteShard>) -> bool {
        let mut slots = self.slots.write();
        match slots.iter().position(|s| Arc::ptr_eq(s, slot)) {
            Some(pos) => {
                slots.remove(pos);
                true
            }
            None => false,
        }
    }
}

// ---- endpoints -----------------------------------------------------

/// One registered endpoint: a named, versioned, sharded deployment of
/// a [`Servable`].
///
/// Shards `0..local_shards` run on the runtime's own worker pool;
/// shards `local_shards..shards()` are **remote**, each backed by a
/// [`WorkerTransport`] (typically a [`RemoteWorker`] pointing at a
/// [`crate::RemoteRuntimeNode`] in another process). Key-hash routing
/// is uniform over all shards, so a key can stick to a remote shard
/// exactly as it sticks to a local one. The remote side is **live**:
/// [`ServingRuntime::add_remote_shard`], [`ServingRuntime::drain_shard`]
/// and [`ServingRuntime::remove_shard`] splice slots while serving,
/// and every request routes over a coherent snapshot of the slot
/// list.
pub struct Endpoint {
    name: String,
    version: u32,
    servable: Arc<dyn Servable>,
    /// Cheaper fallback (typically the plan's small-model lowering)
    /// served when admission control is in the degrade band.
    degraded_servable: Option<Arc<dyn Servable>>,
    /// Admission telemetry; present only when the runtime has an
    /// [`AdmissionPolicy`].
    telemetry: Option<Telemetry>,
    counters: Option<Arc<PlanCounters>>,
    /// Shards served by the runtime's own worker pool.
    local_shards: usize,
    /// Live remote shard slots (shared with [`EndpointStats`]).
    remote: Arc<RemoteTopology>,
    weight: f64,
    shadow: bool,
    /// Local shard -> worker index, rewritten by the scheduler.
    assignment: Vec<AtomicUsize>,
    /// Round-robin cursor for unkeyed plain requests (full domain).
    next_shard: AtomicUsize,
    /// Round-robin cursor for unkeyed forwarded frames (local-shard
    /// domain; separate so the two rotations cannot skew each other).
    next_forwarded: AtomicUsize,
    /// Round-robin cursor for fail-over re-routes onto local shards.
    next_failover: AtomicUsize,
    /// Remote forwards currently in flight (feeds the endpoint's
    /// `remote_max_in_flight` high-water mark).
    remote_in_flight: AtomicUsize,
    stats: EndpointStats,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("shards", &self.shards())
            .field("weight", &self.weight)
            .field("shadow", &self.shadow)
            .finish_non_exhaustive()
    }
}

impl Endpoint {
    /// The endpoint name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The endpoint version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Total number of shards (local + remote) at this instant; the
    /// remote side can change while serving.
    pub fn shards(&self) -> usize {
        self.local_shards + self.remote.len()
    }

    /// Shards served by this runtime's own worker pool (shard indices
    /// `0..local_shards()`).
    pub fn local_shards(&self) -> usize {
        self.local_shards
    }

    /// Shards served through a [`WorkerTransport`] (shard indices
    /// `local_shards()..shards()`) at this instant.
    pub fn remote_shards(&self) -> usize {
        self.remote.len()
    }

    /// Per-remote-shard transport counters, in shard order (empty for
    /// all-local endpoints).
    pub fn transport_stats(&self) -> Vec<TransportStats> {
        self.remote
            .slots()
            .iter()
            .map(|s| s.transport.stats())
            .collect()
    }

    /// Per-remote-shard circuit-breaker states, in shard order.
    pub fn transport_breaker_states(&self) -> Vec<BreakerState> {
        self.remote
            .slots()
            .iter()
            .map(|s| s.transport.breaker_state())
            .collect()
    }

    /// Per-remote-shard transport descriptions, in shard order.
    pub fn transport_descriptions(&self) -> Vec<String> {
        self.remote
            .slots()
            .iter()
            .map(|s| s.transport.describe())
            .collect()
    }

    /// Current remote slots, including draining ones (cluster-plane
    /// view).
    pub(crate) fn remote_slots(&self) -> Vec<Arc<RemoteShard>> {
        self.remote.slots()
    }

    /// Traffic weight among unpinned requests to this endpoint name.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Whether this endpoint only receives mirrored shadow traffic.
    pub fn is_shadow(&self) -> bool {
        self.shadow
    }

    /// Serving counters for this endpoint.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// The current local-shard -> worker assignment (one entry per
    /// local shard; remote shards have no worker).
    pub fn assignment(&self) -> Vec<usize> {
        self.assignment
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// This endpoint's plan counters as seen by the scheduler: the
    /// attached local [`PlanCounters`] merged with the last snapshot
    /// fetched from each remote shard (see
    /// [`ServingRuntime::refresh_remote_counters`]).
    pub fn merged_counters(&self) -> PlanCountersSnapshot {
        let local = self
            .counters
            .as_ref()
            .map_or_else(PlanCountersSnapshot::default, |c| c.snapshot());
        // Several shards may point at the SAME node (a node-wide
        // counters report per probe), so merge one snapshot per
        // distinct backend, not per shard — otherwise an N-shard
        // node's traffic would be weighed N-fold.
        let mut seen: Vec<String> = Vec::new();
        let mut acc = local;
        for slot in self.remote.slots() {
            let who = slot.transport.describe();
            if seen.contains(&who) {
                continue;
            }
            acc = acc.merged(*slot.counters.lock());
            seen.push(who);
        }
        acc
    }

    /// Escalation rate over the merged local + remote counters
    /// (0 when the endpoint has none or no rows ran yet).
    pub fn escalation_rate(&self) -> f64 {
        self.merged_counters().escalation_rate()
    }

    /// Whether admission control can degrade this endpoint instead of
    /// shedding (a degraded lowering is attached — automatic for
    /// [`RuntimeBuilder::plan`] endpoints whose plan
    /// [`can_degrade`](willump::ServingPlan::can_degrade)).
    pub fn can_degrade(&self) -> bool {
        self.degraded_servable.is_some()
    }

    /// Observed p99 service time of local predictions in nanoseconds
    /// (`None` without admission telemetry or completed predictions).
    pub fn service_p99_nanos(&self) -> Option<u64> {
        self.telemetry.as_ref().and_then(|t| t.service.lock().p99())
    }

    /// Smoothed arrival rate in requests/sec as of the last admitted
    /// request (0.0 without admission telemetry).
    pub fn arrival_rate(&self) -> f64 {
        self.telemetry
            .as_ref()
            .map_or(0.0, |t| t.arrivals.lock().rate_per_sec())
    }

    /// The servable that handles a job, honoring its degrade marker.
    fn active_servable(&self, degraded: bool) -> &Arc<dyn Servable> {
        if degraded {
            self.degraded_servable.as_ref().unwrap_or(&self.servable)
        } else {
            &self.servable
        }
    }
}

/// Smooth weighted round-robin state (the nginx algorithm):
/// deterministic and exactly proportional over any window.
struct Wrr {
    current: Vec<f64>,
}

enum Router {
    /// A single primary version: nothing to route.
    Single,
    /// Weighted canary split across versions.
    Weighted(Mutex<Wrr>),
    /// Bandit-routed canary: the [`ModelSelector`]'s arms are the
    /// versions; feed rewards through the selector handle.
    Bandit(Arc<ModelSelector>),
}

struct Group {
    name: String,
    primaries: Vec<Arc<Endpoint>>,
    shadows: Vec<Arc<Endpoint>>,
    router: Router,
}

impl Group {
    fn pick_version(&self) -> usize {
        match &self.router {
            Router::Single => 0,
            Router::Weighted(wrr) => {
                let mut st = wrr.lock();
                let total: f64 = self.primaries.iter().map(|e| e.weight).sum();
                let mut best = 0;
                let mut best_v = f64::NEG_INFINITY;
                for (i, e) in self.primaries.iter().enumerate() {
                    st.current[i] += e.weight;
                    if st.current[i] > best_v {
                        best_v = st.current[i];
                        best = i;
                    }
                }
                st.current[best] -= total;
                best
            }
            Router::Bandit(sel) => sel.select_pull(),
        }
    }
}

// ---- scheduling ----------------------------------------------------

/// How the runtime maps (endpoint, shard) pairs onto workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerPolicy {
    /// Spread every endpoint's shards round-robin across all workers.
    Static,
    /// Statistics-aware: endpoints whose [`PlanCounters`] escalation
    /// rate exceeds `threshold` get the dedicated tail set of
    /// `dedicated_workers` workers (capped to leave at least one
    /// shared worker); everyone else shares the head of the pool.
    /// Falls back to [`SchedulerPolicy::Static`] while no endpoint is
    /// heavy, the pool has a single worker, or `dedicated_workers`
    /// is 0.
    EscalationAware {
        /// Escalation-rate threshold in `[0, 1]` above which an
        /// endpoint counts as heavy.
        threshold: f64,
        /// Workers reserved for heavy endpoints (0 disables the
        /// reservation entirely).
        dedicated_workers: usize,
    },
}

// ---- plumbing ------------------------------------------------------

struct RoutedJob {
    req: Request,
    entry: Arc<Endpoint>,
    /// `None` for shadow-mirrored copies (response discarded).
    reply: Option<Sender<Response>>,
    /// Admission control put this request in the degrade band: serve
    /// it with the endpoint's degraded lowering. Only ever `true`
    /// when the endpoint has one.
    degraded: bool,
}

enum Job {
    Request(RoutedJob),
    Shutdown,
}

/// Admission gate shared by the runtime and every client: sends
/// happen under the lock, so once `closed` flips no message can slip
/// into any worker queue after that worker's shutdown sentinel (FIFO
/// order then guarantees every admitted request is answered before
/// the workers exit).
struct GateState {
    senders: Vec<Sender<Job>>,
    closed: bool,
}

pub(crate) struct Shared {
    groups: Vec<Group>,
    default_group: usize,
    config: ServerConfig,
    scheduler: SchedulerPolicy,
    rebalance_every: u64,
    admission: Option<AdmissionPolicy>,
    /// Monotonic origin for admission telemetry timestamps.
    started: Instant,
    /// Sender clones used only to read queue depths lock-free (the
    /// authoritative senders live behind the gate).
    queue_probes: Vec<Sender<Job>>,
    admitted: AtomicU64,
    gate: Mutex<GateState>,
    /// Remote forwards currently in flight runtime-wide (feeds the
    /// global `remote_max_in_flight` high-water mark).
    remote_in_flight: AtomicUsize,
    /// Node-level drain latch, flipped by [`ControlRequest::Drain`] /
    /// [`ControlRequest::Leave`] and cleared by
    /// [`ControlRequest::Join`]: while set, new predictions are
    /// refused with an [`Response::overloaded`] marker but control
    /// frames and in-flight work keep completing.
    draining: AtomicBool,
    stats: ServerStats,
    n_workers: usize,
}

enum Admitted {
    /// Answered at admission time (control frames, decode/route
    /// errors, shed markers, remote-served requests).
    Immediate(Response),
    /// Queued; the response arrives on this channel.
    Pending(Receiver<Response>),
}

impl Shared {
    /// Every endpoint (primaries then shadows per group) — the
    /// cluster prober's sweep list.
    pub(crate) fn all_endpoints(&self) -> Vec<Arc<Endpoint>> {
        self.groups
            .iter()
            .flat_map(|g| g.primaries.iter().chain(g.shadows.iter()))
            .map(Arc::clone)
            .collect()
    }

    /// Global server counters (probe accounting for the cluster
    /// prober).
    pub(crate) fn server_stats(&self) -> &ServerStats {
        &self.stats
    }

    fn find_group(&self, name: Option<&str>) -> Option<&Group> {
        match name {
            None => self.groups.get(self.default_group),
            Some(n) => self.groups.iter().find(|g| g.name == n),
        }
    }

    /// Recompute every endpoint's shard -> worker assignment from the
    /// scheduler policy and current plan statistics.
    fn rebalance(&self) {
        let entries: Vec<&Arc<Endpoint>> = self
            .groups
            .iter()
            .flat_map(|g| g.primaries.iter().chain(g.shadows.iter()))
            .collect();
        let n = self.n_workers;
        let heavy: Vec<bool> = match self.scheduler {
            SchedulerPolicy::Static => vec![false; entries.len()],
            SchedulerPolicy::EscalationAware { threshold, .. } => entries
                .iter()
                .map(|e| e.escalation_rate() > threshold)
                .collect(),
        };
        let dedicated = match self.scheduler {
            // `dedicated_workers: 0` means "detect but never reserve";
            // otherwise always leave at least one shared worker.
            SchedulerPolicy::EscalationAware {
                dedicated_workers, ..
            } if n > 1 && dedicated_workers > 0 && heavy.iter().any(|&h| h) => {
                dedicated_workers.min(n - 1)
            }
            _ => 0,
        };
        // Heavy endpoints round-robin over the dedicated tail
        // [n - dedicated, n); everyone else over the shared head.
        // Only local shards have workers; remote shards are placed by
        // their own node's scheduler.
        let shared_workers = n - dedicated;
        let mut next_shared = 0usize;
        let mut next_dedicated = 0usize;
        for (e, &is_heavy) in entries.iter().zip(&heavy) {
            for shard in 0..e.local_shards {
                let w = if is_heavy && dedicated > 0 {
                    let w = shared_workers + (next_dedicated % dedicated);
                    next_dedicated += 1;
                    w
                } else {
                    let w = next_shared % shared_workers.max(1);
                    next_shared += 1;
                    w
                };
                e.assignment[shard].store(w, Ordering::Relaxed);
            }
        }
    }

    /// Answer a [`ControlRequest::Counters`] probe: every endpoint's
    /// merged plan-counter snapshot (zeros for endpoints without
    /// attached counters).
    fn counters_report(&self, id: u64) -> Response {
        let report: Vec<EndpointCounters> = self
            .groups
            .iter()
            .flat_map(|g| g.primaries.iter().chain(g.shadows.iter()))
            .map(|e| EndpointCounters {
                endpoint: e.name.clone(),
                version: e.version,
                counters: e.merged_counters(),
            })
            .collect();
        Response {
            id,
            scores: Vec::new(),
            error: None,
            endpoint: None,
            version: None,
            counters: Some(report),
            degraded: false,
            overloaded: false,
        }
    }

    /// Answer one lifecycle/observability control frame.
    fn control_response(&self, id: u64, op: ControlRequest) -> Response {
        match op {
            ControlRequest::Counters => self.counters_report(id),
            ControlRequest::Join => {
                self.draining.store(false, Ordering::Relaxed);
                control_ack(id)
            }
            // Leave is Drain plus a permanent-departure intent; the
            // node-side effect is identical (the *parent* decides
            // whether to re-admit the peer later).
            ControlRequest::Drain | ControlRequest::Leave => {
                self.draining.store(true, Ordering::Relaxed);
                control_ack(id)
            }
        }
    }

    /// Decode, route, and enqueue one wire payload (the legacy JSON
    /// boundary over [`admit_request`](Self::admit_request)).
    fn admit(&self, payload: &str) -> Result<Admitted, ServeError> {
        // Fast-fail before any side effects: a closed runtime admits
        // nothing and records nothing — post-shutdown retries must not
        // skew stats or version-router state.
        if self.gate.lock().closed {
            return Err(ServeError::Disconnected);
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        match decode_request(payload) {
            Ok(req) => self.route_request(req),
            Err(e) => {
                self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                Ok(Admitted::Immediate(Response::failure(
                    ERROR_RESPONSE_ID,
                    e.to_string(),
                )))
            }
        }
    }

    /// Route and enqueue one already-decoded request — the
    /// struct-native admission boundary used by
    /// [`RuntimeClient::call_request`] and (through it) the binary
    /// wire path, which never pays a JSON encode/decode inside the
    /// runtime.
    fn admit_request(&self, req: Request) -> Result<Admitted, ServeError> {
        if self.gate.lock().closed {
            return Err(ServeError::Disconnected);
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.route_request(req)
    }

    /// The shared admission body: control frames, routing, admission
    /// control, shadow mirroring, remote forwarding, and enqueueing.
    fn route_request(&self, req: Request) -> Result<Admitted, ServeError> {
        // Control frames are answered at admission — they never touch
        // worker queues or row counters.
        if let Some(op) = req.control {
            return Ok(Admitted::Immediate(self.control_response(req.id, op)));
        }
        // A draining node refuses new predictions; control frames are
        // answered above so a parent can keep polling counters while
        // the node winds down. The Overloaded marker lets the parent
        // relay the refusal without treating the node as dead.
        if self.draining.load(Ordering::Relaxed) {
            let mut resp = Response::failure(
                req.id,
                "node is draining: new requests are not admitted".to_string(),
            );
            resp.overloaded = true;
            return Ok(Admitted::Immediate(resp));
        }
        let Some(group) = self.find_group(req.endpoint.as_deref()) else {
            self.stats.route_errors.fetch_add(1, Ordering::Relaxed);
            let name = req.endpoint.as_deref().unwrap_or(DEFAULT_ENDPOINT);
            return Ok(Admitted::Immediate(Response::failure(
                req.id,
                format!("unknown endpoint `{name}`"),
            )));
        };
        let entry = match req.version {
            Some(v) => match group.primaries.iter().find(|e| e.version == v) {
                Some(e) => Arc::clone(e),
                None => {
                    self.stats.route_errors.fetch_add(1, Ordering::Relaxed);
                    return Ok(Admitted::Immediate(Response::failure(
                        req.id,
                        format!("endpoint `{}` has no version {v}", group.name),
                    )));
                }
            },
            None => Arc::clone(&group.primaries[group.pick_version()]),
        };

        // ---- statistical admission telemetry -----------------------
        // Record the arrival and test the routing key for heat. A hot
        // key routes round-robin (key = None below) so one worker
        // cannot absorb a viral key, and its cached answers get
        // pinned against eviction.
        let mut hot = false;
        if let (Some(policy), Some(tel)) = (&self.admission, &entry.telemetry) {
            let now = self.started.elapsed().as_nanos() as u64;
            tel.arrivals.lock().record(now);
            if let Some(k) = req.key.as_deref() {
                let mut sketch = tel.sketch.lock();
                sketch.record(k);
                if sketch.total() >= SKETCH_DECAY_EVERY {
                    sketch.halve();
                }
                hot = sketch.total() >= policy.min_samples
                    && sketch.is_heavy(k, policy.hot_key_fraction);
                drop(sketch);
                if hot {
                    self.stats.hot_keys.fetch_add(1, Ordering::Relaxed);
                    entry.stats.hot_keys.fetch_add(1, Ordering::Relaxed);
                    if let Ok(table) = rows_to_table(&req.rows) {
                        let _ = entry.servable.pin_hot_rows(&table);
                    }
                }
            }
        }

        let key = if hot { None } else { req.key.clone() };
        // Shadow mirrors route over their *local* shards only (a
        // remote mirror would stall admission on a network round
        // trip); an all-remote shadow drops the copy.
        let shadow_jobs: Vec<(usize, RoutedJob)> = group
            .shadows
            .iter()
            .filter(|shadow| shadow.local_shards > 0)
            .map(|shadow| {
                let shard = pick_shard(shadow, key.as_deref(), shadow.local_shards, false);
                record_route(shadow, shard, &[], &req);
                (
                    shadow.assignment[shard].load(Ordering::Relaxed),
                    RoutedJob {
                        req: req.clone(),
                        entry: Arc::clone(shadow),
                        reply: None,
                        degraded: false,
                    },
                )
            })
            .collect();

        // Forwarded frames stay on local shards (the forwarding-loop
        // guard); plain frames route uniformly over local shards plus
        // the remote slots currently admitting work. The slot list is
        // snapshotted once per request, so a concurrent drain or add
        // rebuilds the key-hash domain atomically *between* requests,
        // never inside one — and every forward below works on `Arc`s
        // from this snapshot, immune to topology mutation.
        let remote_active: Vec<Arc<RemoteShard>> = if req.forwarded {
            Vec::new()
        } else {
            entry.remote.active()
        };
        let domain = entry.local_shards + remote_active.len();
        if domain == 0 {
            self.stats.route_errors.fetch_add(1, Ordering::Relaxed);
            let why = if req.forwarded {
                "no local shards to serve a forwarded frame"
            } else {
                "no shards admitting new requests"
            };
            return Ok(Admitted::Immediate(Response::failure(
                req.id,
                format!("endpoint `{}` has {why}", entry.name),
            )));
        }
        let shard = pick_shard(&entry, key.as_deref(), domain, req.forwarded);

        // ---- degrade-then-shed decision ----------------------------
        // Locally-routed requests pass the admission policy before
        // anything is enqueued: the degrade band swaps in the
        // endpoint's cheaper lowering, the shed band answers with an
        // explicit Overloaded marker and runs nothing. Remote-routed
        // requests are judged by the remote node's own policy.
        let mut degraded = false;
        if shard < entry.local_shards {
            let routed_worker = entry.assignment[shard].load(Ordering::Relaxed);
            match self.admission_decision(&entry, routed_worker) {
                AdmissionDecision::Accept => {}
                AdmissionDecision::Degrade => {
                    // Endpoints without a degraded lowering stay on
                    // the full path until the shed threshold.
                    if entry.can_degrade() {
                        degraded = true;
                        self.stats.degraded.fetch_add(1, Ordering::Relaxed);
                        entry.stats.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                }
                AdmissionDecision::Shed => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    entry.stats.shed.fetch_add(1, Ordering::Relaxed);
                    // Shed requests are not routed (no row counters)
                    // and not mirrored: shadows exist to validate
                    // serving, and nothing was served.
                    let resp = Response::shed(req.id, &entry.name, entry.version);
                    return Ok(Admitted::Immediate(resp));
                }
            }
        }

        record_route(&entry, shard, &remote_active, &req);
        self.stats
            .rows
            .fetch_add(req.rows.len() as u64, Ordering::Relaxed);

        let worker = if shard < entry.local_shards {
            entry.assignment[shard].load(Ordering::Relaxed)
        } else {
            match self.forward_remote(&entry, shard, &remote_active, &req) {
                RemoteOutcome::Served(response) => {
                    // The remote node already executed this request;
                    // its answer must reach the caller even when the
                    // gate closed mid-round-trip, so the (best-effort
                    // anyway) shadow mirrors cannot fail it.
                    self.send_shadows(shadow_jobs);
                    self.maybe_rebalance();
                    return Ok(Admitted::Immediate(response));
                }
                RemoteOutcome::AllFailed if entry.local_shards == 0 => {
                    self.send_shadows(shadow_jobs);
                    return Ok(Admitted::Immediate(Response::failure(
                        req.id,
                        format!(
                            "endpoint `{}`: every remote shard's transport failed",
                            entry.name
                        ),
                    )));
                }
                RemoteOutcome::AllFailed => {
                    // Fail over onto the local shards, round-robin.
                    entry.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    let fallback =
                        entry.next_failover.fetch_add(1, Ordering::Relaxed) % entry.local_shards;
                    entry.assignment[fallback].load(Ordering::Relaxed)
                }
            }
        };

        self.send_shadows(shadow_jobs);
        let (reply_tx, reply_rx) = bounded(1);
        let mut primary = RoutedJob {
            req,
            entry,
            reply: Some(reply_tx),
            degraded,
        };
        loop {
            let gate = self.gate.lock();
            if gate.closed {
                return Err(ServeError::Disconnected);
            }
            // Sends happen only under the gate lock with the gate
            // open, so no job can land behind a shutdown sentinel —
            // but a *full* target queue releases the lock and retries,
            // so one slow endpoint cannot stall admissions to every
            // other endpoint. Under sustained saturation the retry is
            // a sleep-poll with no FIFO fairness among blocked
            // senders; that is the price of not holding the global
            // gate while a queue is full.
            match gate.senders[worker].try_send(Job::Request(primary)) {
                Ok(()) => break,
                Err(crossbeam::channel::TrySendError::Full(Job::Request(job))) => {
                    primary = job;
                    drop(gate);
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                Err(_) => return Err(ServeError::Disconnected),
            }
        }
        self.maybe_rebalance();
        Ok(Admitted::Pending(reply_rx))
    }

    /// Enqueue shadow-mirror copies, best-effort: a full shadow
    /// queue — or a gate that closed while the primary was in
    /// flight — drops the copy rather than failing or stalling the
    /// primary.
    fn send_shadows(&self, shadow_jobs: Vec<(usize, RoutedJob)>) {
        if shadow_jobs.is_empty() {
            return;
        }
        let gate = self.gate.lock();
        if gate.closed {
            return;
        }
        for (w, job) in shadow_jobs {
            let _ = gate.senders[w].try_send(Job::Request(job));
        }
    }

    /// Forward a request to remote shard `shard` of `entry`,
    /// failing over across the endpoint's other active remote slots
    /// when the routed one's transport errors. Forward latency lands
    /// on the slot's transport counter; wire bytes and peak in-flight
    /// depth land on both stats levels.
    fn forward_remote(
        &self,
        entry: &Endpoint,
        shard: usize,
        slots: &[Arc<RemoteShard>],
        req: &Request,
    ) -> RemoteOutcome {
        let depth = self.remote_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats
            .remote_max_in_flight
            .fetch_max(depth as u64, Ordering::Relaxed);
        let entry_depth = entry.remote_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        entry
            .stats
            .remote_max_in_flight
            .fetch_max(entry_depth as u64, Ordering::Relaxed);
        let outcome = self.forward_remote_inner(entry, shard, slots, req);
        entry.remote_in_flight.fetch_sub(1, Ordering::Relaxed);
        self.remote_in_flight.fetch_sub(1, Ordering::Relaxed);
        outcome
    }

    fn forward_remote_inner(
        &self,
        entry: &Endpoint,
        shard: usize,
        slots: &[Arc<RemoteShard>],
        req: &Request,
    ) -> RemoteOutcome {
        let frame = Request {
            id: req.id,
            rows: req.rows.clone(),
            endpoint: Some(entry.name.clone()),
            version: Some(entry.version),
            key: req.key.clone(),
            forwarded: true,
            control: None,
        };
        let n_remote = slots.len();
        let first = shard - entry.local_shards;
        for i in 0..n_remote {
            let idx = (first + i) % n_remote;
            let slot = &slots[idx];
            if i > 0 {
                // Trying a shard other than the routed one is a
                // fail-over re-route.
                entry.stats.failovers.fetch_add(1, Ordering::Relaxed);
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let start = std::time::Instant::now();
            // The slot gauge brackets the transport call so
            // `drain_shard` knows when the slot has gone quiet.
            slot.in_flight.fetch_add(1, Ordering::SeqCst);
            let forwarded = slot.transport.forward_request(&frame);
            slot.in_flight.fetch_sub(1, Ordering::SeqCst);
            match forwarded {
                Ok(reply) => {
                    let nanos = start.elapsed().as_nanos() as u64;
                    // A shed (Overloaded) answer measured no
                    // prediction work — mirroring the counters-probe
                    // exclusion, it must not skew per-shard transport
                    // latency.
                    if !reply.response.overloaded {
                        slot.transport_nanos.fetch_add(nanos, Ordering::Relaxed);
                    }
                    self.stats.remote_forwards.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .remote_bytes_sent
                        .fetch_add(reply.bytes_sent, Ordering::Relaxed);
                    self.stats
                        .remote_bytes_received
                        .fetch_add(reply.bytes_received, Ordering::Relaxed);
                    entry
                        .stats
                        .remote_bytes_sent
                        .fetch_add(reply.bytes_sent, Ordering::Relaxed);
                    entry
                        .stats
                        .remote_bytes_received
                        .fetch_add(reply.bytes_received, Ordering::Relaxed);
                    return RemoteOutcome::Served(reply.response);
                }
                // A codec failure is not a connectivity failure: the
                // peer may well have executed the request, so failing
                // over would risk double-execution — report instead.
                Err(ServeError::Codec(e)) => {
                    entry.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                    self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                    return RemoteOutcome::Served(Response::failure(
                        req.id,
                        format!("forwarding frame codec failure: {e}"),
                    ));
                }
                Err(_) => {
                    entry.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                    self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        RemoteOutcome::AllFailed
    }

    fn maybe_rebalance(&self) {
        if !matches!(self.scheduler, SchedulerPolicy::EscalationAware { .. }) {
            return;
        }
        let n = self.admitted.fetch_add(1, Ordering::Relaxed) + 1;
        if self.rebalance_every > 0 && n.is_multiple_of(self.rebalance_every) {
            self.rebalance();
        }
    }

    /// Judge one locally-routed request against the admission policy:
    /// estimate its p99 latency as the endpoint's observed service-time
    /// p99 scaled by the routed worker's queue depth (every queued
    /// request is served before this one), and compare against the
    /// SLO's degrade and shed bands. Accepts everything until
    /// [`AdmissionPolicy::min_samples`] service times are observed.
    fn admission_decision(&self, entry: &Endpoint, worker: usize) -> AdmissionDecision {
        let Some(policy) = &self.admission else {
            return AdmissionDecision::Accept;
        };
        let Some(tel) = &entry.telemetry else {
            return AdmissionDecision::Accept;
        };
        let (count, p99) = {
            let service = tel.service.lock();
            (service.count(), service.p99())
        };
        if count < policy.min_samples {
            return AdmissionDecision::Accept;
        }
        let Some(p99) = p99 else {
            return AdmissionDecision::Accept;
        };
        let depth = self.queue_probes[worker].len() as u64;
        let estimate = p99.saturating_mul(depth + 1);
        if estimate as f64 > policy.slo_p99_nanos as f64 * policy.shed_factor {
            AdmissionDecision::Shed
        } else if estimate > policy.slo_p99_nanos {
            AdmissionDecision::Degrade
        } else {
            AdmissionDecision::Accept
        }
    }
}

/// What forwarding a request to an endpoint's remote shards produced.
enum RemoteOutcome {
    /// A remote shard answered: the decoded response to relay.
    Served(Response),
    /// Every remote shard's transport failed; the caller should fail
    /// over to a local shard (or report total failure).
    AllFailed,
}

/// Pick a shard within `domain` (the first `domain` shards of
/// `entry`). Keyed requests hash to a sticky shard; unkeyed requests
/// spread round-robin (preserving the old shared-queue load balancing
/// for legacy clients, whose hot identical requests must not all pile
/// onto one worker). Forwarded frames advance their own cursor: one
/// cursor taken modulo two different domains would skew both
/// rotations when plain and forwarded traffic mix.
fn pick_shard(entry: &Endpoint, key: Option<&str>, domain: usize, forwarded: bool) -> usize {
    let cursor = if forwarded {
        &entry.next_forwarded
    } else {
        &entry.next_shard
    };
    match key {
        Some(k) => shard_for_key(k, domain),
        None => cursor.fetch_add(1, Ordering::Relaxed) % domain,
    }
}

/// Record per-endpoint request/rows/shard counters for one routed
/// request. Remote routes land on the slot picked from this request's
/// routing snapshot, so the counter follows the slot through topology
/// changes.
fn record_route(entry: &Endpoint, shard: usize, remote: &[Arc<RemoteShard>], req: &Request) {
    entry.stats.requests.fetch_add(1, Ordering::Relaxed);
    entry
        .stats
        .rows
        .fetch_add(req.rows.len() as u64, Ordering::Relaxed);
    if shard < entry.local_shards {
        entry.stats.shard_requests[shard].fetch_add(1, Ordering::Relaxed);
    } else {
        remote[shard - entry.local_shards]
            .requests
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Empty success response acknowledging a lifecycle control frame.
fn control_ack(id: u64) -> Response {
    Response {
        id,
        scores: Vec::new(),
        error: None,
        endpoint: None,
        version: None,
        counters: None,
        degraded: false,
        overloaded: false,
    }
}

// ---- worker-side serving -------------------------------------------

/// Build a table from wire rows; all rows must share the first row's
/// schema.
pub(crate) fn rows_to_table(rows: &[WireRow]) -> Result<Table, ServeError> {
    rows_to_table_refs(&rows.iter().collect::<Vec<_>>())
}

/// Like [`rows_to_table`] but over borrowed rows, so coalesced batches
/// can merge rows from several requests without cloning them.
fn rows_to_table_refs(rows: &[&WireRow]) -> Result<Table, ServeError> {
    let Some(first) = rows.first() else {
        return Ok(Table::new());
    };
    let mut table = Table::new();
    for (name, proto) in first.iter() {
        let dt = proto.data_type();
        let mut col = Column::empty(dt).ok_or_else(|| ServeError::BadRequest {
            reason: format!("column `{name}` has null prototype value"),
        })?;
        for row in rows {
            let v = row
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| ServeError::BadRequest {
                    reason: format!("row missing column `{name}`"),
                })?;
            col.push(v).map_err(|e| ServeError::BadRequest {
                reason: format!("column `{name}`: {e}"),
            })?;
        }
        table
            .add_column(name.clone(), col)
            .map_err(|e| ServeError::BadRequest {
                reason: e.to_string(),
            })?;
    }
    Ok(table)
}

/// The (name, type) schema of a request, taken from its first row;
/// requests merge into one model batch only when this — and the
/// target endpoint — match exactly.
type SchemaKey<'a> = Vec<(&'a str, DataType)>;

fn request_schema(req: &Request) -> SchemaKey<'_> {
    req.rows.first().map_or_else(Vec::new, |row| {
        row.iter()
            .map(|(n, v)| (n.as_str(), v.data_type()))
            .collect()
    })
}

/// Send one response back to the waiting caller as a decoded struct;
/// the wire boundary (JSON or binary v2) encodes it only where the
/// bytes actually leave the process. Shadow jobs (no reply channel)
/// drop the response.
fn respond(job: &RoutedJob, resp: Response) {
    let Some(reply) = &job.reply else { return };
    let _ = reply.send(resp);
}

/// Feed one completed local prediction's wall time into the
/// endpoint's service-time histogram (no-op without admission
/// telemetry), halving at [`SERVICE_HISTORY_LIMIT`] so quantiles
/// track the recent regime.
fn record_service(entry: &Endpoint, nanos: u64) {
    if let Some(tel) = &entry.telemetry {
        let mut service = tel.service.lock();
        service.record(nanos);
        if service.count() >= SERVICE_HISTORY_LIMIT {
            service.halve();
        }
    }
}

/// Serve one already-decoded request individually (the per-request
/// dispatch path, also the fallback when a coalesced batch fails).
fn handle_one(job: &RoutedJob, stats: &ServerStats) -> Response {
    let entry = &job.entry;
    let req = &job.req;
    let table = match rows_to_table(&req.rows) {
        Ok(t) => t,
        Err(e) => return endpoint_failure(entry, req.id, e.to_string()),
    };
    let started = Instant::now();
    match entry.active_servable(job.degraded).predict_table(&table) {
        Ok(scores) => {
            record_service(entry, started.elapsed().as_nanos() as u64);
            let n = req.rows.len() as u64;
            stats.max_batch_rows.fetch_max(n, Ordering::Relaxed);
            entry.stats.max_batch_rows.fetch_max(n, Ordering::Relaxed);
            Response {
                id: req.id,
                scores,
                error: None,
                endpoint: Some(entry.name.clone()),
                version: Some(entry.version),
                counters: None,
                degraded: job.degraded,
                overloaded: false,
            }
        }
        Err(e) => endpoint_failure(entry, req.id, e),
    }
}

fn endpoint_failure(entry: &Endpoint, id: u64, message: String) -> Response {
    Response {
        id,
        scores: Vec::new(),
        error: Some(message),
        endpoint: Some(entry.name.clone()),
        version: Some(entry.version),
        counters: None,
        degraded: false,
        overloaded: false,
    }
}

/// Serve a group of same-endpoint, same-schema requests as one merged
/// model batch, scattering scores back per request; falls back to
/// per-request dispatch when the merge or the batched prediction
/// fails, so one bad request cannot poison its groupmates.
fn serve_group(group: &[&RoutedJob], stats: &ServerStats) {
    // A lone request gains nothing from the merge path; dispatch it
    // directly so a failing prediction is not pointlessly retried.
    if let [job] = group {
        respond(job, handle_one(job, stats));
        return;
    }
    let entry = &group[0].entry;
    let merged: Vec<&WireRow> = group.iter().flat_map(|j| j.req.rows.iter()).collect();
    let total = merged.len();
    // Grouping keys on the degrade marker, so the whole group shares
    // the first job's servable choice.
    let degraded = group[0].degraded;
    let started = Instant::now();
    let batched = rows_to_table_refs(&merged)
        .map_err(|e| e.to_string())
        .and_then(|table| entry.active_servable(degraded).predict_table(&table))
        .ok()
        .filter(|scores| scores.len() == total);
    match batched {
        Some(scores) => {
            // Every member experienced the batch's service time.
            let nanos = started.elapsed().as_nanos() as u64;
            for _ in 0..group.len() {
                record_service(entry, nanos);
            }
            stats
                .max_batch_rows
                .fetch_max(total as u64, Ordering::Relaxed);
            entry
                .stats
                .max_batch_rows
                .fetch_max(total as u64, Ordering::Relaxed);
            // The early single-request return above guarantees this
            // batch merged >= 2 requests, so all its rows count as
            // coalesced.
            stats
                .coalesced_rows
                .fetch_add(total as u64, Ordering::Relaxed);
            entry
                .stats
                .coalesced_rows
                .fetch_add(total as u64, Ordering::Relaxed);
            let mut offset = 0;
            for job in group {
                let n = job.req.rows.len();
                respond(
                    job,
                    Response {
                        id: job.req.id,
                        scores: scores[offset..offset + n].to_vec(),
                        error: None,
                        endpoint: Some(entry.name.clone()),
                        version: Some(entry.version),
                        counters: None,
                        degraded: job.degraded,
                        overloaded: false,
                    },
                );
                offset += n;
            }
        }
        None => {
            for job in group {
                respond(job, handle_one(job, stats));
            }
        }
    }
}

/// One worker iteration over a drained batch of routed jobs: group by
/// (endpoint, schema), serve each group coalesced (or per-request when
/// coalescing is off).
fn process_batch(jobs: &[RoutedJob], stats: &ServerStats, coalesce: bool) {
    if !coalesce {
        for job in jobs {
            respond(job, handle_one(job, stats));
        }
        return;
    }
    // Group by endpoint identity + degrade marker + schema,
    // preserving arrival order within each group (degraded and full
    // jobs of one endpoint run different servables, so they must not
    // merge).
    type GroupKey<'a> = (*const Endpoint, bool, SchemaKey<'a>);
    let mut groups: Vec<(GroupKey<'_>, Vec<&RoutedJob>)> = Vec::new();
    for job in jobs {
        let key: GroupKey<'_> = (
            Arc::as_ptr(&job.entry),
            job.degraded,
            request_schema(&job.req),
        );
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    for (_, members) in &groups {
        serve_group(members, stats);
    }
}

fn worker_loop(shared: &Shared, wi: usize, rx: &Receiver<Job>) {
    let max_batch = shared.config.max_batch_requests.max(1);
    loop {
        let first = match rx.recv() {
            Ok(Job::Request(job)) => job,
            // The sentinel (or a fully-dropped channel) ends this
            // worker; each worker's queue carries exactly one.
            Ok(Job::Shutdown) | Err(_) => return,
        };
        // Adaptive batching: drain whatever else is queued, stopping
        // at the shutdown sentinel (FIFO guarantees every admitted
        // request precedes it).
        let mut jobs = vec![first];
        let mut shutting_down = false;
        while jobs.len() < max_batch {
            match rx.try_recv() {
                Ok(Job::Request(job)) => jobs.push(job),
                Ok(Job::Shutdown) => {
                    shutting_down = true;
                    break;
                }
                Err(_) => break,
            }
        }
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        shared.stats.worker_batches[wi].fetch_add(1, Ordering::Relaxed);
        process_batch(&jobs, &shared.stats, shared.config.coalesce);
        if shutting_down {
            return;
        }
    }
}

// ---- builder -------------------------------------------------------

struct EndpointSpec {
    name: String,
    version: u32,
    servable: Arc<dyn Servable>,
    degraded: Option<Arc<dyn Servable>>,
    counters: Option<Arc<PlanCounters>>,
    shards: usize,
    transports: Vec<Arc<dyn WorkerTransport>>,
    weight: f64,
    shadow: bool,
}

/// Builder for a [`ServingRuntime`]: register named, versioned,
/// sharded endpoints, then [`build`](RuntimeBuilder::build).
///
/// # Examples
///
/// Two endpoints — one canaried across two versions, one mixing
/// local and remote shards:
///
/// ```
/// use std::sync::Arc;
/// use willump_serve::{Servable, ServerConfig, ServingRuntime};
/// use willump_data::Table;
///
/// struct Constant(f64);
/// impl Servable for Constant {
///     fn predict_table(&self, t: &Table) -> Result<Vec<f64>, String> {
///         Ok(vec![self.0; t.n_rows()])
///     }
/// }
///
/// # fn main() -> Result<(), willump_serve::ServeError> {
/// let mut b = ServingRuntime::builder();
/// b.config(ServerConfig::builder().workers(2).build());
/// b.endpoint("stable", Arc::new(Constant(1.0))).shards(2).weight(9.0);
/// b.endpoint("stable", Arc::new(Constant(2.0))).version(2).weight(1.0);
/// // Remote shards live behind `RemoteRuntimeNode`s; see
/// // `shard_remote` for the TCP form.
/// b.endpoint("experimental", Arc::new(Constant(0.0)));
/// let runtime = b.build()?;
///
/// let client = runtime.client();
/// let rows = vec![vec![("x".to_string(), willump_data::Value::Float(0.0))]];
/// // ~10% of unpinned `stable` traffic reaches version 2.
/// let score = client.predict_endpoint("stable", rows)?[0];
/// assert!(score == 1.0 || score == 2.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub struct RuntimeBuilder {
    config: ServerConfig,
    scheduler: SchedulerPolicy,
    rebalance_every: u64,
    admission: Option<AdmissionPolicy>,
    endpoints: Vec<EndpointSpec>,
    default_endpoint: Option<String>,
    version_policies: Vec<(String, SelectionPolicy, u64)>,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            config: ServerConfig::default(),
            scheduler: SchedulerPolicy::Static,
            rebalance_every: 256,
            admission: None,
            endpoints: Vec::new(),
            default_endpoint: None,
            version_policies: Vec::new(),
        }
    }
}

impl std::fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("config", &self.config)
            .field("scheduler", &self.scheduler)
            .field("endpoints", &self.endpoints.len())
            .finish_non_exhaustive()
    }
}

impl RuntimeBuilder {
    /// A fresh builder with default configuration.
    pub fn new() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Set the worker-pool / batching configuration.
    pub fn config(&mut self, config: ServerConfig) -> &mut RuntimeBuilder {
        self.config = config;
        self
    }

    /// Set the shard -> worker scheduling policy (default
    /// [`SchedulerPolicy::Static`]).
    pub fn scheduler(&mut self, policy: SchedulerPolicy) -> &mut RuntimeBuilder {
        self.scheduler = policy;
        self
    }

    /// Under [`SchedulerPolicy::EscalationAware`], re-read plan
    /// statistics and rebalance assignments every `every` admitted
    /// requests (0 disables automatic rebalancing; default 256).
    /// [`ServingRuntime::rebalance`] always works manually.
    pub fn rebalance_every(&mut self, every: u64) -> &mut RuntimeBuilder {
        self.rebalance_every = every;
        self
    }

    /// Install a statistical [`AdmissionPolicy`]: the runtime keeps
    /// per-endpoint telemetry (arrival rate, service-time quantiles,
    /// queue depth) and degrades — then sheds — requests whose
    /// estimated p99 latency breaches the policy's SLO. Heavy-hitter
    /// routing keys spread round-robin across shards and get their
    /// cache entries pinned. Without a policy (the default), every
    /// request is accepted and no telemetry is recorded.
    pub fn admission(&mut self, policy: AdmissionPolicy) -> &mut RuntimeBuilder {
        self.admission = Some(policy);
        self
    }

    /// Route requests without an explicit endpoint to `name`
    /// (default: the first registered endpoint).
    pub fn default_endpoint(&mut self, name: &str) -> &mut RuntimeBuilder {
        self.default_endpoint = Some(name.to_string());
        self
    }

    /// Route unpinned traffic for endpoint `name` across its versions
    /// with a [`ModelSelector`] bandit instead of the weighted split.
    /// Read the selector back with [`ServingRuntime::version_selector`]
    /// to feed rewards.
    pub fn version_policy(
        &mut self,
        name: &str,
        policy: SelectionPolicy,
        seed: u64,
    ) -> &mut RuntimeBuilder {
        self.version_policies.push((name.to_string(), policy, seed));
        self
    }

    /// Register an endpoint serving `servable` under `name`; chain
    /// [`EndpointBuilder`] calls to set version, shards, and weight.
    pub fn endpoint(&mut self, name: &str, servable: Arc<dyn Servable>) -> EndpointBuilder<'_> {
        self.endpoints.push(EndpointSpec {
            name: name.to_string(),
            version: 1,
            servable,
            degraded: None,
            counters: None,
            shards: 1,
            transports: Vec::new(),
            weight: 1.0,
            shadow: false,
        });
        EndpointBuilder {
            spec: self.endpoints.last_mut().expect("just pushed"),
        }
    }

    /// Register a [`willump::ServingPlan`] endpoint, automatically
    /// attaching its [`PlanCounters`] so the escalation-aware
    /// scheduler can read the plan's statistics — and, when the plan
    /// [`can_degrade`](willump::ServingPlan::can_degrade), its
    /// [`degraded`](willump::ServingPlan::degraded) lowering so
    /// admission control can degrade before shedding.
    pub fn plan(&mut self, name: &str, plan: willump::ServingPlan) -> EndpointBuilder<'_> {
        let counters = plan.counters_handle();
        let degraded = plan.degraded().map(|p| Arc::new(p) as Arc<dyn Servable>);
        let mut eb = self.endpoint(name, Arc::new(plan)).counters(counters);
        if let Some(d) = degraded {
            eb = eb.degraded_servable(d);
        }
        eb
    }

    /// Build and start the runtime.
    ///
    /// # Errors
    /// Returns [`ServeError::BadRequest`] when no endpoints are
    /// registered, a (name, version) pair repeats, a weight is
    /// invalid, a version policy names an unknown endpoint, or the
    /// default endpoint does not exist.
    pub fn build(self) -> Result<ServingRuntime, ServeError> {
        let bad = |reason: String| ServeError::BadRequest { reason };
        if self.endpoints.is_empty() {
            return Err(bad("a serving runtime needs at least one endpoint".into()));
        }
        let n_workers = self.config.workers.max(1);
        let with_admission = self.admission.is_some();

        // Assemble groups in registration order.
        let mut groups: Vec<Group> = Vec::new();
        for spec in self.endpoints {
            let weight_ok = spec.weight.is_finite() && spec.weight > 0.0;
            if !weight_ok && !spec.shadow {
                return Err(bad(format!(
                    "endpoint `{}` v{} has non-positive weight {}",
                    spec.name, spec.version, spec.weight
                )));
            }
            // Remote shards allow an all-remote endpoint (0 local
            // shards); without them at least one local shard exists.
            let local_shards = if spec.transports.is_empty() {
                spec.shards.max(1)
            } else {
                spec.shards
            };
            let remote = Arc::new(RemoteTopology {
                slots: RwLock::new(
                    spec.transports
                        .into_iter()
                        .map(|t| Arc::new(RemoteShard::new(t)))
                        .collect(),
                ),
            });
            let entry = Arc::new(Endpoint {
                name: spec.name.clone(),
                version: spec.version,
                servable: spec.servable,
                degraded_servable: spec.degraded,
                telemetry: with_admission.then(Telemetry::new),
                counters: spec.counters,
                local_shards,
                remote: Arc::clone(&remote),
                weight: spec.weight,
                shadow: spec.shadow,
                assignment: (0..local_shards).map(|_| AtomicUsize::new(0)).collect(),
                next_shard: AtomicUsize::new(0),
                next_forwarded: AtomicUsize::new(0),
                next_failover: AtomicUsize::new(0),
                remote_in_flight: AtomicUsize::new(0),
                stats: EndpointStats::new(local_shards, remote),
            });
            let group = match groups.iter_mut().find(|g| g.name == spec.name) {
                Some(g) => g,
                None => {
                    groups.push(Group {
                        name: spec.name.clone(),
                        primaries: Vec::new(),
                        shadows: Vec::new(),
                        router: Router::Single,
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            if group
                .primaries
                .iter()
                .chain(group.shadows.iter())
                .any(|e| e.version == entry.version)
            {
                return Err(bad(format!(
                    "endpoint `{}` v{} registered twice",
                    entry.name, entry.version
                )));
            }
            if entry.shadow {
                group.shadows.push(entry);
            } else {
                group.primaries.push(entry);
            }
        }
        for g in &groups {
            if g.primaries.is_empty() {
                return Err(bad(format!(
                    "endpoint `{}` has only shadow versions",
                    g.name
                )));
            }
        }

        // Version routers: explicit bandit policies first, weighted
        // splits for any remaining multi-version group.
        for (name, policy, seed) in self.version_policies {
            let group = groups
                .iter_mut()
                .find(|g| g.name == name)
                .ok_or_else(|| bad(format!("version policy for unknown endpoint `{name}`")))?;
            let arms = group
                .primaries
                .iter()
                .map(|e| {
                    (
                        format!("{}@v{}", e.name, e.version),
                        Arc::clone(&e.servable),
                    )
                })
                .collect();
            group.router = Router::Bandit(Arc::new(ModelSelector::new(arms, policy, seed)?));
        }
        for g in &mut groups {
            if g.primaries.len() > 1 && matches!(g.router, Router::Single) {
                g.router = Router::Weighted(Mutex::new(Wrr {
                    current: vec![0.0; g.primaries.len()],
                }));
            }
        }

        let default_group = match &self.default_endpoint {
            None => 0,
            Some(name) => groups
                .iter()
                .position(|g| g.name == *name)
                .ok_or_else(|| bad(format!("default endpoint `{name}` is not registered")))?,
        };

        let mut senders = Vec::with_capacity(n_workers);
        let mut receivers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let (tx, rx) = bounded(self.config.queue_capacity.max(1));
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            groups,
            default_group,
            config: self.config,
            scheduler: self.scheduler,
            rebalance_every: self.rebalance_every,
            admission: self.admission,
            started: Instant::now(),
            queue_probes: senders.clone(),
            admitted: AtomicU64::new(0),
            gate: Mutex::new(GateState {
                senders,
                closed: false,
            }),
            remote_in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stats: ServerStats::new(n_workers),
            n_workers,
        });
        // Initial placement before any request can be admitted.
        shared.rebalance();
        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(wi, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, wi, &rx))
            })
            .collect();
        Ok(ServingRuntime { shared, workers })
    }
}

/// Chained per-endpoint configuration (returned by
/// [`RuntimeBuilder::endpoint`] / [`RuntimeBuilder::plan`]).
#[derive(Debug)]
pub struct EndpointBuilder<'b> {
    spec: &'b mut EndpointSpec,
}

impl std::fmt::Debug for EndpointSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointSpec")
            .field("name", &self.name)
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

impl EndpointBuilder<'_> {
    /// Set the endpoint version (default 1).
    pub fn version(self, version: u32) -> Self {
        self.spec.version = version;
        self
    }

    /// Set the **local** shard count (default 1). Values below 1 are
    /// treated as 1, unless the endpoint also has remote shards
    /// ([`shard_remote`](Self::shard_remote)), in which case 0 local
    /// shards is a valid all-remote configuration.
    pub fn shards(self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Append a **remote shard** served by the
    /// [`crate::RemoteRuntimeNode`] at `addr` (`"host:port"`), via a
    /// TCP [`RemoteWorker`]. Remote shards share the endpoint's
    /// key-hash routing domain with its local shards, so a routing
    /// key can stick to a remote shard; their forward latency and
    /// failure counts land in the endpoint's [`EndpointStats`], and a
    /// failed transport fails over to surviving shards.
    ///
    /// The connection is lazy: nothing is dialed until the first
    /// request routes there.
    pub fn shard_remote(self, addr: &str) -> Self {
        self.shard_transport(Arc::new(RemoteWorker::new(addr)))
    }

    /// Append a remote shard served by an arbitrary
    /// [`WorkerTransport`] (e.g. an [`crate::InProcessWorker`]
    /// forwarding to another runtime in this process).
    pub fn shard_transport(self, transport: Arc<dyn WorkerTransport>) -> Self {
        self.spec.transports.push(transport);
        self
    }

    /// Set the traffic weight among unpinned requests to this
    /// endpoint name (default 1.0; must be finite and positive).
    pub fn weight(self, weight: f64) -> Self {
        self.spec.weight = weight;
        self
    }

    /// Mark this version as a shadow: it receives a mirrored copy of
    /// every request admitted to its endpoint name, and its responses
    /// are discarded. Shadows serve no primary traffic and cannot be
    /// pinned by [`crate::Request::version`].
    pub fn shadow(self) -> Self {
        self.spec.shadow = true;
        self
    }

    /// Attach [`PlanCounters`] the escalation-aware scheduler should
    /// read for this endpoint ([`RuntimeBuilder::plan`] does this
    /// automatically).
    pub fn counters(self, counters: Arc<PlanCounters>) -> Self {
        self.spec.counters = Some(counters);
        self
    }

    /// Attach a cheaper fallback servable that admission control
    /// serves instead of the primary while the estimated p99 sits in
    /// the degrade band ([`RuntimeBuilder::plan`] attaches the plan's
    /// [`degraded`](willump::ServingPlan::degraded) lowering
    /// automatically). Endpoints without one skip straight from full
    /// service to shedding.
    pub fn degraded_servable(self, servable: Arc<dyn Servable>) -> Self {
        self.spec.degraded = Some(servable);
        self
    }
}

// ---- the runtime ---------------------------------------------------

/// A multi-endpoint model serving runtime.
///
/// Requests cross a real serialization boundary (JSON in, JSON out),
/// are routed by endpoint name, version, and shard key at admission,
/// and are handled by [`ServerConfig::workers`] executor threads with
/// adaptive, coalescing batching (per endpoint + schema). Shards may
/// also be **remote** — served by a [`crate::RemoteRuntimeNode`] in
/// another process via a [`WorkerTransport`] — behind the same
/// admission path.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use willump_serve::{Servable, ServingRuntime};
/// use willump_data::Table;
///
/// struct Count;
/// impl Servable for Count {
///     fn predict_table(&self, t: &Table) -> Result<Vec<f64>, String> {
///         Ok((0..t.n_rows()).map(|i| i as f64).collect())
///     }
/// }
///
/// # fn main() -> Result<(), willump_serve::ServeError> {
/// let mut b = ServingRuntime::builder();
/// b.endpoint("count", Arc::new(Count)).shards(2);
/// let runtime = b.build()?;
///
/// let client = runtime.client();
/// let row = vec![("x".to_string(), willump_data::Value::Int(1))];
/// // Equal keys stick to one shard; stats record the routing.
/// client.predict_keyed("count", "user-7", vec![row.clone()])?;
/// client.predict_keyed("count", "user-7", vec![row])?;
/// let ep = runtime.endpoint("count", 1).expect("registered");
/// let per_shard = ep.stats().shard_requests();
/// assert_eq!(per_shard.iter().sum::<u64>(), 2);
/// assert_eq!(per_shard.iter().filter(|&&c| c > 0).count(), 1);
/// # Ok(())
/// # }
/// ```
///
/// # Shutdown semantics
///
/// [`shutdown`](ServingRuntime::shutdown) (idempotent, also invoked by
/// `Drop`) closes the admission gate, enqueues one sentinel per
/// worker, and joins the workers. Requests admitted before the gate
/// closed are all answered; client calls issued afterwards return
/// [`ServeError::Disconnected`]. Live clients never prevent the
/// runtime from shutting down.
pub struct ServingRuntime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServingRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingRuntime")
            .field("endpoints", &self.endpoints())
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServingRuntime {
    /// A fresh [`RuntimeBuilder`].
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Global server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Number of executor threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The name unaddressed requests route to.
    pub fn default_endpoint(&self) -> &str {
        &self.shared.groups[self.shared.default_group].name
    }

    /// Every registered endpoint (primaries then shadows per group,
    /// groups in registration order).
    pub fn endpoints(&self) -> Vec<Arc<Endpoint>> {
        self.shared
            .groups
            .iter()
            .flat_map(|g| g.primaries.iter().chain(g.shadows.iter()))
            .map(Arc::clone)
            .collect()
    }

    /// Every endpoint's counters merged into one workload-wide
    /// [`EndpointStatsSnapshot`] (shadows included — their traffic is
    /// real work even though their responses are discarded). The
    /// additive fields of the result reconcile with the global
    /// [`stats`](Self::stats) view; high-water marks take the max.
    pub fn summed_endpoint_stats(&self) -> EndpointStatsSnapshot {
        self.endpoints()
            .iter()
            .map(|e| e.stats().snapshot())
            .fold(EndpointStatsSnapshot::default(), |acc, s| acc.merged(s))
    }

    /// Look up one primary endpoint by name and version.
    pub fn endpoint(&self, name: &str, version: u32) -> Option<Arc<Endpoint>> {
        self.shared
            .groups
            .iter()
            .find(|g| g.name == name)?
            .primaries
            .iter()
            .find(|e| e.version == version)
            .map(Arc::clone)
    }

    /// The bandit selector routing unpinned traffic for `name`, when
    /// a [`RuntimeBuilder::version_policy`] was installed. Arms are
    /// the endpoint's primary versions in registration order; feed
    /// rewards through [`ModelSelector::reward`].
    pub fn version_selector(&self, name: &str) -> Option<Arc<ModelSelector>> {
        let group = self.shared.groups.iter().find(|g| g.name == name)?;
        match &group.router {
            Router::Bandit(sel) => Some(Arc::clone(sel)),
            _ => None,
        }
    }

    /// Recompute every endpoint's shard -> worker assignment from the
    /// scheduler policy and the plans' current [`PlanCounters`].
    /// Under [`SchedulerPolicy::EscalationAware`] this also runs
    /// automatically every [`RuntimeBuilder::rebalance_every`]
    /// admitted requests.
    pub fn rebalance(&self) {
        self.shared.rebalance();
    }

    /// Poll every remote shard for its node's plan counters
    /// ([`crate::ControlRequest::Counters`] probes) and cache the
    /// snapshots, so [`Endpoint::escalation_rate`] — and therefore
    /// the escalation-aware scheduler — sees statistics that
    /// accumulated in other processes. Returns how many shards
    /// answered.
    ///
    /// Best-effort and synchronous: each probe is one transport round
    /// trip, and unreachable shards are skipped (their last snapshot
    /// stays). Automatic [`rebalance`](Self::rebalance) does *not*
    /// poll remotes — call this first (e.g. from a periodic
    /// maintenance thread) when remote counters should influence
    /// placement.
    pub fn refresh_remote_counters(&self) -> usize {
        let mut updated = 0;
        for e in self.endpoints() {
            for slot in e.remote_slots() {
                if let Ok(snap) = slot.transport.probe_counters(&e.name, e.version) {
                    *slot.counters.lock() = snap;
                    updated += 1;
                }
            }
        }
        updated
    }

    /// Whether this runtime is draining (a [`ControlRequest::Drain`]
    /// or [`ControlRequest::Leave`] frame arrived and no
    /// [`ControlRequest::Join`] has cleared it): new predictions are
    /// refused with an [`Response::overloaded`] marker while
    /// in-flight work and control frames keep completing.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// Attach a new remote shard to a running endpoint. The shard
    /// joins the key-hash routing domain with the next admitted
    /// request; no restart, no queue flush. Returns the new shard
    /// index (`local_shards()..` at the instant of the splice).
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when no primary endpoint matches
    /// `name`/`version`.
    pub fn add_remote_shard(
        &self,
        name: &str,
        version: u32,
        transport: Arc<dyn WorkerTransport>,
    ) -> Result<usize, ServeError> {
        let entry = self
            .endpoint(name, version)
            .ok_or_else(|| ServeError::BadRequest {
                reason: format!("no endpoint `{name}` v{version} to add a shard to"),
            })?;
        let slot = entry.remote.push(Arc::new(RemoteShard::new(transport)));
        Ok(entry.local_shards + slot)
    }

    /// Detach remote shard `shard` (a `local_shards()..shards()`
    /// index) of `name`/`version` immediately. Requests that already
    /// routed to the slot finish on their own `Arc` handles — nothing
    /// in flight is dropped — but no new request will pick it. Use
    /// [`drain_shard`](Self::drain_shard) to also wait for in-flight
    /// work before detaching.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when the endpoint or shard index
    /// does not exist, or the index names a local shard.
    pub fn remove_shard(&self, name: &str, version: u32, shard: usize) -> Result<(), ServeError> {
        let (entry, slot) = self.remote_slot(name, version, shard)?;
        slot.draining.store(true, Ordering::SeqCst);
        entry.remote.remove(&slot);
        Ok(())
    }

    /// Drain remote shard `shard` (a `local_shards()..shards()`
    /// index) of `name`/`version`: stop admitting new requests to it
    /// at once, wait until its in-flight forwards complete (up to
    /// `timeout`), then detach it. Zero in-flight loss: every request
    /// that picked the slot holds its own `Arc` and completes
    /// normally.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when the endpoint or shard index
    /// does not exist or the index names a local shard;
    /// [`ServeError::Transport`] when in-flight work did not finish
    /// within `timeout` (the slot stays attached but draining — call
    /// again, or [`remove_shard`](Self::remove_shard) to force).
    pub fn drain_shard(
        &self,
        name: &str,
        version: u32,
        shard: usize,
        timeout: Duration,
    ) -> Result<(), ServeError> {
        let (entry, slot) = self.remote_slot(name, version, shard)?;
        // New routing snapshots exclude the slot from here on.
        slot.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        while slot.in_flight.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return Err(ServeError::Transport(format!(
                    "drain of `{name}` v{version} shard {shard} timed out with {} forwards in flight",
                    slot.in_flight.load(Ordering::SeqCst)
                )));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        entry.remote.remove(&slot);
        Ok(())
    }

    /// Resolve a global remote-shard index to its endpoint and slot.
    fn remote_slot(
        &self,
        name: &str,
        version: u32,
        shard: usize,
    ) -> Result<(Arc<Endpoint>, Arc<RemoteShard>), ServeError> {
        let bad = |reason: String| ServeError::BadRequest { reason };
        let entry = self
            .endpoint(name, version)
            .ok_or_else(|| bad(format!("no endpoint `{name}` v{version}")))?;
        if shard < entry.local_shards {
            return Err(bad(format!(
                "shard {shard} of `{name}` v{version} is local; only remote shards can be drained or removed"
            )));
        }
        let slot = entry
            .remote
            .slots()
            .get(shard - entry.local_shards)
            .cloned()
            .ok_or_else(|| {
                bad(format!(
                    "endpoint `{name}` v{version} has no remote shard {shard}"
                ))
            })?;
        Ok((entry, slot))
    }

    /// The shared core handed to the cluster prober thread (see
    /// `crate::cluster`).
    pub(crate) fn cluster_core(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// A client handle for this runtime.
    pub fn client(&self) -> RuntimeClient {
        RuntimeClient {
            shared: Arc::clone(&self.shared),
            next_id: AtomicU64::new(1),
        }
    }

    /// Shut the runtime down: close the admission gate, signal every
    /// worker, and join them. Idempotent; invoked automatically on
    /// drop. Requests admitted before the call are still answered;
    /// later client calls return [`ServeError::Disconnected`].
    pub fn shutdown(&mut self) {
        {
            let mut gate = self.shared.gate.lock();
            if !gate.closed {
                gate.closed = true;
                for sender in &gate.senders {
                    // send only fails if the worker already exited, in
                    // which case there is nobody left to signal.
                    let _ = sender.send(Job::Shutdown);
                }
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServingRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---- client --------------------------------------------------------

/// A client for a [`ServingRuntime`].
///
/// Clients stay valid across runtime shutdown: once the runtime is
/// shut down (or dropped), calls return [`ServeError::Disconnected`]
/// instead of blocking.
pub struct RuntimeClient {
    shared: Arc<Shared>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for RuntimeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeClient")
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl RuntimeClient {
    fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// A stable identity for the runtime this client talks to (equal
    /// for clients of one runtime, distinct across runtimes). Lets
    /// transports describe which backend they reach, so per-backend
    /// deduplication (e.g. in counter merging) works in-process too.
    #[must_use]
    pub fn runtime_id(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    /// An independent client over the same runtime (fresh request-id
    /// counter). Useful for handing each connection or thread its own
    /// handle when the runtime value itself is out of reach — e.g.
    /// the accept loop of a [`crate::RemoteRuntimeNode`].
    #[must_use]
    pub fn fork(&self) -> RuntimeClient {
        RuntimeClient {
            shared: Arc::clone(&self.shared),
            next_id: AtomicU64::new(1),
        }
    }

    /// Predict through the runtime's default endpoint.
    ///
    /// # Errors
    /// Returns [`ServeError`] on codec failures, a shut-down runtime,
    /// or a predictor error.
    pub fn predict(&self, rows: Vec<WireRow>) -> Result<Vec<f64>, ServeError> {
        self.call(Request::new(self.next_id(), rows))
            .and_then(Self::scores)
    }

    /// Predict through a named endpoint (version chosen by its
    /// router).
    ///
    /// # Errors
    /// Same conditions as [`predict`](RuntimeClient::predict), plus an
    /// unknown endpoint name.
    pub fn predict_endpoint(
        &self,
        endpoint: &str,
        rows: Vec<WireRow>,
    ) -> Result<Vec<f64>, ServeError> {
        self.call(Request {
            endpoint: Some(endpoint.to_string()),
            ..Request::new(self.next_id(), rows)
        })
        .and_then(Self::scores)
    }

    /// Predict through a named endpoint with an explicit shard-routing
    /// key: equal keys always land on the same shard.
    ///
    /// # Errors
    /// Same conditions as
    /// [`predict_endpoint`](RuntimeClient::predict_endpoint).
    pub fn predict_keyed(
        &self,
        endpoint: &str,
        key: &str,
        rows: Vec<WireRow>,
    ) -> Result<Vec<f64>, ServeError> {
        self.call(Request {
            endpoint: Some(endpoint.to_string()),
            key: Some(key.to_string()),
            ..Request::new(self.next_id(), rows)
        })
        .and_then(Self::scores)
    }

    /// Predict through one pinned version of a named endpoint,
    /// bypassing the version router.
    ///
    /// # Errors
    /// Same conditions as
    /// [`predict_endpoint`](RuntimeClient::predict_endpoint), plus an
    /// unknown version.
    pub fn predict_version(
        &self,
        endpoint: &str,
        version: u32,
        rows: Vec<WireRow>,
    ) -> Result<Vec<f64>, ServeError> {
        self.call(Request {
            endpoint: Some(endpoint.to_string()),
            version: Some(version),
            ..Request::new(self.next_id(), rows)
        })
        .and_then(Self::scores)
    }

    /// Send a fully-specified [`Request`] and return the decoded
    /// [`Response`] (including the endpoint/version echo). The
    /// request's `id` is used as given — assign nonzero ids.
    ///
    /// # Errors
    /// Returns [`ServeError`] on codec failures or a shut-down
    /// runtime. A predictor-side failure is *not* an `Err` here; it
    /// arrives as [`Response::error`].
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        let payload = encode_request(&req)?;
        let wire = self.call_raw(payload)?;
        decode_response(&wire)
    }

    /// Send a fully-specified [`Request`] and return the decoded
    /// [`Response`] without ever touching the JSON wire form: the
    /// request struct is routed and answered as structs end to end.
    /// This is the hot path for the binary v2 remote transport, which
    /// decodes frames straight into [`Request`] values.
    ///
    /// # Errors
    /// Returns [`ServeError::Disconnected`] when the runtime has shut
    /// down. A predictor-side failure is *not* an `Err` here; it
    /// arrives as [`Response::error`].
    pub fn call_request(&self, req: Request) -> Result<Response, ServeError> {
        match self.shared.admit_request(req)? {
            Admitted::Immediate(resp) => Ok(resp),
            Admitted::Pending(rx) => rx.recv().map_err(|_| ServeError::Disconnected),
        }
    }

    /// Send a raw wire payload and return the raw wire response,
    /// bypassing client-side encoding (useful for testing the
    /// runtime's handling of malformed or legacy frames).
    ///
    /// Enqueues happen under a shared lock (the same one
    /// [`ServingRuntime::shutdown`] takes), which is what makes the
    /// close/send ordering airtight — but a *full* target queue
    /// releases the lock between retries, so a saturated endpoint
    /// delays only its own callers, not other endpoints' admissions.
    ///
    /// # Errors
    /// Returns [`ServeError::Disconnected`] when the runtime has shut
    /// down.
    pub fn call_raw(&self, payload: String) -> Result<String, ServeError> {
        let resp = match self.shared.admit(&payload)? {
            Admitted::Immediate(resp) => resp,
            Admitted::Pending(rx) => rx.recv().map_err(|_| ServeError::Disconnected)?,
        };
        Ok(encode_response(&resp)
            .unwrap_or_else(|e| error_wire(resp.id, &format!("response encoding failed: {e}"))))
    }

    fn scores(resp: Response) -> Result<Vec<f64>, ServeError> {
        match resp.error {
            Some(err) => Err(ServeError::Predictor(err)),
            None => Ok(resp.scores),
        }
    }
}

/// Build a wire row from a table row (helper for clients and
/// experiments).
///
/// # Errors
/// Returns [`ServeError::BadRequest`] for out-of-range rows.
pub fn table_row_to_wire(table: &Table, r: usize) -> Result<WireRow, ServeError> {
    let values = table.row(r).map_err(|e| ServeError::BadRequest {
        reason: e.to_string(),
    })?;
    Ok(table
        .column_names()
        .into_iter()
        .map(str::to_string)
        .zip(values)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::Value;

    /// A trivial predictor: score = factor * x.
    struct Scaler(f64);
    impl Servable for Scaler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            let col = table
                .column("x")
                .ok_or_else(|| "missing x".to_string())?
                .to_f64_vec()
                .map_err(|e| e.to_string())?;
            Ok(col.into_iter().map(|v| v * self.0).collect())
        }
    }

    fn wire_rows(xs: &[f64]) -> Vec<WireRow> {
        xs.iter()
            .map(|&x| vec![("x".to_string(), Value::Float(x))])
            .collect()
    }

    fn two_endpoint_runtime(workers: usize) -> ServingRuntime {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(workers).build());
        b.endpoint("double", Arc::new(Scaler(2.0))).shards(2);
        b.endpoint("triple", Arc::new(Scaler(3.0))).shards(2);
        b.build().expect("runtime builds")
    }

    #[test]
    fn routes_by_endpoint_name() {
        let rt = two_endpoint_runtime(2);
        let client = rt.client();
        assert_eq!(
            client
                .predict_endpoint("double", wire_rows(&[2.0]))
                .unwrap(),
            vec![4.0]
        );
        assert_eq!(
            client
                .predict_endpoint("triple", wire_rows(&[2.0]))
                .unwrap(),
            vec![6.0]
        );
        // Unaddressed requests go to the first registered endpoint.
        assert_eq!(rt.default_endpoint(), "double");
        assert_eq!(client.predict(wire_rows(&[5.0])).unwrap(), vec![10.0]);
    }

    #[test]
    fn unknown_endpoint_and_version_are_route_errors() {
        let rt = two_endpoint_runtime(1);
        let client = rt.client();
        let err = client
            .predict_endpoint("nonesuch", wire_rows(&[1.0]))
            .unwrap_err();
        assert!(matches!(err, ServeError::Predictor(ref m) if m.contains("unknown endpoint")));
        let err = client
            .predict_version("double", 9, wire_rows(&[1.0]))
            .unwrap_err();
        assert!(matches!(err, ServeError::Predictor(ref m) if m.contains("no version 9")));
        assert_eq!(rt.stats().route_errors(), 2);
        assert_eq!(rt.stats().requests(), 2);
    }

    #[test]
    fn response_echoes_endpoint_and_version() {
        let rt = two_endpoint_runtime(1);
        let client = rt.client();
        let resp = client
            .call(Request {
                endpoint: Some("triple".to_string()),
                ..Request::new(41, wire_rows(&[1.0]))
            })
            .unwrap();
        assert_eq!(resp.id, 41);
        assert_eq!(resp.endpoint.as_deref(), Some("triple"));
        assert_eq!(resp.version, Some(1));
    }

    #[test]
    fn same_key_same_shard() {
        for shards in [1usize, 2, 3, 8] {
            let a = shard_for_key("user-42", shards);
            for _ in 0..10 {
                assert_eq!(shard_for_key("user-42", shards), a);
                assert!(shard_for_key("user-42", shards) < shards.max(1));
            }
        }
        // Different keys spread: over many keys, more than one shard
        // is hit (probabilistic but astronomically safe).
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| shard_for_key(&format!("k{i}"), 8))
            .collect();
        assert!(hit.len() > 1);
    }

    #[test]
    fn keyed_requests_stick_to_one_shard() {
        let rt = two_endpoint_runtime(4);
        let client = rt.client();
        for i in 0..12 {
            client
                .predict_keyed("double", "session-7", wire_rows(&[i as f64]))
                .unwrap();
        }
        let ep = rt.endpoint("double", 1).unwrap();
        let per_shard = ep.stats().shard_requests();
        assert_eq!(per_shard.iter().sum::<u64>(), 12);
        assert_eq!(
            per_shard.iter().filter(|&&c| c > 0).count(),
            1,
            "one key must land on exactly one shard: {per_shard:?}"
        );
    }

    #[test]
    fn weighted_canary_split_is_proportional() {
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(1.0))).weight(3.0);
        b.endpoint("m", Arc::new(Scaler(10.0)))
            .version(2)
            .weight(1.0);
        let rt = b.build().unwrap();
        let client = rt.client();
        for _ in 0..200 {
            client.predict_endpoint("m", wire_rows(&[1.0])).unwrap();
        }
        let v1 = rt.endpoint("m", 1).unwrap().stats().requests();
        let v2 = rt.endpoint("m", 2).unwrap().stats().requests();
        assert_eq!(v1 + v2, 200);
        assert_eq!(v1, 150, "smooth WRR is exactly proportional");
        assert_eq!(v2, 50);
        // Pinning bypasses the router.
        assert_eq!(
            client.predict_version("m", 2, wire_rows(&[2.0])).unwrap(),
            vec![20.0]
        );
    }

    #[test]
    fn bandit_version_policy_routes_and_rewards() {
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(0.0)));
        b.endpoint("m", Arc::new(Scaler(1.0))).version(2);
        b.version_policy("m", SelectionPolicy::EpsilonGreedy { epsilon: 0.1 }, 7);
        let rt = b.build().unwrap();
        let sel = rt.version_selector("m").expect("bandit installed");
        let client = rt.client();
        let mut late_v2 = 0;
        for i in 0..300 {
            let resp = client
                .call(Request {
                    endpoint: Some("m".to_string()),
                    ..Request::new(i + 1, wire_rows(&[1.0]))
                })
                .unwrap();
            let v = resp.version.unwrap();
            let arm = (v - 1) as usize;
            sel.reward(arm, if v == 2 { 0.9 } else { 0.1 });
            if i >= 150 && v == 2 {
                late_v2 += 1;
            }
        }
        assert!(
            late_v2 > 120,
            "bandit should converge to the rewarded version, got {late_v2}/150"
        );
        assert_eq!(sel.arm_stats().iter().map(|a| a.pulls).sum::<u64>(), 300);
    }

    #[test]
    fn shadow_versions_mirror_traffic_without_serving() {
        struct Failing;
        impl Servable for Failing {
            fn predict_table(&self, _t: &Table) -> Result<Vec<f64>, String> {
                Err("shadow failure must stay invisible".to_string())
            }
        }
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(2.0)));
        b.endpoint("m", Arc::new(Failing)).version(2).shadow();
        let rt = b.build().unwrap();
        let client = rt.client();
        for i in 0..10 {
            // Shadow failures never affect the primary answer.
            assert_eq!(
                client
                    .predict_endpoint("m", wire_rows(&[i as f64]))
                    .unwrap(),
                vec![2.0 * i as f64]
            );
        }
        // Both endpoints saw the traffic; only the primary counted
        // globally.
        let eps = rt.endpoints();
        let shadow = eps.iter().find(|e| e.is_shadow()).unwrap();
        assert_eq!(shadow.stats().requests(), 10);
        assert_eq!(rt.endpoint("m", 1).unwrap().stats().requests(), 10);
        assert_eq!(rt.stats().requests(), 10);
    }

    #[test]
    fn builder_rejects_bad_registrations() {
        // No endpoints.
        assert!(ServingRuntime::builder().build().is_err());
        // Duplicate (name, version).
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(1.0)));
        b.endpoint("m", Arc::new(Scaler(2.0)));
        assert!(b.build().is_err());
        // Bad weight.
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(1.0))).weight(0.0);
        assert!(b.build().is_err());
        // Unknown default endpoint.
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(1.0)));
        b.default_endpoint("nope");
        assert!(b.build().is_err());
        // Version policy for unknown endpoint.
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(1.0)));
        b.version_policy("other", SelectionPolicy::Ucb1, 1);
        assert!(b.build().is_err());
        // Shadow-only group.
        let mut b = ServingRuntime::builder();
        b.endpoint("m", Arc::new(Scaler(1.0))).shadow();
        assert!(b.build().is_err());
    }

    #[test]
    fn static_scheduler_spreads_shards_over_workers() {
        let rt = two_endpoint_runtime(4);
        let eps = rt.endpoints();
        let all: Vec<usize> = eps.iter().flat_map(|e| e.assignment()).collect();
        // 2 endpoints x 2 shards round-robin over 4 workers.
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unkeyed_requests_spread_round_robin() {
        let rt = two_endpoint_runtime(4);
        let client = rt.client();
        for i in 0..8 {
            // Identical content every time: a hot unkeyed request must
            // still spread over the shards (old shared-queue behavior),
            // not pile onto one worker.
            let _ = i;
            client
                .predict_endpoint("double", wire_rows(&[7.0]))
                .unwrap();
        }
        let per_shard = rt.endpoint("double", 1).unwrap().stats().shard_requests();
        assert_eq!(per_shard, vec![4, 4]);
    }

    /// A predictor with a controllable service time, for driving the
    /// admission estimator into its degrade/shed bands.
    struct SlowScaler(Duration, f64);
    impl Servable for SlowScaler {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            std::thread::sleep(self.0);
            Scaler(self.1).predict_table(table)
        }
    }

    #[test]
    fn admission_sheds_when_estimated_p99_breaches_slo() {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(1).build());
        b.admission(AdmissionPolicy::with_slo_p99(Duration::from_micros(10)).min_samples(4));
        b.endpoint("slow", Arc::new(SlowScaler(Duration::from_millis(3), 2.0)));
        let rt = b.build().unwrap();
        let client = rt.client();
        // Below `min_samples` observed service times, everything is
        // admitted — the estimator refuses to act on thin data.
        for _ in 0..4 {
            assert_eq!(
                client.predict_endpoint("slow", wire_rows(&[1.0])).unwrap(),
                vec![2.0]
            );
        }
        // With observed p99 around 3 ms against a 10 µs SLO (and no
        // degraded form registered), the next request is shed.
        let resp = client
            .call(Request {
                endpoint: Some("slow".to_string()),
                ..Request::new(99, wire_rows(&[1.0]))
            })
            .unwrap();
        assert!(resp.overloaded, "expected shed, got {resp:?}");
        assert!(resp.scores.is_empty());
        assert!(resp
            .error
            .as_deref()
            .unwrap_or_default()
            .contains("overloaded"));
        assert_eq!(resp.endpoint.as_deref(), Some("slow"));
        assert_eq!(resp.version, Some(1));
        let ep = rt.endpoint("slow", 1).unwrap();
        assert_eq!(rt.stats().shed(), 1);
        assert_eq!(ep.stats().shed(), 1);
        assert!(ep.service_p99_nanos().unwrap() >= 2_000_000);
        // Shed requests count as requests but never as served rows.
        assert_eq!(rt.stats().requests(), 5);
        assert_eq!(rt.stats().rows(), 4);
        // The arrival-rate EWMA reports only completed windows: let
        // the 100 ms bin close, then one more (shed) arrival seals it.
        std::thread::sleep(Duration::from_millis(120));
        let resp = client
            .call(Request {
                endpoint: Some("slow".to_string()),
                ..Request::new(100, wire_rows(&[1.0]))
            })
            .unwrap();
        assert!(resp.overloaded);
        assert!(ep.arrival_rate() > 0.0);
    }

    #[test]
    fn admission_degrades_before_shedding() {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(1).build());
        // An effectively infinite shed factor keeps the overload
        // estimate inside the degrade band.
        b.admission(
            AdmissionPolicy::with_slo_p99(Duration::from_micros(10))
                .shed_factor(1e12)
                .min_samples(4),
        );
        b.endpoint("slow", Arc::new(SlowScaler(Duration::from_millis(3), 2.0)))
            .degraded_servable(Arc::new(Scaler(10.0)));
        let rt = b.build().unwrap();
        assert!(rt.endpoint("slow", 1).unwrap().can_degrade());
        let client = rt.client();
        for _ in 0..4 {
            assert_eq!(
                client.predict_endpoint("slow", wire_rows(&[1.0])).unwrap(),
                vec![2.0]
            );
        }
        // Past the SLO but below the shed line: served by the degraded
        // servable (scale 10), marked `degraded`, never `overloaded`.
        let resp = client
            .call(Request {
                endpoint: Some("slow".to_string()),
                ..Request::new(7, wire_rows(&[1.0]))
            })
            .unwrap();
        assert!(resp.degraded, "expected degraded service, got {resp:?}");
        assert!(!resp.overloaded);
        assert_eq!(resp.scores, vec![10.0]);
        assert_eq!(rt.stats().degraded(), 1);
        assert_eq!(rt.endpoint("slow", 1).unwrap().stats().degraded(), 1);
        assert_eq!(rt.stats().shed(), 0);
    }

    #[test]
    fn degrade_band_without_lowering_serves_full() {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(1).build());
        b.admission(
            AdmissionPolicy::with_slo_p99(Duration::from_micros(10))
                .shed_factor(1e12)
                .min_samples(4),
        );
        // No degraded servable registered: the degrade band must fall
        // back to full service rather than shedding.
        b.endpoint("slow", Arc::new(SlowScaler(Duration::from_millis(3), 2.0)));
        let rt = b.build().unwrap();
        assert!(!rt.endpoint("slow", 1).unwrap().can_degrade());
        let client = rt.client();
        for _ in 0..6 {
            assert_eq!(
                client.predict_endpoint("slow", wire_rows(&[1.0])).unwrap(),
                vec![2.0]
            );
        }
        assert_eq!(rt.stats().degraded(), 0);
        assert_eq!(rt.stats().shed(), 0);
    }

    /// A servable that counts how often the admission layer asks it to
    /// pin hot rows.
    struct PinProbe {
        pins: AtomicU64,
    }
    impl Servable for PinProbe {
        fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
            Ok(vec![1.0; table.n_rows()])
        }
        fn pin_hot_rows(&self, table: &Table) -> usize {
            self.pins.fetch_add(1, Ordering::Relaxed);
            table.n_rows()
        }
    }

    #[test]
    fn hot_keys_spread_across_shards_and_pin() {
        let probe = Arc::new(PinProbe {
            pins: AtomicU64::new(0),
        });
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(2).build());
        // A far-away SLO: only the hot-key logic is active.
        b.admission(
            AdmissionPolicy::with_slo_p99(Duration::from_secs(60))
                .min_samples(4)
                .hot_key_fraction(0.5),
        );
        b.endpoint("hot", probe.clone() as Arc<dyn Servable>)
            .shards(2);
        let rt = b.build().unwrap();
        let client = rt.client();
        // One key dominating the stream: key-hash routing would pin it
        // to a single shard, so the admission layer must flip it to
        // round-robin once the sketch flags it heavy.
        for i in 0..40 {
            client
                .predict_keyed("hot", "viral-item", wire_rows(&[i as f64]))
                .unwrap();
        }
        let ep = rt.endpoint("hot", 1).unwrap();
        let per_shard = ep.stats().shard_requests();
        assert_eq!(per_shard.iter().sum::<u64>(), 40);
        assert!(
            per_shard.iter().all(|&c| c > 0),
            "hot key stuck to one shard: {per_shard:?}"
        );
        assert!(rt.stats().hot_keys() >= 36);
        assert!(ep.stats().hot_keys() >= 36);
        assert!(
            probe.pins.load(Ordering::Relaxed) > 0,
            "hot rows were never offered for cache pinning"
        );
        assert_eq!(rt.stats().shed(), 0);
        assert_eq!(rt.stats().degraded(), 0);
    }

    #[test]
    fn cold_keys_keep_key_hash_affinity_under_admission() {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(2).build());
        b.admission(
            AdmissionPolicy::with_slo_p99(Duration::from_secs(60))
                .min_samples(4)
                .hot_key_fraction(0.9),
        );
        b.endpoint("m", Arc::new(Scaler(2.0))).shards(2);
        let rt = b.build().unwrap();
        let client = rt.client();
        // A spread of distinct keys: none crosses the 90% heavy-hitter
        // bar, so every one keeps deterministic key-hash affinity.
        for i in 0..24 {
            client
                .predict_keyed("m", &format!("user-{}", i % 6), wire_rows(&[1.0]))
                .unwrap();
        }
        assert_eq!(rt.stats().hot_keys(), 0);
        // Replaying one of those keys lands on its key-hash shard.
        let expect = shard_for_key("user-3", 2);
        let before = rt.endpoint("m", 1).unwrap().stats().shard_requests();
        client
            .predict_keyed("m", "user-3", wire_rows(&[1.0]))
            .unwrap();
        let after = rt.endpoint("m", 1).unwrap().stats().shard_requests();
        assert_eq!(after[expect], before[expect] + 1);
    }

    #[test]
    fn shutdown_disconnects_clients() {
        let mut rt = two_endpoint_runtime(2);
        let client = rt.client();
        assert!(client.predict(wire_rows(&[1.0])).is_ok());
        rt.shutdown();
        rt.shutdown();
        let before = rt.stats().requests();
        assert!(matches!(
            client.predict(wire_rows(&[1.0])),
            Err(ServeError::Disconnected)
        ));
        // Rejected post-shutdown calls leave no trace in the stats.
        assert_eq!(rt.stats().requests(), before);
    }
}
