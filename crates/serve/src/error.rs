//! Error type for the serving layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Request or response (de)serialization failed.
    Codec(String),
    /// The server thread is gone or its queue is closed.
    Disconnected,
    /// The wrapped pipeline failed to predict.
    Predictor(String),
    /// A request was malformed (e.g. inconsistent row schemas).
    BadRequest {
        /// Why the request was rejected.
        reason: String,
    },
    /// A cross-process worker transport failed (connect, send, or
    /// receive) — see `RemoteWorker`.
    Transport(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Codec(m) => write!(f, "serialization failed: {m}"),
            ServeError::Disconnected => f.write_str("server disconnected"),
            ServeError::Predictor(m) => write!(f, "prediction failed: {m}"),
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Transport(m) => write!(f, "transport failed: {m}"),
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(ServeError::Disconnected.to_string(), "server disconnected");
        assert!(ServeError::Codec("x".into()).to_string().contains("x"));
    }
}
