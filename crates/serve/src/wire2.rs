//! The v2 binary wire protocol: multiplexed, length-prefixed frames.
//!
//! The legacy protocol (`protocol.rs`, whose codec is re-exported at
//! the crate root as [`crate::encode_request`] &c.) is newline-delimited JSON
//! with one blocking round trip per pooled connection. That is the
//! right boundary for *clients* (Table 6 deliberately measures a real
//! serialization cost there), but between a parent router and a
//! [`crate::RemoteRuntimeNode`] it pays the JSON tax twice more per
//! hop and forces head-of-line blocking per socket. `wire2` replaces
//! the *internal* hop with compact binary frames that many in-flight
//! requests share on one socket.
//!
//! # Frame layout
//!
//! Every frame is an 11-byte header followed by `payload_len` bytes:
//!
//! ```text
//! offset  size  field
//! 0       1     magic (0xB2)
//! 1       1     protocol version ([`WIRE2_MIN_VERSION`]..=[`WIRE2_VERSION`])
//! 2       1     frame type (see below)
//! 3       4     request id, u32 little-endian (mux correlation id)
//! 7       4     payload length, u32 little-endian
//! 11      n     payload
//! ```
//!
//! The mux request id correlates a response frame with its request on
//! a shared socket; it is distinct from the application-level
//! [`Request::id`] carried inside the payload. Payload lengths are
//! hard-capped at [`MAX_FRAME_PAYLOAD`]; a longer length prefix is a
//! protocol violation and the connection is closed rather than
//! trusted ([`decode_header`] refuses it, so no reader ever allocates
//! or reads past the bound).
//!
//! Frame types:
//!
//! | byte | type | payload |
//! |------|------|---------|
//! | 1 | [`FrameType::BinRequest`] | binary [`Request`] ([`encode_request_payload`]) |
//! | 2 | [`FrameType::BinResponse`] | binary [`Response`] ([`encode_response_payload`]) |
//! | 3 | [`FrameType::JsonRequest`] | one legacy JSON request, passed through opaquely |
//! | 4 | [`FrameType::JsonResponse`] | one legacy JSON response |
//! | 5 | [`FrameType::HelloAck`] | empty (version-negotiation accept) |
//!
//! # Version negotiation
//!
//! A v2 client opens its connection by sending the ASCII preamble
//! [`WIRE2_PREAMBLE`] (`"WILLUMP/WIRE2\n"`). A v2 node answers with a
//! [`FrameType::HelloAck`] frame — whose first byte is the magic
//! [`WIRE2_MAGIC`], never valid as the start of a JSON line — and the
//! connection switches to binary frames. A *legacy* node instead
//! treats the preamble as an undecodable JSON line and answers a JSON
//! error object starting with `{`; the client consumes that line,
//! remembers the peer is legacy, and falls back to pooled
//! newline-JSON transparently. A legacy *client* never sends the
//! preamble, so a v2 node serves its first `{`-prefixed line — and
//! the rest of the connection — in legacy JSON mode.
//!
//! # Encoding
//!
//! The payload codec is a fixed-width little-endian encoding with
//! u32-length-prefixed UTF-8 strings and one presence byte per
//! `Option`. It is not self-describing: the field order is frozen per
//! protocol version in [`WIRE2_LAYOUT`], and `xtask lint` rule WL001
//! fails the build when the layout changes without bumping
//! [`WIRE2_VERSION`] (the negotiation byte), mirroring the
//! `#[serde(default)]` discipline the JSON structs get.

use std::io::Read;

use willump::PlanCountersSnapshot;
use willump_data::Value;

use crate::protocol::{ControlRequest, EndpointCounters, Request, Response, WireRow};
use crate::ServeError;

/// First byte of every v2 frame. Deliberately not `{` (0x7B) and not
/// printable ASCII, so a binary frame can never be mistaken for the
/// start of a legacy JSON line (and vice versa).
pub const WIRE2_MAGIC: u8 = 0xB2;

/// The binary protocol version carried in byte 1 of every frame.
/// MUST be bumped whenever [`WIRE2_LAYOUT`] changes (`xtask lint`
/// rule WL001 enforces it).
///
/// v3 added the cluster-lifecycle control tags
/// (`ControlRequest::{Join, Drain, Leave}`); every v2 frame is
/// bit-identical under v3, so readers accept
/// [`WIRE2_MIN_VERSION`]`..=`[`WIRE2_VERSION`].
pub const WIRE2_VERSION: u8 = 3;

/// Oldest frame version this build still decodes. v2 is a strict
/// subset of v3 (same layout, fewer control tags), so v2 frames from
/// older peers decode unchanged.
pub const WIRE2_MIN_VERSION: u8 = 2;

/// Size of the fixed frame header in bytes.
pub const WIRE2_HEADER_LEN: usize = 11;

/// Hard upper bound on a frame payload. A length prefix above this is
/// treated as stream corruption: readers refuse to allocate or read
/// past it and drop the connection instead of trusting the prefix.
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// The ASCII preamble a v2 client sends immediately after connecting
/// to negotiate the binary protocol (newline included, so a legacy
/// node consumes it as exactly one bad JSON line).
pub const WIRE2_PREAMBLE: &[u8] = b"WILLUMP/WIRE2\n";

/// [`WIRE2_PREAMBLE`] as a newline-stripped line, for line-oriented
/// probing on the node side.
pub const WIRE2_PREAMBLE_LINE: &str = "WILLUMP/WIRE2";

/// The frozen per-version field order of the binary encoding. Each
/// entry is a struct (or enum) name and its encoded field (or
/// variant-tag) order. `xtask lint` rule WL001 keeps a copy frozen
/// per [`WIRE2_VERSION`]: reordering, adding, or removing a field
/// without bumping the version byte fails the lint.
pub const WIRE2_LAYOUT: &[(&str, &[&str])] = &[
    (
        "Request",
        &[
            "id",
            "rows",
            "endpoint",
            "version",
            "key",
            "forwarded",
            "control",
        ],
    ),
    (
        "Response",
        &[
            "id",
            "scores",
            "error",
            "endpoint",
            "version",
            "counters",
            "degraded",
            "overloaded",
        ],
    ),
    ("EndpointCounters", &["endpoint", "version", "counters"]),
    (
        "PlanCountersSnapshot",
        &["rows", "gate_resolved", "escalated", "filter_dropped"],
    ),
    ("Value", &["Null", "Bool", "Int", "Float", "Str"]),
    ("ControlRequest", &["Counters", "Join", "Drain", "Leave"]),
];

/// The kind of one v2 frame (byte 2 of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// A binary-encoded [`Request`] payload.
    BinRequest = 1,
    /// A binary-encoded [`Response`] payload.
    BinResponse = 2,
    /// One legacy JSON request line (no trailing newline), carried
    /// opaquely so raw-frame forwarding keeps working over the mux.
    JsonRequest = 3,
    /// One legacy JSON response line (no trailing newline).
    JsonResponse = 4,
    /// Version-negotiation accept (empty payload, request id 0).
    HelloAck = 5,
}

impl FrameType {
    /// Parse a frame-type byte; `None` for unknown types.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<FrameType> {
        match b {
            1 => Some(FrameType::BinRequest),
            2 => Some(FrameType::BinResponse),
            3 => Some(FrameType::JsonRequest),
            4 => Some(FrameType::JsonResponse),
            5 => Some(FrameType::HelloAck),
            _ => None,
        }
    }
}

/// The decoded fixed-size header of one v2 frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the payload contains.
    pub frame_type: FrameType,
    /// Mux correlation id tying a response frame to its request frame
    /// on a shared socket (not the application [`Request::id`]).
    pub request_id: u32,
    /// Payload length in bytes (already validated `<=`
    /// [`MAX_FRAME_PAYLOAD`]).
    pub payload_len: u32,
}

/// Encode a frame header.
#[must_use]
pub fn encode_header(frame_type: FrameType, request_id: u32, payload_len: u32) -> [u8; 11] {
    let mut h = [0u8; WIRE2_HEADER_LEN];
    h[0] = WIRE2_MAGIC;
    h[1] = WIRE2_VERSION;
    h[2] = frame_type as u8;
    h[3..7].copy_from_slice(&request_id.to_le_bytes());
    h[7..11].copy_from_slice(&payload_len.to_le_bytes());
    h
}

/// Decode and validate a frame header: magic, version, frame type,
/// and the [`MAX_FRAME_PAYLOAD`] bound on the length prefix.
///
/// # Errors
/// Returns [`ServeError::Codec`] naming the offending field.
pub fn decode_header(buf: &[u8; WIRE2_HEADER_LEN]) -> Result<FrameHeader, ServeError> {
    if buf[0] != WIRE2_MAGIC {
        return Err(ServeError::Codec(format!(
            "bad frame magic 0x{:02x} (expected 0x{WIRE2_MAGIC:02x})",
            buf[0]
        )));
    }
    if !(WIRE2_MIN_VERSION..=WIRE2_VERSION).contains(&buf[1]) {
        return Err(ServeError::Codec(format!(
            "unsupported wire2 version {} (this build speaks {WIRE2_MIN_VERSION}..={WIRE2_VERSION})",
            buf[1]
        )));
    }
    let frame_type = FrameType::from_byte(buf[2])
        .ok_or_else(|| ServeError::Codec(format!("unknown frame type {}", buf[2])))?;
    let request_id = u32::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]);
    let payload_len = u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]]);
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(ServeError::Codec(format!(
            "frame payload length {payload_len} exceeds the {MAX_FRAME_PAYLOAD}-byte bound"
        )));
    }
    Ok(FrameHeader {
        frame_type,
        request_id,
        payload_len,
    })
}

/// Encode a complete frame (header + payload) into one buffer, ready
/// for a single write.
///
/// # Errors
/// Returns [`ServeError::Codec`] when the payload exceeds
/// [`MAX_FRAME_PAYLOAD`] (such a frame would be rejected by every
/// conforming reader, so it is never sent).
pub fn encode_frame(
    frame_type: FrameType,
    request_id: u32,
    payload: &[u8],
) -> Result<Vec<u8>, ServeError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_PAYLOAD)
        .ok_or_else(|| {
            ServeError::Codec(format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte bound",
                payload.len()
            ))
        })?;
    let mut out = Vec::with_capacity(WIRE2_HEADER_LEN + payload.len());
    out.extend_from_slice(&encode_header(frame_type, request_id, len));
    out.extend_from_slice(payload);
    Ok(out)
}

/// Why [`read_frame`] stopped.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying stream failed (timeouts, resets, mid-frame EOF).
    Io(std::io::Error),
    /// The stream position no longer holds a valid frame (bad magic,
    /// unknown type, oversized length prefix): the connection cannot
    /// be resynchronized and must be dropped.
    Corrupt(String),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameReadError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
        }
    }
}

/// Read one complete frame from a blocking reader.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary. The payload
/// read is bounded by the already-validated header length (never past
/// [`MAX_FRAME_PAYLOAD`]).
///
/// # Errors
/// [`FrameReadError::Io`] for transport failures (including EOF
/// mid-frame), [`FrameReadError::Corrupt`] for header violations.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(FrameHeader, Vec<u8>)>, FrameReadError> {
    let mut header = [0u8; WIRE2_HEADER_LEN];
    // Distinguish clean EOF (before any header byte) from a torn one.
    let mut filled = 0;
    while filled < WIRE2_HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let hdr = decode_header(&header).map_err(|e| FrameReadError::Corrupt(e.to_string()))?;
    let mut payload = vec![0u8; hdr.payload_len as usize];
    r.read_exact(&mut payload).map_err(FrameReadError::Io)?;
    Ok(Some((hdr, payload)))
}

// ---- payload codec -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.remaining() < n {
            return Err(ServeError::Codec(format!(
                "truncated payload: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, ServeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ServeError::Codec(format!("invalid bool byte {b}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64, ServeError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A collection count, sanity-checked against the bytes left: each
    /// element costs at least `min_elem` bytes, so a count implying
    /// more data than remains is corruption — reject it *before*
    /// allocating.
    fn count(&mut self, min_elem: usize) -> Result<usize, ServeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(ServeError::Codec(format!(
                "collection count {n} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, ServeError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ServeError::Codec(format!("invalid UTF-8 in string field: {e}")))
    }

    fn opt_str(&mut self) -> Result<Option<String>, ServeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            b => Err(ServeError::Codec(format!("invalid option byte {b}"))),
        }
    }

    fn value(&mut self) -> Result<Value, ServeError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.bool()?)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(self.f64()?)),
            4 => Ok(Value::str(self.str()?)),
            t => Err(ServeError::Codec(format!("unknown value tag {t}"))),
        }
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.remaining() != 0 {
            return Err(ServeError::Codec(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Encode a [`Request`] into the v2 binary payload form (field order
/// frozen in [`WIRE2_LAYOUT`]).
#[must_use]
pub fn encode_request_payload(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + req.rows.len() * 32);
    put_u64(&mut out, req.id);
    put_u32(&mut out, req.rows.len() as u32);
    for row in &req.rows {
        put_u32(&mut out, row.len() as u32);
        for (name, value) in row {
            put_str(&mut out, name);
            put_value(&mut out, value);
        }
    }
    put_opt_str(&mut out, req.endpoint.as_deref());
    match req.version {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u32(&mut out, v);
        }
    }
    put_opt_str(&mut out, req.key.as_deref());
    out.push(u8::from(req.forwarded));
    match req.control {
        None => out.push(0),
        Some(op) => {
            out.push(1);
            // Variant-tag order frozen in WIRE2_LAYOUT ("ControlRequest").
            out.push(match op {
                ControlRequest::Counters => 0,
                ControlRequest::Join => 1,
                ControlRequest::Drain => 2,
                ControlRequest::Leave => 3,
            });
        }
    }
    out
}

/// Decode a v2 binary [`Request`] payload.
///
/// # Errors
/// Returns [`ServeError::Codec`] on truncation, trailing bytes, or
/// invalid tag/option/UTF-8 content.
pub fn decode_request_payload(buf: &[u8]) -> Result<Request, ServeError> {
    let mut c = Cursor::new(buf);
    let id = c.u64()?;
    let n_rows = c.count(4)?;
    let mut rows: Vec<WireRow> = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let n_cols = c.count(6)?;
        let mut row: WireRow = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name = c.str()?;
            let value = c.value()?;
            row.push((name, value));
        }
        rows.push(row);
    }
    let endpoint = c.opt_str()?;
    let version = match c.u8()? {
        0 => None,
        1 => Some(c.u32()?),
        b => return Err(ServeError::Codec(format!("invalid option byte {b}"))),
    };
    let key = c.opt_str()?;
    let forwarded = c.bool()?;
    let control = match c.u8()? {
        0 => None,
        1 => match c.u8()? {
            0 => Some(ControlRequest::Counters),
            1 => Some(ControlRequest::Join),
            2 => Some(ControlRequest::Drain),
            3 => Some(ControlRequest::Leave),
            t => return Err(ServeError::Codec(format!("unknown control tag {t}"))),
        },
        b => return Err(ServeError::Codec(format!("invalid option byte {b}"))),
    };
    c.done()?;
    Ok(Request {
        id,
        rows,
        endpoint,
        version,
        key,
        forwarded,
        control,
    })
}

/// Encode a [`Response`] into the v2 binary payload form (field order
/// frozen in [`WIRE2_LAYOUT`]).
#[must_use]
pub fn encode_response_payload(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + resp.scores.len() * 8);
    put_u64(&mut out, resp.id);
    put_u32(&mut out, resp.scores.len() as u32);
    for s in &resp.scores {
        out.extend_from_slice(&s.to_le_bytes());
    }
    put_opt_str(&mut out, resp.error.as_deref());
    put_opt_str(&mut out, resp.endpoint.as_deref());
    match resp.version {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u32(&mut out, v);
        }
    }
    match &resp.counters {
        None => out.push(0),
        Some(report) => {
            out.push(1);
            put_u32(&mut out, report.len() as u32);
            for ec in report {
                put_str(&mut out, &ec.endpoint);
                put_u32(&mut out, ec.version);
                put_u64(&mut out, ec.counters.rows);
                put_u64(&mut out, ec.counters.gate_resolved);
                put_u64(&mut out, ec.counters.escalated);
                put_u64(&mut out, ec.counters.filter_dropped);
            }
        }
    }
    out.push(u8::from(resp.degraded));
    out.push(u8::from(resp.overloaded));
    out
}

/// Decode a v2 binary [`Response`] payload.
///
/// # Errors
/// Returns [`ServeError::Codec`] on truncation, trailing bytes, or
/// invalid tag/option/UTF-8 content.
pub fn decode_response_payload(buf: &[u8]) -> Result<Response, ServeError> {
    let mut c = Cursor::new(buf);
    let id = c.u64()?;
    let n_scores = c.count(8)?;
    let mut scores = Vec::with_capacity(n_scores);
    for _ in 0..n_scores {
        scores.push(c.f64()?);
    }
    let error = c.opt_str()?;
    let endpoint = c.opt_str()?;
    let version = match c.u8()? {
        0 => None,
        1 => Some(c.u32()?),
        b => return Err(ServeError::Codec(format!("invalid option byte {b}"))),
    };
    let counters = match c.u8()? {
        0 => None,
        1 => {
            let n = c.count(40)?;
            let mut report = Vec::with_capacity(n);
            for _ in 0..n {
                let endpoint = c.str()?;
                let version = c.u32()?;
                let counters = PlanCountersSnapshot {
                    rows: c.u64()?,
                    gate_resolved: c.u64()?,
                    escalated: c.u64()?,
                    filter_dropped: c.u64()?,
                };
                report.push(EndpointCounters {
                    endpoint,
                    version,
                    counters,
                });
            }
            Some(report)
        }
        b => return Err(ServeError::Codec(format!("invalid option byte {b}"))),
    };
    let degraded = c.bool()?;
    let overloaded = c.bool()?;
    c.done()?;
    Ok(Response {
        id,
        scores,
        error,
        endpoint,
        version,
        counters,
        degraded,
        overloaded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 7,
            rows: vec![
                vec![
                    ("x".to_string(), Value::Float(1.5)),
                    ("n".to_string(), Value::Int(-3)),
                ],
                vec![
                    ("s".to_string(), Value::str("hello")),
                    ("b".to_string(), Value::Bool(true)),
                    ("z".to_string(), Value::Null),
                ],
            ],
            endpoint: Some("music".to_string()),
            version: Some(2),
            key: Some("user-9".to_string()),
            forwarded: true,
            control: None,
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let buf = encode_request_payload(&req);
        assert_eq!(decode_request_payload(&buf).unwrap(), req);
        // Control probes too.
        let probe = Request::counters_probe(1);
        let buf = encode_request_payload(&probe);
        assert_eq!(decode_request_payload(&buf).unwrap(), probe);
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            id: 9,
            scores: vec![0.25, -1.0, f64::MAX],
            error: Some("boom".to_string()),
            endpoint: Some("music".to_string()),
            version: Some(3),
            counters: Some(vec![EndpointCounters {
                endpoint: "music".to_string(),
                version: 3,
                counters: PlanCountersSnapshot {
                    rows: 10,
                    gate_resolved: 6,
                    escalated: 4,
                    filter_dropped: 1,
                },
            }]),
            degraded: true,
            overloaded: true,
        };
        let buf = encode_response_payload(&resp);
        assert_eq!(decode_response_payload(&buf).unwrap(), resp);
    }

    #[test]
    fn header_round_trips_and_validates() {
        let h = encode_header(FrameType::BinRequest, 42, 100);
        let parsed = decode_header(&h).unwrap();
        assert_eq!(parsed.frame_type, FrameType::BinRequest);
        assert_eq!(parsed.request_id, 42);
        assert_eq!(parsed.payload_len, 100);

        let mut bad = h;
        bad[0] = b'{';
        assert!(decode_header(&bad)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut bad = h;
        bad[1] = 99;
        assert!(decode_header(&bad)
            .unwrap_err()
            .to_string()
            .contains("version"));
        let mut bad = h;
        bad[2] = 77;
        assert!(decode_header(&bad)
            .unwrap_err()
            .to_string()
            .contains("frame type"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let h = encode_header(FrameType::BinRequest, 1, 0);
        let mut bad = h;
        bad[7..11].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(decode_header(&bad)
            .unwrap_err()
            .to_string()
            .contains("exceeds"));
        // read_frame refuses the same stream as corrupt.
        let mut stream: &[u8] = &bad;
        match read_frame(&mut stream) {
            Err(FrameReadError::Corrupt(m)) => assert!(m.contains("exceeds")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_codec_errors() {
        let req = sample_request();
        let buf = encode_request_payload(&req);
        assert!(decode_request_payload(&buf[..buf.len() - 1]).is_err());
        let mut extra = buf.clone();
        extra.push(0);
        assert!(decode_request_payload(&extra)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A payload claiming u32::MAX rows in 12 bytes must be
        // rejected by the count guard, not by the allocator.
        let mut buf = Vec::new();
        put_u64(&mut buf, 1);
        put_u32(&mut buf, u32::MAX);
        assert!(decode_request_payload(&buf)
            .unwrap_err()
            .to_string()
            .contains("count"));
    }

    #[test]
    fn frame_round_trips_through_a_reader() {
        let payload = encode_request_payload(&sample_request());
        let frame = encode_frame(FrameType::BinRequest, 3, &payload).unwrap();
        let mut stream: &[u8] = &frame;
        let (hdr, got) = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(hdr.frame_type, FrameType::BinRequest);
        assert_eq!(hdr.request_id, 3);
        assert_eq!(got, payload);
        // Clean EOF at the boundary.
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    #[test]
    fn layout_manifest_matches_the_codec() {
        // The manifest names exactly the structs this module encodes;
        // spot-check the field lists against the real structs so the
        // frozen copy can't drift silently within one version.
        let names: Vec<&str> = WIRE2_LAYOUT.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "Request",
                "Response",
                "EndpointCounters",
                "PlanCountersSnapshot",
                "Value",
                "ControlRequest"
            ]
        );
        let request_fields = WIRE2_LAYOUT[0].1;
        assert_eq!(request_fields.len(), 7, "Request encodes 7 fields");
        assert_eq!(WIRE2_LAYOUT[1].1.len(), 8, "Response encodes 8 fields");
        assert_eq!(
            WIRE2_LAYOUT[5].1.len(),
            4,
            "ControlRequest encodes 4 variant tags"
        );
    }

    #[test]
    fn control_variants_round_trip_and_v2_frames_still_decode() {
        for op in [
            ControlRequest::Counters,
            ControlRequest::Join,
            ControlRequest::Drain,
            ControlRequest::Leave,
        ] {
            let req = Request::control_frame(5, op);
            let buf = encode_request_payload(&req);
            assert_eq!(decode_request_payload(&buf).unwrap(), req);
        }
        // An unknown future tag is a codec error, not a panic.
        let mut buf = encode_request_payload(&Request::control_frame(5, ControlRequest::Leave));
        *buf.last_mut().unwrap() = 9;
        assert!(decode_request_payload(&buf)
            .unwrap_err()
            .to_string()
            .contains("control tag"));
        // A v2 header (older peer) still decodes under this build.
        let mut h = encode_header(FrameType::BinRequest, 1, 0);
        h[1] = WIRE2_MIN_VERSION;
        assert_eq!(decode_header(&h).unwrap().payload_len, 0);
        let mut h = encode_header(FrameType::BinRequest, 1, 0);
        h[1] = WIRE2_MIN_VERSION - 1;
        assert!(decode_header(&h)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }
}
