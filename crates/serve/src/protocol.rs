//! The wire protocol: JSON-encoded prediction requests and responses.
//!
//! Using a real serializer matters: paper Table 6 attributes Clipper's
//! residual overhead to "large variable overheads (serialization time,
//! etc.) which Willump cannot reduce". Encoding/decoding here costs
//! genuine CPU proportional to payload size.

use serde::{Deserialize, Serialize};
use willump_data::Value;

use crate::ServeError;

/// One named raw-input value in a request row.
pub type WireRow = Vec<(String, Value)>;

/// A prediction request: a batch of raw-input rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-assigned request id, echoed in the response.
    pub id: u64,
    /// The batch of input rows (name/value pairs, consistent schema).
    pub rows: Vec<WireRow>,
}

/// A prediction response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// One score per request row.
    pub scores: Vec<f64>,
    /// Error message when prediction failed.
    pub error: Option<String>,
}

/// Serialize a request to its JSON wire form.
///
/// # Errors
/// Returns [`ServeError::Codec`] on serializer failure.
pub fn encode_request(req: &Request) -> Result<String, ServeError> {
    serde_json::to_string(req).map_err(|e| ServeError::Codec(e.to_string()))
}

/// Parse a request from its JSON wire form.
///
/// # Errors
/// Returns [`ServeError::Codec`] on malformed input.
pub fn decode_request(wire: &str) -> Result<Request, ServeError> {
    serde_json::from_str(wire).map_err(|e| ServeError::Codec(e.to_string()))
}

/// Serialize a response to its JSON wire form.
///
/// # Errors
/// Returns [`ServeError::Codec`] on serializer failure.
pub fn encode_response(resp: &Response) -> Result<String, ServeError> {
    serde_json::to_string(resp).map_err(|e| ServeError::Codec(e.to_string()))
}

/// Parse a response from its JSON wire form.
///
/// # Errors
/// Returns [`ServeError::Codec`] on malformed input.
pub fn decode_response(wire: &str) -> Result<Response, ServeError> {
    serde_json::from_str(wire).map_err(|e| ServeError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Request {
        Request {
            id: 7,
            rows: vec![
                vec![
                    ("title".to_string(), Value::from("hello")),
                    ("n".to_string(), Value::Int(3)),
                ],
                vec![
                    ("title".to_string(), Value::from("world")),
                    ("n".to_string(), Value::Int(4)),
                ],
            ],
        }
    }

    #[test]
    fn request_round_trip() {
        let req = sample();
        let wire = encode_request(&req).unwrap();
        let back = decode_request(&wire).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response {
            id: 7,
            scores: vec![0.25, 0.75],
            error: None,
        };
        let wire = encode_response(&resp).unwrap();
        assert_eq!(decode_response(&wire).unwrap(), resp);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(decode_request("not json").is_err());
        assert!(decode_response("{\"id\":}").is_err());
    }

    #[test]
    fn float_values_survive() {
        let req = Request {
            id: 1,
            rows: vec![vec![("x".to_string(), Value::Float(1.5))]],
        };
        let back = decode_request(&encode_request(&req).unwrap()).unwrap();
        assert_eq!(back.rows[0][0].1, Value::Float(1.5));
    }
}
