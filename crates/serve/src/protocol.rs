//! The wire protocol: JSON-encoded prediction requests and responses.
//!
//! Using a real serializer matters: paper Table 6 attributes Clipper's
//! residual overhead to "large variable overheads (serialization time,
//! etc.) which Willump cannot reduce". Encoding/decoding here costs
//! genuine CPU proportional to payload size.
//!
//! This newline-delimited JSON form is the *client boundary* and the
//! legacy peer format. Between current shard-forwarding peers the same
//! [`Request`]/[`Response`] structs travel as compact binary frames
//! instead — see [`crate::wire2`] for the frame layout, version
//! negotiation, and the JSON fallback (the `micro` bench's
//! `wirecodec` section records the per-frame cost of each).
//!
//! # Addressing and back-compat
//!
//! Since the multi-endpoint [`crate::ServingRuntime`], a request may
//! address a **named endpoint** ([`Request::endpoint`]), pin a
//! specific **version** of it ([`Request::version`]), and carry a
//! **routing key** ([`Request::key`]) that the runtime hashes to pick
//! a shard. All three fields are optional and `#[serde(default)]`:
//! a *legacy frame* — the pre-runtime wire form carrying only `id`
//! and `rows` — still decodes, with every routing field `None`, and
//! the runtime routes it to the default endpoint. Responses echo the
//! endpoint name and version that served them ([`Response::endpoint`],
//! [`Response::version`]), `None` on error paths that never resolved
//! an endpoint.
//!
//! # Shard-forwarding and control frames
//!
//! Cross-process sharding (see [`crate::RemoteWorker`]) reuses this
//! same protocol between a parent router and a remote node, with two
//! additions — both `#[serde(default)]`, so every pre-existing frame
//! still decodes:
//!
//! - **Shard-forwarding frames** set [`Request::forwarded`]: the
//!   parent already resolved endpoint, version, and shard, so the
//!   receiving node must serve the request on its *local* shards and
//!   never forward it onward (the forwarding-loop guard).
//! - **Control frames** set [`Request::control`] instead of carrying
//!   rows: [`ControlRequest::Counters`] asks the node for a
//!   [`Response::counters`] report — one [`EndpointCounters`] per
//!   registered endpoint, carrying that plan's
//!   [`willump::PlanCountersSnapshot`] — which is how a parent's
//!   escalation-aware scheduler reads statistics that accumulated in
//!   another process.
//!
//! # Admission-control markers
//!
//! The runtime's statistical admission layer (see
//! [`crate::AdmissionPolicy`]) adds two response markers, again both
//! `#[serde(default)]` so legacy frames keep decoding:
//!
//! - [`Response::degraded`]: the answer was served by the endpoint's
//!   *degraded* plan lowering (small model only, no escalation) to
//!   protect the latency SLO under load.
//! - [`Response::overloaded`]: the request was **shed** at admission
//!   — no prediction ran. Shed responses also carry
//!   [`Response::error`], so legacy clients that predate the marker
//!   still observe an explicit failure rather than silent empty
//!   scores.

use serde::{Deserialize, Serialize};
use willump::PlanCountersSnapshot;
use willump_data::Value;

use crate::ServeError;

/// The reserved response id used when a request could not be decoded.
///
/// The server echoes the request's own id in every response it can,
/// but a request that fails [`decode_request`] has no recoverable id.
/// Such responses carry `ERROR_RESPONSE_ID` instead. To keep the two
/// distinguishable, [`crate::RuntimeClient`] (and the legacy
/// [`crate::ClipperClient`] shim) assign real request ids starting at
/// 1 and never use 0; custom clients should do the same.
pub const ERROR_RESPONSE_ID: u64 = 0;

/// One named raw-input value in a request row.
pub type WireRow = Vec<(String, Value)>;

/// A prediction request: a batch of raw-input rows, optionally
/// addressed to a named, versioned endpoint with a routing key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-assigned request id, echoed in the response. Must be
    /// nonzero: id 0 is [`ERROR_RESPONSE_ID`], reserved for responses
    /// to requests the server could not decode.
    pub id: u64,
    /// The batch of input rows (name/value pairs, consistent schema).
    pub rows: Vec<WireRow>,
    /// Target endpoint name; `None` (or a legacy frame without the
    /// field) routes to the runtime's default endpoint.
    #[serde(default)]
    pub endpoint: Option<String>,
    /// Pin a specific endpoint version; `None` lets the endpoint's
    /// version router (weighted canary split or bandit) choose.
    #[serde(default)]
    pub version: Option<u32>,
    /// Shard-routing key: requests with equal keys always land on the
    /// same shard of the target endpoint. `None` spreads requests
    /// round-robin across the endpoint's shards.
    #[serde(default)]
    pub key: Option<String>,
    /// Marks a shard-forwarding frame: the sending router already
    /// resolved endpoint, version, and shard, so the receiving node
    /// must serve the request on its own local shards and never
    /// forward it to a further remote (forwarding-loop guard). Plain
    /// clients leave this `false`.
    #[serde(default)]
    pub forwarded: bool,
    /// Control operation instead of a prediction (see
    /// [`ControlRequest`]); `None` for ordinary prediction requests.
    #[serde(default)]
    pub control: Option<ControlRequest>,
}

impl Request {
    /// A plain request: rows for the default endpoint, no version pin,
    /// no explicit routing key (the legacy single-predictor form).
    #[must_use]
    pub fn new(id: u64, rows: Vec<WireRow>) -> Request {
        Request {
            id,
            rows,
            endpoint: None,
            version: None,
            key: None,
            forwarded: false,
            control: None,
        }
    }

    /// A [`ControlRequest::Counters`] probe: asks the serving runtime
    /// for every endpoint's [`EndpointCounters`] instead of a
    /// prediction.
    #[must_use]
    pub fn counters_probe(id: u64) -> Request {
        Request::control_frame(id, ControlRequest::Counters)
    }

    /// A control frame carrying `op` instead of prediction rows.
    #[must_use]
    pub fn control_frame(id: u64, op: ControlRequest) -> Request {
        Request {
            control: Some(op),
            ..Request::new(id, Vec::new())
        }
    }
}

/// A non-prediction operation carried by [`Request::control`].
///
/// `Counters` is the original (v1) control op; the cluster lifecycle
/// ops (`Join`/`Drain`/`Leave`) arrived with the control plane and are
/// plain enum variants, so legacy JSON peers that have never seen them
/// reject such frames with a decode error — the sender falls back the
/// same way it does for any undecodable frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlRequest {
    /// Report every endpoint's [`PlanCountersSnapshot`] in
    /// [`Response::counters`] — the cross-process statistics feed for
    /// the escalation-aware scheduler.
    Counters,
    /// (Re-)enter service: clear the node's draining flag so new
    /// prediction requests are admitted again.
    Join,
    /// Stop admitting new prediction requests (in-flight work
    /// finishes; control frames still answer) — the first half of a
    /// graceful detach.
    Drain,
    /// Announce an imminent detach. Semantically `Drain` plus the
    /// intent not to return; the answering node treats it as `Drain`
    /// today, and the distinction lets coordinators tell a temporary
    /// drain from a permanent departure.
    Leave,
}

/// One endpoint's plan statistics in a [`ControlRequest::Counters`]
/// response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointCounters {
    /// Endpoint name.
    pub endpoint: String,
    /// Endpoint version.
    pub version: u32,
    /// Point-in-time copy of the endpoint plan's counters (all zero
    /// for endpoints without attached [`willump::PlanCounters`]).
    pub counters: PlanCountersSnapshot,
}

/// A prediction response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request id this answers, or [`ERROR_RESPONSE_ID`] when the
    /// request was undecodable and its id is unknown.
    pub id: u64,
    /// One score per request row.
    pub scores: Vec<f64>,
    /// Error message when prediction failed.
    pub error: Option<String>,
    /// The endpoint that served this response (`None` when the
    /// request never resolved to one, e.g. decode/routing errors).
    #[serde(default)]
    pub endpoint: Option<String>,
    /// The endpoint version that served this response.
    #[serde(default)]
    pub version: Option<u32>,
    /// Per-endpoint plan statistics, present only on responses to
    /// [`ControlRequest::Counters`] probes.
    #[serde(default)]
    pub counters: Option<Vec<EndpointCounters>>,
    /// The answer was served by the endpoint's *degraded* plan
    /// lowering (small model, no escalation) because admission
    /// control judged the endpoint's latency SLO at risk. Scores are
    /// real predictions, just cheaper ones.
    #[serde(default)]
    pub degraded: bool,
    /// The request was **shed** by admission control before any
    /// prediction ran. Shed responses also set [`Response::error`],
    /// so clients predating this marker still see an explicit
    /// failure.
    #[serde(default)]
    pub overloaded: bool,
}

impl Response {
    /// An error response with no serving endpoint attached.
    #[must_use]
    pub fn failure(id: u64, message: impl Into<String>) -> Response {
        Response {
            id,
            scores: Vec::new(),
            error: Some(message.into()),
            endpoint: None,
            version: None,
            counters: None,
            degraded: false,
            overloaded: false,
        }
    }

    /// An admission-shed response: [`Response::overloaded`] set, plus
    /// an explicit error naming the overloaded endpoint for legacy
    /// clients.
    #[must_use]
    pub fn shed(id: u64, endpoint: &str, version: u32) -> Response {
        Response {
            endpoint: Some(endpoint.to_string()),
            version: Some(version),
            overloaded: true,
            ..Response::failure(
                id,
                format!("endpoint `{endpoint}` overloaded: request shed by admission control"),
            )
        }
    }
}

/// Serialize a request to its JSON wire form.
///
/// # Errors
/// Returns [`ServeError::Codec`] on serializer failure.
pub fn encode_request(req: &Request) -> Result<String, ServeError> {
    serde_json::to_string(req).map_err(|e| ServeError::Codec(e.to_string()))
}

/// Parse a request from its JSON wire form. Legacy frames without the
/// `endpoint`/`version`/`key` fields decode with those fields `None`.
///
/// # Errors
/// Returns [`ServeError::Codec`] on malformed input.
pub fn decode_request(wire: &str) -> Result<Request, ServeError> {
    serde_json::from_str(wire).map_err(|e| ServeError::Codec(e.to_string()))
}

/// Serialize a response to its JSON wire form.
///
/// # Errors
/// Returns [`ServeError::Codec`] on serializer failure.
pub fn encode_response(resp: &Response) -> Result<String, ServeError> {
    serde_json::to_string(resp).map_err(|e| ServeError::Codec(e.to_string()))
}

/// Parse a response from its JSON wire form. Legacy frames without
/// the `endpoint`/`version` fields decode with those fields `None`.
///
/// # Errors
/// Returns [`ServeError::Codec`] on malformed input.
pub fn decode_response(wire: &str) -> Result<Response, ServeError> {
    serde_json::from_str(wire).map_err(|e| ServeError::Codec(e.to_string()))
}

/// Whether a raw response wire is an admission-shed
/// ([`Response::overloaded`]) marker.
///
/// Forwarding paths relay response wires without decoding them; this
/// check lets them exclude shed responses from per-shard transport
/// latency accounting (a shed round-trip measures no prediction
/// work). The substring scan is a fast pre-filter — only frames that
/// could plausibly carry the marker pay for a real decode, so
/// error messages *containing* the marker text cannot spoof it.
#[must_use]
pub fn is_overloaded_wire(wire: &str) -> bool {
    wire.contains("\"overloaded\":true") && decode_response(wire).is_ok_and(|r| r.overloaded)
}

/// Build a guaranteed-well-formed error response wire string.
///
/// This is the server's last-resort path when [`encode_response`]
/// itself fails (e.g. a predictor produced non-finite scores, which
/// JSON cannot represent). The error text is routed through the real
/// encoder so arbitrary message content — quotes, backslashes,
/// control characters — stays valid JSON; if even that fails the
/// string is hand-escaped via [`escape_json_string`].
pub fn error_wire(id: u64, message: &str) -> String {
    let resp = Response::failure(id, message);
    encode_response(&resp).unwrap_or_else(|_| {
        format!(
            "{{\"id\":{id},\"scores\":[],\"error\":\"{}\"}}",
            escape_json_string(message)
        )
    })
}

/// Escape a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters per RFC 8259 §7).
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Request {
        Request::new(
            7,
            vec![
                vec![
                    ("title".to_string(), Value::from("hello")),
                    ("n".to_string(), Value::Int(3)),
                ],
                vec![
                    ("title".to_string(), Value::from("world")),
                    ("n".to_string(), Value::Int(4)),
                ],
            ],
        )
    }

    #[test]
    fn request_round_trip() {
        let req = sample();
        let wire = encode_request(&req).unwrap();
        let back = decode_request(&wire).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn addressed_request_round_trip() {
        let req = Request {
            endpoint: Some("music".to_string()),
            version: Some(2),
            key: Some("user-17".to_string()),
            ..sample()
        };
        let wire = encode_request(&req).unwrap();
        assert_eq!(decode_request(&wire).unwrap(), req);
    }

    #[test]
    fn legacy_request_frame_decodes_with_default_routing() {
        // The pre-runtime wire form: no endpoint/version/key fields at
        // all. It must decode, with every routing field None.
        let wire = r#"{"id":3,"rows":[[["x",{"Float":1.5}]]]}"#;
        let req = decode_request(wire).expect("legacy frame decodes");
        assert_eq!(req.id, 3);
        assert_eq!(req.rows.len(), 1);
        assert_eq!(req.endpoint, None);
        assert_eq!(req.version, None);
        assert_eq!(req.key, None);
    }

    #[test]
    fn legacy_response_frame_decodes_without_endpoint_echo() {
        let wire = r#"{"id":4,"scores":[0.5],"error":null}"#;
        let resp = decode_response(wire).expect("legacy frame decodes");
        assert_eq!(resp.id, 4);
        assert_eq!(resp.scores, vec![0.5]);
        assert_eq!(resp.endpoint, None);
        assert_eq!(resp.version, None);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response {
            id: 7,
            scores: vec![0.25, 0.75],
            error: None,
            endpoint: Some("music".to_string()),
            version: Some(1),
            counters: None,
            degraded: false,
            overloaded: false,
        };
        let wire = encode_response(&resp).unwrap();
        assert_eq!(decode_response(&wire).unwrap(), resp);
    }

    #[test]
    fn shed_response_round_trip() {
        let resp = Response::shed(11, "music", 2);
        assert!(resp.overloaded);
        assert!(resp.scores.is_empty());
        let err = resp.error.as_deref().expect("shed carries an error");
        assert!(err.contains("music"), "error names the endpoint: {err}");
        let wire = encode_response(&resp).unwrap();
        assert!(is_overloaded_wire(&wire));
        assert_eq!(decode_response(&wire).unwrap(), resp);
    }

    #[test]
    fn legacy_response_frames_are_not_overloaded() {
        // Frames predating the admission markers decode with both
        // markers off.
        let wire = r#"{"id":4,"scores":[0.5],"error":null}"#;
        let resp = decode_response(wire).unwrap();
        assert!(!resp.degraded);
        assert!(!resp.overloaded);
        assert!(!is_overloaded_wire(wire));
    }

    #[test]
    fn overloaded_marker_cannot_be_spoofed_from_error_text() {
        // A hostile error *message* containing the marker text must
        // not read as a shed response: the pre-filter is confirmed by
        // a real decode of the frame.
        let wire = error_wire(3, "looks shed: \"overloaded\":true");
        let resp = decode_response(&wire).expect("hostile wire still parses");
        assert!(!resp.overloaded);
        assert!(!is_overloaded_wire(&wire));
    }

    #[test]
    fn forwarding_frame_round_trip() {
        let req = Request {
            endpoint: Some("music".to_string()),
            version: Some(2),
            key: Some("user-17".to_string()),
            forwarded: true,
            ..sample()
        };
        let wire = encode_request(&req).unwrap();
        let back = decode_request(&wire).unwrap();
        assert!(back.forwarded);
        assert_eq!(back, req);
        // Legacy frames decode with the forwarding flag off.
        let legacy = r#"{"id":3,"rows":[[["x",{"Float":1.5}]]]}"#;
        let back = decode_request(legacy).unwrap();
        assert!(!back.forwarded);
        assert_eq!(back.control, None);
    }

    #[test]
    fn counters_control_frame_round_trip() {
        let probe = Request::counters_probe(9);
        assert_eq!(probe.control, Some(ControlRequest::Counters));
        assert!(probe.rows.is_empty());
        let back = decode_request(&encode_request(&probe).unwrap()).unwrap();
        assert_eq!(back, probe);

        let resp = Response {
            counters: Some(vec![EndpointCounters {
                endpoint: "music".to_string(),
                version: 2,
                counters: willump::PlanCountersSnapshot {
                    rows: 10,
                    gate_resolved: 6,
                    escalated: 4,
                    filter_dropped: 0,
                },
            }]),
            ..Response::failure(9, "unused")
        };
        let resp = Response {
            error: None,
            ..resp
        };
        let back = decode_response(&encode_response(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        let report = back.counters.unwrap();
        assert_eq!(report[0].counters.escalated, 4);
        assert!((report[0].counters.escalation_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(decode_request("not json").is_err());
        assert!(decode_response("{\"id\":}").is_err());
    }

    #[test]
    fn error_wire_is_valid_json_for_hostile_messages() {
        let hostile = "boom \"quoted\" and \\backslash\\ and\nnewline \t tab \u{1} ctrl";
        let wire = error_wire(9, hostile);
        let resp = decode_response(&wire).expect("fallback wire must parse");
        assert_eq!(resp.id, 9);
        assert!(resp.scores.is_empty());
        assert_eq!(resp.error.as_deref(), Some(hostile));
        assert_eq!(resp.endpoint, None);
    }

    #[test]
    fn escape_json_string_round_trips_through_decoder() {
        let hostile = "a\"b\\c\nd\re\tf\u{0}g\u{1f}h";
        let wire = format!("\"{}\"", escape_json_string(hostile));
        let back: String = serde_json::from_str(&wire).expect("escaped literal parses");
        assert_eq!(back, hostile);
    }

    #[test]
    fn error_response_id_is_reserved() {
        // The constant is part of the wire contract: clients start
        // real ids at 1, so id 0 unambiguously marks an undecodable
        // request's response.
        assert_eq!(ERROR_RESPONSE_ID, 0);
        let wire = error_wire(ERROR_RESPONSE_ID, "bad frame");
        assert_eq!(decode_response(&wire).unwrap().id, ERROR_RESPONSE_ID);
    }

    #[test]
    fn float_values_survive() {
        let req = Request::new(1, vec![vec![("x".to_string(), Value::Float(1.5))]]);
        let back = decode_request(&encode_request(&req).unwrap()).unwrap();
        assert_eq!(back.rows[0][0].1, Value::Float(1.5));
    }
}
