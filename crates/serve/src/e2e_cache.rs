//! End-to-end prediction caching: the Clipper-style baseline that
//! paper §4.5 and Table 2 compare feature-level caching against.
//!
//! "Existing model serving systems cache ML inference pipelines
//! end-to-end, caching the prediction made for each data input
//! received. This does not capture recomputation of the same features
//! between different data inputs." The cache key here is the *entire*
//! input row, so two queries sharing only a user id (but differing in
//! song id) always miss.
//!
//! [`E2eCachedPredictor`] wraps an *arbitrary* prediction closure.
//! When the predictor is a Willump pipeline, prefer composing the
//! cache into its plan instead —
//! [`willump::ServingPlan::with_e2e_cache`] adds `cache_lookup` /
//! `cache_fill` stages with identical key semantics, batch-aware
//! lookups, and per-stage introspection, and the cached plan stays a
//! single [`Servable`].

use parking_lot::Mutex;
use std::sync::Arc;

use willump_data::Value;
use willump_graph::InputRow;
use willump_store::LruCache;

use crate::server::Servable;
use crate::ServeError;

/// A boxed single-input prediction function.
type PredictFn = Box<dyn Fn(&InputRow) -> Result<f64, String> + Send + Sync>;

/// A predictor wrapped with an end-to-end prediction cache.
pub struct E2eCachedPredictor {
    predict: PredictFn,
    /// Source column names, fixed order, defining the cache key.
    sources: Vec<String>,
    cache: Arc<Mutex<LruCache<Vec<String>, f64>>>,
}

impl std::fmt::Debug for E2eCachedPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("E2eCachedPredictor")
            .field("sources", &self.sources)
            .finish_non_exhaustive()
    }
}

impl E2eCachedPredictor {
    /// Wrap a single-input predictor. `sources` are the input column
    /// names forming the cache key; `capacity` bounds the LRU
    /// (`None` = unbounded, the paper's setting).
    pub fn new(
        predict: impl Fn(&InputRow) -> Result<f64, String> + Send + Sync + 'static,
        sources: Vec<String>,
        capacity: Option<usize>,
    ) -> E2eCachedPredictor {
        let cache = match capacity {
            Some(c) => LruCache::with_capacity(c),
            None => LruCache::unbounded(),
        };
        E2eCachedPredictor {
            predict: Box::new(predict),
            sources,
            cache: Arc::new(Mutex::new(cache)),
        }
    }

    fn key(&self, input: &InputRow) -> Result<Vec<String>, ServeError> {
        self.sources
            .iter()
            .map(|s| {
                input
                    .get(s)
                    .map(Value::to_string)
                    .ok_or_else(|| ServeError::BadRequest {
                        reason: format!("input missing source column `{s}`"),
                    })
            })
            .collect()
    }

    /// Predict with caching: a hit skips the pipeline entirely
    /// (including any remote feature requests).
    ///
    /// # Errors
    /// Returns [`ServeError`] on missing columns or predictor failure.
    pub fn predict_one(&self, input: &InputRow) -> Result<f64, ServeError> {
        let key = self.key(input)?;
        if let Some(score) = self.cache.lock().get(&key) {
            return Ok(*score);
        }
        let score = (self.predict)(input).map_err(ServeError::Predictor)?;
        self.cache.lock().put(key, score);
        Ok(score)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.cache.lock().hits()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.cache.lock().misses()
    }

    /// Hit rate over all lookups (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        self.cache.lock().hit_rate()
    }

    /// Clear cache contents and counters.
    pub fn clear(&self) {
        self.cache.lock().clear();
    }
}

/// An end-to-end-cached predictor is servable, so the Clipper-style
/// baseline can sit directly behind a (multi-worker)
/// [`crate::ClipperServer`]: each row of a (possibly coalesced) batch
/// is looked up — and on miss, computed — individually, which is
/// exactly the per-input granularity end-to-end prediction caches
/// operate at.
impl Servable for E2eCachedPredictor {
    fn predict_table(&self, table: &willump_data::Table) -> Result<Vec<f64>, String> {
        (0..table.n_rows())
            .map(|r| {
                let input = InputRow::from_table(table, r).map_err(|e| e.to_string())?;
                self.predict_one(&input).map_err(|e| e.to_string())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counting_predictor() -> (E2eCachedPredictor, Arc<AtomicU64>) {
        let calls = Arc::new(AtomicU64::new(0));
        let c = calls.clone();
        let p = E2eCachedPredictor::new(
            move |input| {
                c.fetch_add(1, Ordering::Relaxed);
                Ok(input.get("x").and_then(Value::as_f64).unwrap_or(0.0) * 2.0)
            },
            vec!["x".to_string(), "y".to_string()],
            None,
        );
        (p, calls)
    }

    fn row(x: f64, y: &str) -> InputRow {
        InputRow::new([("x", Value::Float(x)), ("y", Value::from(y))])
    }

    #[test]
    fn repeat_inputs_hit() {
        let (p, calls) = counting_predictor();
        assert_eq!(p.predict_one(&row(1.0, "a")).unwrap(), 2.0);
        assert_eq!(p.predict_one(&row(1.0, "a")).unwrap(), 2.0);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn partial_overlap_misses() {
        let (p, calls) = counting_predictor();
        p.predict_one(&row(1.0, "a")).unwrap();
        // Same x, different y: end-to-end caching cannot reuse it.
        p.predict_one(&row(1.0, "b")).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn missing_column_is_bad_request() {
        let (p, _) = counting_predictor();
        let input = InputRow::new([("x", Value::Float(1.0))]);
        assert!(matches!(
            p.predict_one(&input),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn clear_resets() {
        let (p, calls) = counting_predictor();
        p.predict_one(&row(1.0, "a")).unwrap();
        p.clear();
        p.predict_one(&row(1.0, "a")).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(p.hit_rate(), 0.0);
    }

    #[test]
    fn cached_predictor_serves_behind_clipper_server() {
        use crate::{ClipperServer, ServerConfig};
        use willump_data::Value;

        let (p, calls) = counting_predictor();
        let server = ClipperServer::start(Arc::new(p), ServerConfig::default());
        let client = server.client();
        let wire_row = |x: f64, y: &str| {
            vec![
                ("x".to_string(), Value::Float(x)),
                ("y".to_string(), Value::from(y)),
            ]
        };
        // Two identical rows in one batch: second is a cache hit.
        let scores = client
            .predict(vec![wire_row(2.0, "a"), wire_row(2.0, "a")])
            .unwrap();
        assert_eq!(scores, vec![4.0, 4.0]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        // A repeat request hits entirely.
        let scores = client.predict(vec![wire_row(2.0, "a")]).unwrap();
        assert_eq!(scores, vec![4.0]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn predictor_errors_propagate() {
        let p = E2eCachedPredictor::new(|_| Err("boom".to_string()), vec!["x".to_string()], None);
        let input = InputRow::new([("x", Value::Float(1.0))]);
        assert!(matches!(
            p.predict_one(&input),
            Err(ServeError::Predictor(_))
        ));
    }
}
